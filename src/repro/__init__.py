"""PageSeer reproduction: page-walk-triggered page swaps in hybrid memory.

A trace-driven, cycle-approximate simulator reproducing *PageSeer: Using
Page Walks to Trigger Page Swaps in Hybrid Memory Systems* (HPCA 2019),
including the PoM and MemPod baselines, the Table III workload suite (as
synthetic archetypes), and a harness regenerating every evaluation figure.

Quickstart::

    from repro import build_system, workload_by_name

    system = build_system("pageseer", workload_by_name("lbmx4"), scale=256)
    metrics = system.run(measure_ops=20_000, warmup_ops=5_000)
    print(metrics.ipc, metrics.ammat, metrics.dram_share)
"""

from repro.common.config import (
    PageSeerConfig,
    SystemConfig,
    default_system_config,
)
from repro.sim.metrics import RunMetrics
from repro.sim.system import SCHEMES, System, build_system
from repro.workloads import all_workloads, workload_by_name

__version__ = "1.0.0"

__all__ = [
    "PageSeerConfig",
    "SystemConfig",
    "default_system_config",
    "RunMetrics",
    "SCHEMES",
    "System",
    "build_system",
    "all_workloads",
    "workload_by_name",
    "__version__",
]
