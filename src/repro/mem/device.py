"""A single memory technology (DRAM or NVM) with banks, rows, and channels.

The device accepts line-granularity accesses and returns when they start
and finish, accounting for:

* row-buffer state per bank (hit / closed-row miss / conflict),
* bank busy time (a bank serves one access at a time; writes add t_WR),
* channel data-bus occupancy (one 64 B burst per access),
* queueing when banks or buses are oversubscribed,
* two priority classes: *demand* requests (processor-visible) and *bulk*
  transfers (page swaps, write-backs).  Real controllers schedule demand
  first; we model that by letting a demand access preempt queued bulk work
  after at most one in-flight line, while bulk yields to everything.

Address mapping interleaves consecutive lines across channels (maximising
channel parallelism for streams) and consecutive rows across banks, a
standard open-page mapping.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.addr import CACHE_LINE_BYTES
from repro.common.config import CYCLES_PER_MEMORY_CYCLE, MemoryTimingConfig
from repro.common.errors import TransientFaultError
from repro.common.stats import StatsRegistry
from repro.common.timeline import Cycles


class AccessResult:
    """Outcome of one device access, all times in CPU cycles.

    A ``__slots__`` class: one is built per line access on the hot path.
    """

    __slots__ = ("start", "finish", "row_hit", "queue_delay")

    def __init__(
        self, start: Cycles, finish: Cycles, row_hit: bool, queue_delay: Cycles
    ):
        self.start = start
        self.finish = finish
        self.row_hit = row_hit
        self.queue_delay = queue_delay

    @property
    def latency(self) -> Cycles:
        return self.finish - self.start + self.queue_delay

    def __repr__(self) -> str:
        return (
            f"AccessResult(start={self.start}, finish={self.finish}, "
            f"row_hit={self.row_hit}, queue_delay={self.queue_delay})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessResult):
            return NotImplemented
        return (
            self.start == other.start
            and self.finish == other.finish
            and self.row_hit == other.row_hit
            and self.queue_delay == other.queue_delay
        )

    def __hash__(self) -> int:
        return hash((self.start, self.finish, self.row_hit, self.queue_delay))


class _Resource:
    """One bank or bus with two-priority occupancy tracking."""

    __slots__ = ("demand_busy_until", "any_busy_until", "total_busy")

    def __init__(self) -> None:
        self.demand_busy_until = 0
        self.any_busy_until = 0
        self.total_busy = 0

    def reserve(
        self, now: Cycles, duration: Cycles, bulk: bool, preempt_cap: Cycles
    ) -> Cycles:
        """Grant ``[start, start+duration)``; returns the start time.

        Demand work waits for earlier demand work in full, but waits for
        queued bulk work only up to *preempt_cap* cycles (the current line
        finishes, then demand preempts).  Bulk work yields to everything.
        """
        if bulk:
            start = max(now, self.any_busy_until)
            self.any_busy_until = start + duration
        else:
            start = max(
                now,
                self.demand_busy_until,
                min(self.any_busy_until, now + preempt_cap),
            )
            end = start + duration
            self.demand_busy_until = end
            if end > self.any_busy_until:
                self.any_busy_until = end
        self.total_busy += duration
        return start

    def next_free(self, now: int) -> int:
        return max(now, self.any_busy_until)

    def utilization(self, elapsed: int) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.total_busy / elapsed)


class MemoryDevice:
    """One DRAM or NVM module behind its own set of channels."""

    def __init__(
        self,
        config: MemoryTimingConfig,
        stats: StatsRegistry,
        model_contention: bool = True,
        stats_prefix: Optional[str] = None,
    ):
        self.config = config
        self.stats = stats
        self.model_contention = model_contention
        self._prefix = stats_prefix or config.name
        total_banks = config.channels * config.total_banks_per_channel
        self._banks: List[_Resource] = [_Resource() for _ in range(total_banks)]
        self._buses: List[_Resource] = [_Resource() for _ in range(config.channels)]
        self._open_rows: Dict[int, int] = {}
        #: Banks whose open row has absorbed writes (t_WR owed at close, or
        #: at the next read from the same bank — write-to-read turnaround).
        self._row_written: Dict[int, bool] = {}
        self._lines_per_row = config.row_bytes // CACHE_LINE_BYTES
        # Per-device counters kept as plain attributes: this path runs for
        # every line transferred, so registry lookups would dominate.
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.queue_delay_total = 0
        self.service_time_total = 0
        #: Armed by ``MainMemory.attach_injector`` when fault injection is
        #: enabled; None in normal runs, so the hot path pays one branch.
        self.injector = None
        #: Demand preempts queued bulk after one in-flight line.
        self.preempt_cap_cycles = (
            config.t_rp + config.t_rcd + config.t_cas
        ) * CYCLES_PER_MEMORY_CYCLE + config.line_transfer_cycles
        # Hot-path invariants precomputed from the timing config: the three
        # possible core latencies (row hit / closed row / conflict), the
        # write-recovery penalty, and the address-mapping geometry.  These
        # equal config.read_latency_cycles(...)/write_recovery_cycles() for
        # every input, so access() never re-derives them per line.
        self._lat_row_hit = config.read_latency_cycles(True, False)
        self._lat_row_closed = config.read_latency_cycles(False, False)
        self._lat_row_conflict = config.read_latency_cycles(False, True)
        self._write_recovery = config.write_recovery_cycles()
        self._burst = config.line_transfer_cycles
        self._channels = config.channels
        self._banks_per_channel = config.total_banks_per_channel

    # -- address mapping ---------------------------------------------------
    def map_line(self, line_number: int) -> Tuple[int, int, int]:
        """Map a line number to ``(channel, global_bank, row)``."""
        channels = self.config.channels
        channel = line_number % channels
        within_channel = line_number // channels
        row_sequence = within_channel // self._lines_per_row
        banks = self.config.total_banks_per_channel
        bank_in_channel = row_sequence % banks
        row = row_sequence // banks
        global_bank = channel * banks + bank_in_channel
        return channel, global_bank, row

    # -- the access path -----------------------------------------------------
    # repro-hot
    def access(
        self, now: Cycles, line_number: int, is_write: bool, bulk: bool = False
    ) -> AccessResult:
        """Perform one 64 B access; returns start/finish in CPU cycles."""
        if self.injector is not None:
            # May raise Transient/UnrecoverableFaultError before any bank or
            # row state is touched, so an aborted access leaves no trace.
            self.injector.check_access(self.config.name, now, line_number, is_write)
        # Address mapping, inlined from map_line() (called per line).
        channels = self._channels
        channel = line_number % channels
        row_sequence = (line_number // channels) // self._lines_per_row
        banks = self._banks_per_channel
        bank = channel * banks + row_sequence % banks
        row = row_sequence // banks

        open_rows = self._open_rows
        open_row = open_rows.get(bank)
        row_hit = open_row == row
        row_conflict = open_row is not None and not row_hit
        open_rows[bank] = row

        if row_hit:
            core_latency = self._lat_row_hit
        elif row_conflict:
            core_latency = self._lat_row_conflict
        else:
            core_latency = self._lat_row_closed
        # Write recovery (t_WR) is owed after a burst of writes: either when
        # the dirty row is closed, or when a read turns the bank around.
        # Consecutive writes stream into the open row at burst rate, so
        # write-heavy sequential traffic pays it once per turnaround — the
        # NVM behaviour (t_WR = 180 memory cycles) the paper leans on.
        row_written = self._row_written
        if row_written.get(bank) and (row_conflict or not is_write):
            core_latency += self._write_recovery
            row_written[bank] = False
        if is_write:
            row_written[bank] = True
            self.writes += 1
        else:
            self.reads += 1
        if row_hit:
            self.row_hits += 1
        burst = self._burst

        if not self.model_contention:
            finish = now + core_latency + burst
            self.service_time_total += core_latency + burst
            return AccessResult(now, finish, row_hit, 0)

        occupancy = core_latency + burst
        start = self._banks[bank].reserve(
            now, occupancy, bulk, self.preempt_cap_cycles
        )
        data_ready = start + core_latency
        bus_start = self._buses[channel].reserve(
            data_ready, burst, bulk, self.preempt_cap_cycles
        )
        finish = bus_start + burst

        queue_delay = start - now
        self.queue_delay_total += queue_delay
        self.service_time_total += finish - start
        return AccessResult(start, finish, row_hit, queue_delay)

    def transfer_page(
        self, now: Cycles, first_line: int, line_count: int, is_write: bool,
        bulk: bool = False,
    ) -> Cycles:
        """Stream *line_count* consecutive lines; returns the finish time.

        Used by the swap machinery: a 4 KB page move is 64 line transfers
        that genuinely occupy banks and buses.  Swap engines issue at
        demand priority (the paper treats swap traffic as regular memory
        requests and bounds it by declining swaps, not by starving them);
        pass ``bulk=True`` for background work that must yield.

        The transfer is scheduled row-group at a time: consecutive lines of
        one row stream at burst rate behind a single activation, which is
        both how devices behave and ~4x fewer reservations than per-line
        scheduling.
        """
        abort_after = None
        if self.injector is not None:
            abort_after = self.injector.check_transfer(
                self.config.name, now, first_line, line_count, is_write
            )
        lines_done = 0
        finish = now
        burst = self.config.line_transfer_cycles
        cap = self.preempt_cap_cycles
        channels = self.config.channels
        last_line = first_line + line_count
        for channel in range(channels):
            # Lines of this run on one channel are `channels` apart.
            offset = (channel - first_line) % channels
            channel_lines = list(range(first_line + offset, last_line, channels))
            if not channel_lines:
                continue
            index = 0
            while index < len(channel_lines):
                if abort_after is not None and lines_done >= abort_after:
                    # The partial work above already occupied banks/buses —
                    # that wasted service time is the cost of the fault.
                    raise TransientFaultError(
                        "bulk transfer died mid-flight",
                        device=self.config.name,
                        line=channel_lines[index],
                        cycle=now,
                    )
                _, bank, row = self.map_line(channel_lines[index])
                group = 1
                while index + group < len(channel_lines):
                    _, next_bank, next_row = self.map_line(channel_lines[index + group])
                    if next_bank != bank or next_row != row:
                        break
                    group += 1
                open_row = self._open_rows.get(bank)
                row_hit = open_row == row
                row_conflict = open_row is not None and not row_hit
                self._open_rows[bank] = row
                core_latency = self.config.read_latency_cycles(row_hit, row_conflict)
                if self._row_written.get(bank) and (row_conflict or not is_write):
                    core_latency += self.config.write_recovery_cycles()
                    self._row_written[bank] = False
                if is_write:
                    self._row_written[bank] = True
                occupancy = core_latency + group * burst
                if not self.model_contention:
                    end = now + occupancy
                else:
                    start = self._banks[bank].reserve(now, occupancy, bulk, cap)
                    bus_start = self._buses[channel].reserve(
                        start + core_latency, group * burst, bulk, cap
                    )
                    end = bus_start + group * burst
                if end > finish:
                    finish = end
                if is_write:
                    self.writes += group
                else:
                    self.reads += group
                if row_hit:
                    self.row_hits += group
                self.service_time_total += occupancy
                index += group
                lines_done += group
        if abort_after is not None:
            # Backstop: the drawn budget fell inside the final row group.
            raise TransientFaultError(
                "bulk transfer died mid-flight",
                device=self.config.name,
                line=last_line - 1,
                cycle=now,
            )
        return finish

    # -- introspection -------------------------------------------------------
    def channel_utilization(self, elapsed: int) -> float:
        """Mean data-bus utilization across channels over *elapsed* cycles."""
        if not self._buses or elapsed <= 0:
            return 0.0
        return sum(b.utilization(elapsed) for b in self._buses) / len(self._buses)

    def earliest_bus_free(self, now: Cycles) -> Cycles:
        """Earliest time any channel data bus is free."""
        return min(b.next_free(now) for b in self._buses)
