"""A single memory technology (DRAM or NVM) with banks, rows, and channels.

The device accepts line-granularity accesses and returns when they start
and finish, accounting for:

* row-buffer state per bank (hit / closed-row miss / conflict),
* bank busy time (a bank serves one access at a time; writes add t_WR),
* channel data-bus occupancy (one 64 B burst per access),
* queueing when banks or buses are oversubscribed,
* two priority classes: *demand* requests (processor-visible) and *bulk*
  transfers (page swaps, write-backs).  Real controllers schedule demand
  first; we model that by letting a demand access preempt queued bulk work
  after at most one in-flight line, while bulk yields to everything.

Address mapping interleaves consecutive lines across channels (maximising
channel parallelism for streams) and consecutive rows across banks, a
standard open-page mapping.

Bank and bus state is held struct-of-arrays: parallel lists indexed by
global bank / channel number (demand-busy-until, any-busy-until,
total-busy, open row, row-written).  One access touches five of those
slots; with per-bank objects the same work cost a method call plus five
attribute dereferences per resource, which dominated the access path
(see docs/PERFORMANCE.md).  :meth:`access_finish` is the demand hot path
— the same schedule as :meth:`access` without materialising an
:class:`AccessResult`; the two are pinned equal by
tests/unit/test_device.py's differential check.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.addr import CACHE_LINE_BYTES
from repro.common.config import CYCLES_PER_MEMORY_CYCLE, MemoryTimingConfig
from repro.common.errors import TransientFaultError
from repro.common.stats import StatsRegistry
from repro.common.timeline import Cycles


class AccessResult:
    """Outcome of one device access, all times in CPU cycles.

    A ``__slots__`` class: one is built per line access on the hot path.
    """

    __slots__ = ("start", "finish", "row_hit", "queue_delay")

    def __init__(
        self, start: Cycles, finish: Cycles, row_hit: bool, queue_delay: Cycles
    ):
        self.start = start
        self.finish = finish
        self.row_hit = row_hit
        self.queue_delay = queue_delay

    @property
    def latency(self) -> Cycles:
        return self.finish - self.start + self.queue_delay

    def __repr__(self) -> str:
        return (
            f"AccessResult(start={self.start}, finish={self.finish}, "
            f"row_hit={self.row_hit}, queue_delay={self.queue_delay})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessResult):
            return NotImplemented
        return (
            self.start == other.start
            and self.finish == other.finish
            and self.row_hit == other.row_hit
            and self.queue_delay == other.queue_delay
        )

    def __hash__(self) -> int:
        return hash((self.start, self.finish, self.row_hit, self.queue_delay))


class MemoryDevice:
    """One DRAM or NVM module behind its own set of channels.

    A ``__slots__`` class: every LLC miss, write-back, swap line, and
    metadata access bumps several of its counters, and slot descriptors
    make those attribute reads and in-place adds measurably cheaper
    than ``__dict__`` lookups on this path.
    """

    __slots__ = (
        "config", "stats", "model_contention", "_prefix",
        "_bank_demand_until", "_bank_any_until", "_bank_total_busy",
        "_bus_demand_until", "_bus_any_until", "_bus_total_busy",
        "_open_rows", "_row_written", "_lines_per_row",
        "reads", "writes", "row_hits",
        "queue_delay_total", "service_time_total",
        "injector", "preempt_cap_cycles",
        "_lat_row_hit", "_lat_row_closed", "_lat_row_conflict",
        "_write_recovery", "_burst", "_channels", "_banks_per_channel",
    )

    def __init__(
        self,
        config: MemoryTimingConfig,
        stats: StatsRegistry,
        model_contention: bool = True,
        stats_prefix: Optional[str] = None,
    ):
        self.config = config
        self.stats = stats
        self.model_contention = model_contention
        self._prefix = stats_prefix or config.name
        total_banks = config.channels * config.total_banks_per_channel
        # Struct-of-arrays resource state (see the module docstring).  A
        # bank or bus grants [start, start+duration): demand work queues
        # behind demand (demand_until) but waits for queued bulk only up
        # to the preempt cap; bulk yields to everything (any_until).
        self._bank_demand_until: List[int] = [0] * total_banks
        self._bank_any_until: List[int] = [0] * total_banks
        self._bank_total_busy: List[int] = [0] * total_banks
        self._bus_demand_until: List[int] = [0] * config.channels
        self._bus_any_until: List[int] = [0] * config.channels
        self._bus_total_busy: List[int] = [0] * config.channels
        #: Open row per global bank (-1 = closed; rows are non-negative).
        self._open_rows: List[int] = [-1] * total_banks
        #: Banks whose open row has absorbed writes (t_WR owed at close,
        #: or at the next read from the same bank — write-to-read turnaround).
        self._row_written: List[bool] = [False] * total_banks
        self._lines_per_row = config.row_bytes // CACHE_LINE_BYTES
        # Per-device counters kept as plain attributes: this path runs for
        # every line transferred, so registry lookups would dominate.
        self.reads = 0
        self.writes = 0
        self.row_hits = 0
        self.queue_delay_total = 0
        self.service_time_total = 0
        #: Armed by ``MainMemory.attach_injector`` when fault injection is
        #: enabled; None in normal runs, so the hot path pays one branch.
        self.injector = None
        #: Demand preempts queued bulk after one in-flight line.
        self.preempt_cap_cycles = (
            config.t_rp + config.t_rcd + config.t_cas
        ) * CYCLES_PER_MEMORY_CYCLE + config.line_transfer_cycles
        # Hot-path invariants precomputed from the timing config: the three
        # possible core latencies (row hit / closed row / conflict), the
        # write-recovery penalty, and the address-mapping geometry.  These
        # equal config.read_latency_cycles(...)/write_recovery_cycles() for
        # every input, so access() never re-derives them per line.
        self._lat_row_hit = config.read_latency_cycles(True, False)
        self._lat_row_closed = config.read_latency_cycles(False, False)
        self._lat_row_conflict = config.read_latency_cycles(False, True)
        self._write_recovery = config.write_recovery_cycles()
        self._burst = config.line_transfer_cycles
        self._channels = config.channels
        self._banks_per_channel = config.total_banks_per_channel

    # -- address mapping ---------------------------------------------------
    def map_line(self, line_number: int) -> Tuple[int, int, int]:
        """Map a line number to ``(channel, global_bank, row)``."""
        channels = self.config.channels
        channel = line_number % channels
        within_channel = line_number // channels
        row_sequence = within_channel // self._lines_per_row
        banks = self.config.total_banks_per_channel
        bank_in_channel = row_sequence % banks
        row = row_sequence // banks
        global_bank = channel * banks + bank_in_channel
        return channel, global_bank, row

    # -- the access path -----------------------------------------------------
    # repro-hot
    def access_finish(
        self, now: Cycles, line_number: int, is_write: bool, bulk: bool = False
    ) -> Cycles:
        """Perform one 64 B access; returns only the finish time.

        The demand hot path: every LLC miss, write-back, and metadata
        access lands here, and none of those callers read anything but
        the finish time.  The schedule and every state mutation are
        identical to :meth:`access` (the differential unit test drives
        both against the same traffic and asserts equality); the only
        difference is that no :class:`AccessResult` is allocated.
        """
        if self.injector is not None:
            self.injector.check_access(self.config.name, now, line_number, is_write)
        channels = self._channels
        channel = line_number % channels
        row_sequence = (line_number // channels) // self._lines_per_row
        bank = channel * self._banks_per_channel + row_sequence % self._banks_per_channel
        row = row_sequence // self._banks_per_channel

        open_rows = self._open_rows
        open_row = open_rows[bank]
        row_hit = open_row == row
        open_rows[bank] = row

        if row_hit:
            core_latency = self._lat_row_hit
            row_conflict = False
        elif open_row >= 0:
            core_latency = self._lat_row_conflict
            row_conflict = True
        else:
            core_latency = self._lat_row_closed
            row_conflict = False
        row_written = self._row_written
        if row_written[bank] and (row_conflict or not is_write):
            core_latency += self._write_recovery
            row_written[bank] = False
        if is_write:
            row_written[bank] = True
            self.writes += 1
        else:
            self.reads += 1
        if row_hit:
            self.row_hits += 1
        burst = self._burst

        if not self.model_contention:
            self.service_time_total += core_latency + burst
            return now + core_latency + burst

        occupancy = core_latency + burst
        # Bank reservation (inlined two-priority grant).
        bank_any = self._bank_any_until
        bus_any = self._bus_any_until
        if bulk:
            start = bank_any[bank]
            if now > start:
                start = now
            bank_any[bank] = start + occupancy
            self._bank_total_busy[bank] += occupancy
            # Bus reservation for the data burst.
            data_ready = start + core_latency
            bus_start = bus_any[channel]
            if data_ready > bus_start:
                bus_start = data_ready
            bus_any[channel] = bus_start + burst
        else:
            cap = self.preempt_cap_cycles
            bank_demand = self._bank_demand_until
            start = max(now, bank_demand[bank], min(bank_any[bank], now + cap))
            end = start + occupancy
            bank_demand[bank] = end
            if end > bank_any[bank]:
                bank_any[bank] = end
            self._bank_total_busy[bank] += occupancy
            # Bus reservation for the data burst.
            data_ready = start + core_latency
            bus_demand = self._bus_demand_until
            bus_start = max(
                data_ready,
                bus_demand[channel],
                min(bus_any[channel], data_ready + cap),
            )
            bus_end = bus_start + burst
            bus_demand[channel] = bus_end
            if bus_end > bus_any[channel]:
                bus_any[channel] = bus_end
        self._bus_total_busy[channel] += burst
        finish = bus_start + burst

        self.queue_delay_total += start - now
        self.service_time_total += finish - start
        return finish

    # repro-hot
    def access(
        self, now: Cycles, line_number: int, is_write: bool, bulk: bool = False
    ) -> AccessResult:
        """Perform one 64 B access; returns start/finish in CPU cycles.

        The full-result variant of :meth:`access_finish` — same schedule,
        same mutations — for callers that need start/row-hit/queue-delay
        (the fault-recovery path and the unit tests).
        """
        if self.injector is not None:
            # May raise Transient/UnrecoverableFaultError before any bank or
            # row state is touched, so an aborted access leaves no trace.
            self.injector.check_access(self.config.name, now, line_number, is_write)
        channels = self._channels
        channel = line_number % channels
        row_sequence = (line_number // channels) // self._lines_per_row
        bank = channel * self._banks_per_channel + row_sequence % self._banks_per_channel
        row = row_sequence // self._banks_per_channel

        open_rows = self._open_rows
        open_row = open_rows[bank]
        row_hit = open_row == row
        open_rows[bank] = row

        if row_hit:
            core_latency = self._lat_row_hit
            row_conflict = False
        elif open_row >= 0:
            core_latency = self._lat_row_conflict
            row_conflict = True
        else:
            core_latency = self._lat_row_closed
            row_conflict = False
        row_written = self._row_written
        if row_written[bank] and (row_conflict or not is_write):
            core_latency += self._write_recovery
            row_written[bank] = False
        if is_write:
            row_written[bank] = True
            self.writes += 1
        else:
            self.reads += 1
        if row_hit:
            self.row_hits += 1
        burst = self._burst

        if not self.model_contention:
            finish = now + core_latency + burst
            self.service_time_total += core_latency + burst
            return AccessResult(now, finish, row_hit, 0)

        occupancy = core_latency + burst
        start = self._reserve_bank(bank, now, occupancy, bulk)
        data_ready = start + core_latency
        bus_start = self._reserve_bus(channel, data_ready, burst, bulk)
        finish = bus_start + burst

        queue_delay = start - now
        self.queue_delay_total += queue_delay
        self.service_time_total += finish - start
        return AccessResult(start, finish, row_hit, queue_delay)

    def _reserve_bank(self, bank: int, now: int, duration: int, bulk: bool) -> int:
        """Grant ``[start, start+duration)`` on a bank; returns the start."""
        any_until = self._bank_any_until
        if bulk:
            start = max(now, any_until[bank])
            any_until[bank] = start + duration
        else:
            start = max(
                now,
                self._bank_demand_until[bank],
                min(any_until[bank], now + self.preempt_cap_cycles),
            )
            end = start + duration
            self._bank_demand_until[bank] = end
            if end > any_until[bank]:
                any_until[bank] = end
        self._bank_total_busy[bank] += duration
        return start

    def _reserve_bus(self, channel: int, now: int, duration: int, bulk: bool) -> int:
        """Grant ``[start, start+duration)`` on a channel bus; returns the start."""
        any_until = self._bus_any_until
        if bulk:
            start = max(now, any_until[channel])
            any_until[channel] = start + duration
        else:
            start = max(
                now,
                self._bus_demand_until[channel],
                min(any_until[channel], now + self.preempt_cap_cycles),
            )
            end = start + duration
            self._bus_demand_until[channel] = end
            if end > any_until[channel]:
                any_until[channel] = end
        self._bus_total_busy[channel] += duration
        return start

    def transfer_page(
        self, now: Cycles, first_line: int, line_count: int, is_write: bool,
        bulk: bool = False,
    ) -> Cycles:
        """Stream *line_count* consecutive lines; returns the finish time.

        Used by the swap machinery: a 4 KB page move is 64 line transfers
        that genuinely occupy banks and buses.  Swap engines issue at
        demand priority (the paper treats swap traffic as regular memory
        requests and bounds it by declining swaps, not by starving them);
        pass ``bulk=True`` for background work that must yield.

        The transfer is scheduled row-group at a time: consecutive lines of
        one row stream at burst rate behind a single activation, which is
        both how devices behave and ~4x fewer reservations than per-line
        scheduling.  With no injector armed the row groups are derived in
        closed form — within one channel the lines advance through
        ``within_channel`` positions consecutively, so each group is the
        run up to the next ``lines_per_row`` boundary and no per-line
        address mapping happens at all.  An armed injector is the scalar
        fallback boundary: faults abort mid-group at an exact line, so
        that path walks lines individually (bit-identical schedule, the
        fault tests pin it).
        """
        if self.injector is not None:
            return self._transfer_page_faulty(
                now, first_line, line_count, is_write, bulk
            )
        finish = now
        burst = self._burst
        channels = self._channels
        banks = self._banks_per_channel
        lines_per_row = self._lines_per_row
        open_rows = self._open_rows
        row_written = self._row_written
        last_line = first_line + line_count
        model_contention = self.model_contention
        total_lines = 0
        total_hits = 0
        for channel in range(channels):
            # Lines of this run on one channel are `channels` apart.
            offset = (channel - first_line) % channels
            first_in_channel = first_line + offset
            if first_in_channel >= last_line:
                continue
            # Consecutive within-channel positions; row groups are the
            # runs between lines_per_row boundaries.
            w = first_in_channel // channels
            w_end = w + 1 + (last_line - 1 - first_in_channel) // channels
            while w < w_end:
                row_sequence = w // lines_per_row
                group_end = min(w_end, (row_sequence + 1) * lines_per_row)
                group = group_end - w
                w = group_end
                bank = channel * banks + row_sequence % banks
                row = row_sequence // banks
                open_row = open_rows[bank]
                row_hit = open_row == row
                open_rows[bank] = row
                if row_hit:
                    core_latency = self._lat_row_hit
                    row_conflict = False
                elif open_row >= 0:
                    core_latency = self._lat_row_conflict
                    row_conflict = True
                else:
                    core_latency = self._lat_row_closed
                    row_conflict = False
                if row_written[bank] and (row_conflict or not is_write):
                    core_latency += self._write_recovery
                    row_written[bank] = False
                if is_write:
                    row_written[bank] = True
                occupancy = core_latency + group * burst
                if not model_contention:
                    end = now + occupancy
                else:
                    start = self._reserve_bank(bank, now, occupancy, bulk)
                    bus_start = self._reserve_bus(
                        channel, start + core_latency, group * burst, bulk
                    )
                    end = bus_start + group * burst
                if end > finish:
                    finish = end
                total_lines += group
                if row_hit:
                    total_hits += group
                self.service_time_total += occupancy
        if is_write:
            self.writes += total_lines
        else:
            self.reads += total_lines
        self.row_hits += total_hits
        return finish

    def _transfer_page_faulty(
        self, now: Cycles, first_line: int, line_count: int, is_write: bool,
        bulk: bool,
    ) -> Cycles:
        """The per-line transfer walk used while fault injection is armed."""
        abort_after = self.injector.check_transfer(
            self.config.name, now, first_line, line_count, is_write
        )
        lines_done = 0
        finish = now
        burst = self.config.line_transfer_cycles
        channels = self.config.channels
        last_line = first_line + line_count
        for channel in range(channels):
            # Lines of this run on one channel are `channels` apart.
            offset = (channel - first_line) % channels
            channel_lines = list(range(first_line + offset, last_line, channels))
            if not channel_lines:
                continue
            index = 0
            while index < len(channel_lines):
                if abort_after is not None and lines_done >= abort_after:
                    # The partial work above already occupied banks/buses —
                    # that wasted service time is the cost of the fault.
                    raise TransientFaultError(
                        "bulk transfer died mid-flight",
                        device=self.config.name,
                        line=channel_lines[index],
                        cycle=now,
                    )
                _, bank, row = self.map_line(channel_lines[index])
                group = 1
                while index + group < len(channel_lines):
                    _, next_bank, next_row = self.map_line(channel_lines[index + group])
                    if next_bank != bank or next_row != row:
                        break
                    group += 1
                open_row = self._open_rows[bank]
                row_hit = open_row == row
                row_conflict = open_row >= 0 and not row_hit
                self._open_rows[bank] = row
                core_latency = self.config.read_latency_cycles(row_hit, row_conflict)
                if self._row_written[bank] and (row_conflict or not is_write):
                    core_latency += self.config.write_recovery_cycles()
                    self._row_written[bank] = False
                if is_write:
                    self._row_written[bank] = True
                occupancy = core_latency + group * burst
                if not self.model_contention:
                    end = now + occupancy
                else:
                    start = self._reserve_bank(bank, now, occupancy, bulk)
                    bus_start = self._reserve_bus(
                        channel, start + core_latency, group * burst, bulk
                    )
                    end = bus_start + group * burst
                if end > finish:
                    finish = end
                if is_write:
                    self.writes += group
                else:
                    self.reads += group
                if row_hit:
                    self.row_hits += group
                self.service_time_total += occupancy
                index += group
                lines_done += group
        if abort_after is not None:
            # Backstop: the drawn budget fell inside the final row group.
            raise TransientFaultError(
                "bulk transfer died mid-flight",
                device=self.config.name,
                line=last_line - 1,
                cycle=now,
            )
        return finish

    # -- introspection -------------------------------------------------------
    def channel_utilization(self, elapsed: int) -> float:
        """Mean data-bus utilization across channels over *elapsed* cycles."""
        busy = self._bus_total_busy
        if not busy or elapsed <= 0:
            return 0.0
        return sum(min(1.0, b / elapsed) for b in busy) / len(busy)

    def earliest_bus_free(self, now: Cycles) -> Cycles:
        """Earliest time any channel data bus is free."""
        return min(max(now, b) for b in self._bus_any_until)
