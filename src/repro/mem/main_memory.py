"""The flat hybrid physical address space: DRAM + NVM behind one interface.

Physical pages ``[0, dram_pages)`` live in DRAM; pages
``[dram_pages, total_pages)`` live in NVM (see
:class:`repro.common.config.HybridMemoryConfig`).  The HMC and all swap
schemes address memory by *physical line number* and this class routes each
access to the right device with a device-local address, so that channel
interleaving inside each technology behaves like a real module.
"""

from __future__ import annotations

from repro.common.addr import LINES_PER_PAGE
from repro.common.config import HybridMemoryConfig
from repro.common.stats import StatsRegistry
from repro.mem.device import AccessResult, MemoryDevice


class MainMemory:
    """Routes line accesses to the DRAM or NVM device."""

    def __init__(
        self,
        config: HybridMemoryConfig,
        stats: StatsRegistry,
        model_contention: bool = True,
    ):
        self.config = config
        self.stats = stats
        self.dram = MemoryDevice(config.dram, stats, model_contention)
        self.nvm = MemoryDevice(config.nvm, stats, model_contention)
        self._dram_lines = config.dram_pages * LINES_PER_PAGE

    def attach_injector(self, injector) -> None:
        """Arm fault injection (``repro.faults``) on both devices."""
        self.dram.injector = injector
        self.nvm.injector = injector

    def is_dram_line(self, line_number: int) -> bool:
        """True if the physical line lies in the DRAM address range."""
        return line_number < self._dram_lines

    def device_for_line(self, line_number: int) -> MemoryDevice:
        """Return the device that owns the physical line."""
        return self.dram if self.is_dram_line(line_number) else self.nvm

    def access(
        self, now: int, line_number: int, is_write: bool, bulk: bool = False
    ) -> AccessResult:
        """Access one 64 B physical line; returns device timing.

        ``bulk`` marks background traffic (write-backs) that must yield to
        demand requests in the device's scheduler.
        """
        if self.is_dram_line(line_number):
            return self.dram.access(now, line_number, is_write, bulk)
        return self.nvm.access(now, line_number - self._dram_lines, is_write, bulk)

    # repro-hot
    def access_finish(
        self, now: int, line_number: int, is_write: bool, bulk: bool = False
    ) -> int:
        """Like :meth:`access` but returns only the finish time.

        The demand hot path (no :class:`AccessResult` allocation); see
        :meth:`repro.mem.device.MemoryDevice.access_finish`.
        """
        if line_number < self._dram_lines:
            return self.dram.access_finish(now, line_number, is_write, bulk)
        return self.nvm.access_finish(
            now, line_number - self._dram_lines, is_write, bulk
        )

    def read_page(self, now: int, ppn: int, bulk: bool = False) -> int:
        """Read all 64 lines of physical page *ppn*; return finish time."""
        return self._transfer_page(now, ppn, is_write=False, bulk=bulk)

    def write_page(self, now: int, ppn: int, bulk: bool = False) -> int:
        """Write all 64 lines of physical page *ppn*; return finish time."""
        return self._transfer_page(now, ppn, is_write=True, bulk=bulk)

    def _transfer_page(self, now: int, ppn: int, is_write: bool, bulk: bool) -> int:
        first_line = ppn * LINES_PER_PAGE
        if first_line < self._dram_lines:
            device = self.dram
            local_first = first_line
        else:
            device = self.nvm
            local_first = first_line - self._dram_lines
        return device.transfer_page(now, local_first, LINES_PER_PAGE, is_write, bulk)

    def transfer_segment(
        self, now: int, first_line: int, line_count: int, is_write: bool,
        bulk: bool = False,
    ) -> int:
        """Stream *line_count* lines starting at physical line *first_line*.

        Used by the 2 KB-segment baselines (PoM, MemPod).
        """
        if first_line < self._dram_lines:
            device = self.dram
            local_first = first_line
        else:
            device = self.nvm
            local_first = first_line - self._dram_lines
        return device.transfer_page(now, local_first, line_count, is_write, bulk)
