"""Memory-device substrate: DRAM/NVM timing, channels, banks, swap buffers.

This package plays the role DRAMSim2 plays in the paper's infrastructure: it
turns line-granularity read/write requests into latencies that reflect row
buffer locality, bank occupancy, and channel bandwidth, for two differently
parameterised technologies (Table I).
"""

from repro.mem.device import AccessResult, MemoryDevice
from repro.mem.main_memory import MainMemory
from repro.mem.swap_buffer import SwapBufferPool

__all__ = ["AccessResult", "MemoryDevice", "MainMemory", "SwapBufferPool"]
