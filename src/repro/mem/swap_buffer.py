"""Swap buffers inside the memory modules (Section III-C1, III-D3).

While a swap is in flight, the pages participating in it live (wholly or
partially) in swap buffers.  Requests that target those pages are serviced
from the buffers instead of stalling behind the swap — the paper notes the
buffers "temporarily act as prefetch buffers" for the hot pages being moved.

We model a buffer entry as "the data of segment *key* is available in a
buffer during the time window [available_from, release_at)".  A request for
that segment inside the window is serviced at a fixed SRAM-like latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.stats import StatsRegistry


@dataclass
class _BufferEntry:
    key: int
    available_from: int
    release_at: int


class SwapBufferPool:
    """A fixed number of page-sized buffers keyed by data identity."""

    def __init__(
        self,
        capacity: int,
        stats: StatsRegistry,
        service_latency_cycles: int = 30,
        stats_prefix: str = "swap_buffers",
    ):
        if capacity <= 0:
            raise ValueError("swap buffer pool needs positive capacity")
        self.capacity = capacity
        self.stats = stats
        self.service_latency_cycles = service_latency_cycles
        self._prefix = stats_prefix
        # Stats keys precomputed once so the hot paths never build strings.
        self._key_allocation_failures = stats_prefix + "/allocation_failures"
        self._key_allocations = stats_prefix + "/allocations"
        self._key_serviced = stats_prefix + "/serviced"
        self._entries: Dict[int, _BufferEntry] = {}

    def _expire(self, now: int) -> None:
        expired = [key for key, e in self._entries.items() if e.release_at <= now]
        for key in expired:
            del self._entries[key]

    def try_hold(self, key: int, available_from: int, release_at: int) -> bool:
        """Hold segment *key* in a buffer for the given window.

        Returns False if no buffer is free (the swap then proceeds without
        buffer servicing for this segment, which only costs performance).
        """
        self._expire(available_from)
        if key in self._entries:
            entry = self._entries[key]
            entry.available_from = min(entry.available_from, available_from)
            entry.release_at = max(entry.release_at, release_at)
            return True
        if len(self._entries) >= self.capacity:
            self.stats.add(self._key_allocation_failures)
            return False
        self._entries[key] = _BufferEntry(key, available_from, release_at)
        self.stats.add(self._key_allocations)
        return True

    def service(self, now: int, key: int) -> Optional[int]:
        """Return the finish time of servicing *key* from a buffer, or None.

        None means the data is not in any buffer at time *now*.
        """
        entry = self._entries.get(key)
        if entry is None or not (entry.available_from <= now < entry.release_at):
            return None
        self.stats.add(self._key_serviced)
        return now + self.service_latency_cycles

    def release(self, key: int) -> None:
        """Explicitly free the buffer holding *key* (no-op if absent)."""
        self._entries.pop(key, None)

    def in_flight(self, now: int, key: int) -> bool:
        """True if *key* currently resides in a buffer."""
        entry = self._entries.get(key)
        return entry is not None and entry.available_from <= now < entry.release_at

    def held_windows(self) -> Dict[int, tuple]:
        """``{key: (available_from, release_at)}`` for every held buffer.

        Checker introspection: expired entries are included until the next
        allocation expires them, so callers filter by their own ``now``.
        """
        return {
            key: (entry.available_from, entry.release_at)
            for key, entry in self._entries.items()
        }

    @property
    def occupancy(self) -> int:
        return len(self._entries)
