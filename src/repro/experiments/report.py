"""Run every table and figure and render one text report.

Used by ``examples/full_evaluation.py`` and by the EXPERIMENTS.md
regeneration flow.  All heavy lifting is cached by the runner, so the
marginal cost of rendering every figure after the first sweep is nil.
"""

from __future__ import annotations

from typing import List

from repro.experiments import (
    ablation_hints,
    ablation_nocorr,
    ablation_partial,
    fig7_access_breakdown,
    fig8_swap_effectiveness,
    fig9_prefetch_accuracy,
    fig10_swap_mix,
    fig11_swap_rate,
    fig12_pte_miss,
    fig13_prtc_wait,
    fig14_performance,
    tables,
)
from repro.experiments.figures import FigureResult
from repro.experiments.runner import ExperimentRunner

FIGURE_MODULES = [
    fig7_access_breakdown,
    fig8_swap_effectiveness,
    fig9_prefetch_accuracy,
    fig10_swap_mix,
    fig11_swap_rate,
    fig12_pte_miss,
    fig13_prtc_wait,
    fig14_performance,
    ablation_nocorr,
    ablation_hints,
    ablation_partial,
]


def compute_all(runner: ExperimentRunner) -> List[FigureResult]:
    """Compute every reproduced table and figure."""
    results = [tables.table1(), tables.table2(), tables.table3(runner.scale)]
    results.extend(module.compute(runner) for module in FIGURE_MODULES)
    return results


def generate_report(runner: ExperimentRunner) -> str:
    """Render every table/figure into one plain-text report."""
    sections = [result.render() for result in compute_all(runner)]
    header = (
        "PageSeer reproduction — full evaluation report\n"
        f"(scale 1/{runner.scale}, {runner.measure_ops} measured ops/core, "
        f"{runner.warmup_ops} warm-up ops/core, seed {runner.seed})\n"
    )
    return header + "\n\n".join(sections)
