"""Section V-C: PageSeer versus PageSeer-NoCorr (no follower information).

Removing the follower fields from the PCTc disables correlation
prefetching.  The paper finds the two configurations deliver similar
performance on average — the MMU signal alone already announces most
future page accesses — with per-workload variation (radix gains 11% from
correlation, LULESH loses 3%).
"""

from __future__ import annotations

from repro.experiments.figures import FigureResult, geometric_mean
from repro.experiments.runner import ExperimentRunner


def compute(runner: ExperimentRunner) -> FigureResult:
    default = runner.run_matrix(["pageseer"])["pageseer"]
    nocorr = runner.run_matrix(["pageseer"], variant="nocorr")["pageseer"]
    result = FigureResult(
        figure_id="Section V-C",
        title="PageSeer vs PageSeer-NoCorr (correlation-prefetch ablation)",
        columns=["workload", "ipc", "ipc_nocorr", "speedup_from_corr"],
    )
    ratios = []
    for name in runner.workload_names():
        ipc = default[name].ipc
        ipc_nocorr = nocorr[name].ipc
        ratio = ipc / ipc_nocorr if ipc_nocorr > 0 else 0.0
        if ratio > 0:
            ratios.append(ratio)
        result.rows.append([name, ipc, ipc_nocorr, ratio])
    result.rows.append(["GEOMEAN", "", "", geometric_mean(ratios)])
    result.notes.append(
        "paper: similar performance on average; correlation helps when TLB "
        "misses are rare, hurts when page patterns change often"
    )
    return result
