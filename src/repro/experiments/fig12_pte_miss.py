"""Figure 12: PTE requests from TLB misses that miss the caches.

For each TLB miss, the page walk's final request (the line holding the
PTE) may hit in L2/L3 or miss and reach the memory controller.  The figure
reports that miss rate; the paper finds 14.5% on average, and notes that
over 99% of the requests that do reach the HMC are satisfied by the MMU
Driver's 16-line PTE cache.
"""

from __future__ import annotations

from repro.experiments.figures import FigureResult, arithmetic_mean
from repro.experiments.runner import ExperimentRunner


def compute(runner: ExperimentRunner) -> FigureResult:
    per_workload = runner.run_matrix(["pageseer"])["pageseer"]
    result = FigureResult(
        figure_id="Figure 12",
        title="TLB-miss PTE requests missing L2+L3 (PageSeer)",
        columns=["workload", "tlb_misses", "pte_cache_miss%", "mmu_driver_hit%"],
    )
    rates = []
    driver_rates = []
    for name, metrics in per_workload.items():
        rate = metrics.pte_cache_miss_rate
        result.rows.append(
            [
                name,
                metrics.tlb_misses,
                100 * rate,
                100 * metrics.mmu_driver_hit_rate,
            ]
        )
        if metrics.tlb_misses:
            rates.append(rate)
        if metrics.pte_llc_misses:
            driver_rates.append(metrics.mmu_driver_hit_rate)
    result.rows.append(
        [
            "AVERAGE",
            "",
            100 * arithmetic_mean(rates),
            100 * arithmetic_mean(driver_rates),
        ]
    )
    result.notes.append(
        "paper: 14.5% of PTE requests miss the caches; >99% of those are "
        "then served by the MMU Driver cache"
    )
    return result
