"""Figure 8: positive / negative / neutral main-memory accesses.

An access is *positive* when a swap let it hit DRAM (or a swap buffer)
although its home is NVM, *negative* when a swap pushed it to NVM although
its home is DRAM, and *neutral* otherwise.  Headline: PageSeer attains the
most positive accesses (81.3% average in the paper) and almost no negative
ones (~1%).
"""

from __future__ import annotations

from repro.experiments.figures import (
    FigureResult,
    SUITE_LABELS,
    SUITE_ORDER,
    arithmetic_mean,
    suite_mean,
)
from repro.experiments.runner import ExperimentRunner

SCHEMES = ["pom", "mempod", "pageseer"]


def compute(runner: ExperimentRunner) -> FigureResult:
    matrix = runner.run_matrix(SCHEMES)
    result = FigureResult(
        figure_id="Figure 8",
        title="Swap effectiveness: positive / negative / neutral accesses (%)",
        columns=["suite", "scheme", "positive%", "negative%", "neutral%"],
    )
    for suite in SUITE_ORDER:
        for scheme in SCHEMES:
            per_workload = matrix[scheme]
            result.rows.append(
                [
                    SUITE_LABELS[suite],
                    scheme,
                    100 * suite_mean(per_workload, suite, lambda m: m.positive_share),
                    100 * suite_mean(per_workload, suite, lambda m: m.negative_share),
                    100 * suite_mean(per_workload, suite, lambda m: m.neutral_share),
                ]
            )
    for scheme in SCHEMES:
        values = list(matrix[scheme].values())
        result.rows.append(
            [
                "AVERAGE",
                scheme,
                100 * arithmetic_mean([m.positive_share for m in values]),
                100 * arithmetic_mean([m.negative_share for m in values]),
                100 * arithmetic_mean([m.neutral_share for m in values]),
            ]
        )
    result.notes.append(
        "paper: PageSeer has 16% / 13% more positive accesses than PoM / "
        "MemPod and removes practically all negative accesses"
    )
    return result
