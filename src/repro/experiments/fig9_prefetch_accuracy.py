"""Figure 9: accuracy of PageSeer's prefetch swaps.

A prefetch swap is *accurate* when the page receives at least 14 positive
accesses (the swap-cost break-even) while it sits in fast memory.  Paper
headline: 86.7% average accuracy, with GemsFDTD the outlier (28.3%)
because its page-access patterns change over time.
"""

from __future__ import annotations

from repro.experiments.figures import FigureResult, arithmetic_mean
from repro.experiments.runner import ExperimentRunner


def compute(runner: ExperimentRunner) -> FigureResult:
    per_workload = runner.run_matrix(["pageseer"])["pageseer"]
    result = FigureResult(
        figure_id="Figure 9",
        title="Prefetch-swap accuracy (PageSeer)",
        columns=["workload", "prefetch_swaps", "accurate", "accuracy%"],
    )
    accuracies = []
    for name, metrics in per_workload.items():
        judged = metrics.prefetch_accurate + metrics.prefetch_inaccurate
        accuracy = metrics.prefetch_accuracy
        result.rows.append(
            [name, judged, metrics.prefetch_accurate, 100 * accuracy]
        )
        if judged > 0:
            accuracies.append(accuracy)
    result.rows.append(
        ["AVERAGE", "", "", 100 * arithmetic_mean(accuracies)]
    )
    result.notes.append(
        "paper: 86.7% average accuracy; averaged over workloads that "
        "performed prefetch swaps"
    )
    return result
