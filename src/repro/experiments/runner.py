"""Experiment execution with an on-disk result cache.

Figures 7, 8, 10, 13, and 14 all consume the same PoM / MemPod / PageSeer
runs over the 26 workloads; Figure 11 adds a no-bandwidth-heuristic
variant and Section V-C a no-correlation variant.  The runner executes
each distinct (scheme, workload, variant, sizing) combination once and
caches the resulting metrics as JSON keyed by every input that affects
the outcome, including a cache version bumped on model changes.

The sweep path degrades gracefully rather than abandoning work
(``docs/FAULTS.md``): cache writes are atomic, torn or stale cache files
are treated as misses, failed or overdue pool workers are retried with
exponential backoff, and every completed result is salvaged even when
the sweep as a whole raises :class:`repro.common.errors.SweepError`.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import time
import warnings
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro import persist
from repro.common.config import CheckConfig, FaultConfig, SystemConfig
from repro.common.errors import (
    FaultError,
    PersistError,
    SweepError,
    WorkerFaultError,
)
from repro.common.rng import DeterministicRng
from repro.sim.metrics import RunMetrics
from repro.sim.system import build_system
from repro.workloads import all_workloads, workload_by_name

#: Bump when a simulator change invalidates cached results.
CACHE_VERSION = 3

#: First retry waits this long; attempt ``n`` waits ``base << n`` seconds.
#: Kept tiny: the backoff is for scheduling fairness (and testability),
#: not for placating a remote service.
_BACKOFF_BASE_SECONDS = 0.01

DEFAULT_SCALE = 512
#: The warm-up must cover the longest workload's first full sweep
#: (fft: ~384 pages x 64 lines = ~25K ops/core) so the PCT has history
#: when measurement starts — mirroring the paper's 1.5B-instruction warm-up.
DEFAULT_MEASURE_OPS = 10_000
DEFAULT_WARMUP_OPS = 26_000


def _variant_default(config: SystemConfig) -> SystemConfig:
    return config


def _variant_nocorr(config: SystemConfig) -> SystemConfig:
    """PageSeer-NoCorr (Section V-C): PCTc entries carry no follower info."""
    return dataclasses.replace(
        config,
        pageseer=dataclasses.replace(config.pageseer, correlation_enabled=False),
    )


def _variant_nobw(config: SystemConfig) -> SystemConfig:
    """PageSeer w/o BW-opt (Figure 11): Swap Driver heuristic disabled."""
    return dataclasses.replace(
        config,
        pageseer=dataclasses.replace(
            config.pageseer, bandwidth_heuristic_enabled=False
        ),
    )


def _variant_nohints(config: SystemConfig) -> SystemConfig:
    """PageSeer without the MMU signal (used by ablation benches)."""
    return dataclasses.replace(
        config,
        pageseer=dataclasses.replace(config.pageseer, mmu_hints_enabled=False),
    )


VARIANTS: Dict[str, Callable[[SystemConfig], SystemConfig]] = {
    "default": _variant_default,
    "nocorr": _variant_nocorr,
    "nobw": _variant_nobw,
    "nohints": _variant_nohints,
}

#: RunMetrics fields persisted in the cache (``raw`` is dropped: it is
#: large and only useful interactively).
_METRIC_FIELDS = [
    field.name for field in dataclasses.fields(RunMetrics) if field.name != "raw"
]


class ExperimentRunner:
    """Runs (scheme, workload, variant) simulations with caching."""

    def __init__(
        self,
        scale: int = DEFAULT_SCALE,
        measure_ops: int = DEFAULT_MEASURE_OPS,
        warmup_ops: int = DEFAULT_WARMUP_OPS,
        seed: int = 0,
        cache_dir: Optional[Path] = None,
        verbose: bool = False,
        workloads: Optional[List[str]] = None,
        worker_check_level: str = "full",
        faults: Optional[FaultConfig] = None,
        request_timeout: Optional[float] = None,
        max_attempts: int = 3,
    ):
        self.scale = scale
        self.measure_ops = measure_ops
        self.warmup_ops = warmup_ops
        self.seed = seed
        self.verbose = verbose
        #: Fault-injection configuration threaded into every simulation
        #: (device faults) and into the sweep workers themselves (crash /
        #: stall injection).  None or ``enabled=False`` costs nothing.
        self.faults = faults
        #: Wall-clock seconds a pool worker may take before its request is
        #: retried on a fresh worker (None: no timeout).  Running futures
        #: cannot be interrupted, so an overdue worker keeps running — if
        #: it finishes after all, its result is still salvaged.
        self.request_timeout = request_timeout
        #: Total tries per request for *retryable* failures (injected
        #: worker faults and timeouts); genuine simulator bugs fail fast.
        self.max_attempts = max(1, max_attempts)
        #: Sanitizer level for pool workers.  Sweep runs are where silent
        #: model corruption would quietly poison every figure, and the
        #: checking cost hides behind process-level parallelism — so the
        #: worker path checks at "full" by default.  The serial paths stay
        #: unchecked; the sanitizer is metrics-neutral, so cached results
        #: agree regardless of which path produced them.
        self.worker_check_level = worker_check_level
        self._workloads = list(workloads) if workloads is not None else None
        if cache_dir is None:
            env = os.environ.get("REPRO_CACHE_DIR")
            cache_dir = Path(env) if env else Path(".repro_cache")
        self.cache_dir = Path(cache_dir)
        self._memory: Dict[str, RunMetrics] = {}

    # -- cache plumbing ------------------------------------------------------
    def _sizing(self) -> Tuple[int, int, int, int, str]:
        return (
            self.scale, self.measure_ops, self.warmup_ops, self.seed,
            self.worker_check_level,
        )

    def _key(self, scheme: str, workload: str, variant: str) -> str:
        from repro.experiments.jobcore import cache_key

        return cache_key((scheme, workload, variant), self._sizing(), self.faults)

    def _cache_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _load(self, key: str) -> Optional[RunMetrics]:
        if key in self._memory:
            return self._memory[key]
        path = self._cache_path(key)
        if not path.exists():
            return None
        try:
            payload = persist.read_json(path, site="cache")
            metrics = RunMetrics(raw={}, **{k: payload[k] for k in _METRIC_FIELDS})
        except (PersistError, OSError, KeyError, TypeError) as exc:
            # A torn write from a killed process, a checksum failure
            # (bit-rot, a lying disk), a file from an older metrics
            # schema, or plain corruption: all are recoverable by
            # re-simulating, so warn and treat the entry as a miss.
            warnings.warn(
                f"unreadable cache entry {path.name} "
                f"({type(exc).__name__}: {exc}); treating as a cache miss",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        self._memory[key] = metrics
        return metrics

    def _store(self, key: str, metrics: RunMetrics) -> None:
        self._memory[key] = metrics
        payload = {name: getattr(metrics, name) for name in _METRIC_FIELDS}
        path = self._cache_path(key)
        try:
            # Atomic + checksummed: a crash mid-write can never leave a
            # torn JSON file behind, and a reader detects later bit-rot.
            persist.write_json(path, payload, site="cache")
        except PersistError as exc:
            # Losing one cache write costs a re-simulation on the next
            # run, never correctness — the in-memory copy above still
            # serves this process.
            warnings.warn(
                f"could not persist cache entry {path.name} ({exc}); "
                f"result kept in memory only",
                RuntimeWarning,
                stacklevel=2,
            )

    # -- execution --------------------------------------------------------------
    def run(
        self, scheme: str, workload_name: str, variant: str = "default"
    ) -> RunMetrics:
        """Run (or fetch from cache) one simulation and return its metrics."""
        key = self._key(scheme, workload_name, variant)
        cached = self._load(key)
        if cached is not None:
            return cached
        if self.verbose:
            print(f"[runner] simulating {scheme}/{workload_name}/{variant} ...")
        system = build_system(
            scheme,
            workload_by_name(workload_name),
            scale=self.scale,
            seed=self.seed,
            config_mutator=VARIANTS[variant],
            faults=self.faults,
        )
        metrics = system.run(self.measure_ops, self.warmup_ops)
        self._store(key, metrics)
        return metrics

    def run_matrix(
        self,
        schemes: Iterable[str],
        workload_names: Optional[Iterable[str]] = None,
        variant: str = "default",
    ) -> Dict[str, Dict[str, RunMetrics]]:
        """Return ``{scheme: {workload: metrics}}`` over the workload list."""
        if workload_names is None:
            workload_names = self.workload_names()
        names = list(workload_names)
        return {
            scheme: {name: self.run(scheme, name, variant) for name in names}
            for scheme in schemes
        }

    def run_many(
        self,
        requests: Iterable[Tuple[str, str, str]],
        jobs: Optional[int] = None,
        supervise: Optional[Path] = None,
    ) -> Dict[Tuple[str, str, str], RunMetrics]:
        """Run many (scheme, workload, variant) triples, in parallel.

        Simulations are independent CPU-bound processes, so a process pool
        cuts a cold sweep roughly by the core count.  Cached results are
        returned without spawning work; results computed by workers are
        stored in the cache by the parent.  ``jobs=None`` uses the CPU
        count; ``jobs=1`` degrades to the serial path (useful under
        debuggers).

        ``supervise`` switches to the supervised path
        (:class:`repro.experiments.supervisor.SweepSupervisor`): workers
        checkpoint into per-request directories under that root, a
        heartbeat watchdog kills hung workers, and retries *resume* from
        the last checkpoint instead of re-simulating — see
        docs/CHECKPOINTS.md.

        Resilience: a request whose worker fails with an infrastructure
        fault (:class:`repro.common.errors.FaultError`) or overruns
        ``request_timeout`` is retried with exponential backoff up to
        ``max_attempts`` total tries.  Running futures cannot be
        interrupted, so a timed-out worker keeps running in the
        background; if it produces a result after all, that result is
        salvaged.  A *non-retryable* failure (a genuine simulator bug)
        cancels the queued-but-unstarted work, but already-running
        simulations still finish and cache.  Either way every completed
        result is cached before the closing
        :class:`repro.common.errors.SweepError` names each offending
        (scheme, workload, variant) and how many attempts it got.
        """
        if supervise is not None:
            from repro.experiments.supervisor import SweepSupervisor

            return SweepSupervisor(self, supervise).run(requests, jobs=jobs)
        requests = list(dict.fromkeys(requests))
        results: Dict[Tuple[str, str, str], RunMetrics] = {}
        pending = []
        for request in requests:
            cached = self._load(self._key(*request))
            if cached is not None:
                results[request] = cached
            else:
                pending.append(request)
        if not pending:
            return results
        failures: List[Tuple[Tuple[str, str, str], BaseException]] = []
        attempts: Dict[Tuple[str, str, str], int] = {}
        if jobs == 1:
            for request in pending:
                attempt = 0
                while True:
                    attempts[request] = attempt + 1
                    try:
                        _inject_worker_fault(self.faults, request, attempt)
                        results[request] = self.run(*request)
                        break
                    except Exception as exc:
                        if (
                            not _retryable(exc)
                            or attempt + 1 >= self.max_attempts
                        ):
                            _annotate_failure(exc, request)
                            failures.append((request, exc))
                            break
                        time.sleep(_BACKOFF_BASE_SECONDS * (1 << attempt))
                        attempt += 1
            if failures:
                raise SweepError(failures, attempts=attempts)
            return results

        sizing = (
            self.scale, self.measure_ops, self.warmup_ops, self.seed,
            self.worker_check_level,
        )
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=jobs)
        #: future -> (request, 0-based attempt); overdue futures stay here
        #: (they cannot be interrupted) but leave ``deadlines``.
        futures: Dict[concurrent.futures.Future, Tuple[Tuple[str, str, str], int]] = {}
        deadlines: Dict[concurrent.futures.Future, float] = {}
        resolved: set = set()
        abandoned = False

        def submit(request: Tuple[str, str, str], attempt: int) -> None:
            attempts[request] = attempt + 1
            future = pool.submit(
                _run_one_for_pool, request, sizing, self.faults, attempt
            )
            futures[future] = (request, attempt)
            if self.request_timeout is not None:
                deadlines[future] = time.monotonic() + self.request_timeout

        def harvest(request: Tuple[str, str, str], metrics: RunMetrics) -> None:
            self._store(self._key(*request), metrics)
            results[request] = metrics
            if self.verbose:
                print(f"[runner] finished {'/'.join(request)}")

        try:
            for request in pending:
                submit(request, 0)
            while futures:
                wait_timeout = None
                if deadlines:
                    wait_timeout = max(
                        0.0, min(deadlines.values()) - time.monotonic()
                    )
                done, _ = concurrent.futures.wait(
                    set(futures),
                    timeout=wait_timeout,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    request, attempt = futures.pop(future)
                    deadlines.pop(future, None)
                    if request in resolved:
                        # A timed-out attempt that landed after its
                        # replacement was scheduled: salvage the result if
                        # the request still lacks one.
                        if request not in results:
                            try:
                                metrics = future.result()
                            except Exception:
                                continue
                            harvest(request, metrics)
                            failures[:] = [
                                pair for pair in failures if pair[0] != request
                            ]
                        continue
                    try:
                        metrics = future.result()
                    except concurrent.futures.CancelledError:
                        resolved.add(request)
                        continue
                    except Exception as exc:
                        if (
                            _retryable(exc)
                            and attempt + 1 < self.max_attempts
                            and not abandoned
                        ):
                            time.sleep(_BACKOFF_BASE_SECONDS * (1 << attempt))
                            submit(request, attempt + 1)
                            continue
                        _annotate_failure(exc, request)
                        failures.append((request, exc))
                        resolved.add(request)
                        if not _retryable(exc):
                            # A genuine bug: stop launching queued work;
                            # already-running futures finish (and are
                            # harvested) so their results cache.
                            abandoned = True
                            for other in futures:
                                other.cancel()
                        continue
                    resolved.add(request)
                    harvest(request, metrics)
                if deadlines:
                    now = time.monotonic()
                    for future, (request, attempt) in list(futures.items()):
                        limit = deadlines.get(future)
                        if limit is None or now < limit:
                            continue
                        del deadlines[future]
                        if request in resolved:
                            continue
                        if attempt + 1 < self.max_attempts and not abandoned:
                            submit(request, attempt + 1)
                        else:
                            exc: BaseException = WorkerFaultError(
                                f"no result within {self.request_timeout:.1f}s "
                                f"(attempt {attempt + 1})",
                                device="worker",
                            )
                            _annotate_failure(exc, request)
                            failures.append((request, exc))
                            resolved.add(request)
        except KeyboardInterrupt:
            # Ctrl-C must interrupt the sweep promptly: drop the queued
            # work and re-raise without joining the running workers (a
            # plain `with` block would block here until every in-flight
            # simulation finished).
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)
        if failures:
            raise SweepError(failures, attempts=attempts)
        return results

    def prewarm(self, jobs: Optional[int] = None) -> None:
        """Populate the cache for every run the standard figures need."""
        requests: List[Tuple[str, str, str]] = []
        for name in self.workload_names():
            for scheme in ("pageseer", "pom", "mempod"):
                requests.append((scheme, name, "default"))
            requests.append(("pageseer", name, "nobw"))
            requests.append(("pageseer", name, "nocorr"))
            requests.append(("pageseer", name, "nohints"))
        self.run_many(requests, jobs=jobs)

    def workload_names(self) -> List[str]:
        """The workloads this runner covers (all 26 unless restricted)."""
        if self._workloads is not None:
            return list(self._workloads)
        return [spec.name for spec in all_workloads()]


def _annotate_failure(exc: BaseException, request: Tuple[str, str, str]) -> None:
    """Stamp the failing (scheme, workload, variant) onto the traceback.

    Pool workers re-raise in the parent with the remote traceback attached
    but without saying *which* sweep request died; the note makes every
    rendered traceback self-identifying.  ``add_note`` appeared in 3.11;
    older interpreters still get the names via SweepError's message.
    """
    note = f"while simulating {'/'.join(request)}"
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:
        add_note(note)


def _retryable(exc: BaseException) -> bool:
    """Whether a sweep failure is worth a fresh attempt.

    Injected faults (worker crashes, stalls promoted to timeouts) are
    transient infrastructure conditions; anything else is a genuine
    simulator bug that would fail identically on every retry.
    """
    return isinstance(exc, FaultError)


def _fault_signature(faults: Optional[FaultConfig]) -> str:
    """Cache-key suffix for output-shaping fault fields.

    Kept as an alias of :func:`repro.experiments.jobcore.fault_signature`
    (the shared definition the distributed sweep service also keys job
    ids from) for the benefit of existing imports.
    """
    from repro.experiments.jobcore import fault_signature

    return fault_signature(faults)


def _inject_worker_fault(
    faults: Optional[FaultConfig],
    request: Tuple[str, str, str],
    attempt: int,
) -> None:
    """Simulated infrastructure trouble: stall and/or crash this worker.

    Deterministic per (request, attempt): the RNG stream name includes the
    attempt number, so a crashed request's retry draws fresh numbers and
    can succeed — while re-running the whole sweep reproduces the exact
    same crash/stall schedule.
    """
    if faults is None or not faults.enabled:
        return
    if faults.worker_crash_rate <= 0.0 and faults.worker_stall_rate <= 0.0:
        return
    stream = f"fault/worker/{'/'.join(request)}/attempt{attempt}"
    rng = DeterministicRng(stream, faults.fault_seed)
    if (
        faults.worker_stall_rate > 0.0
        and rng.random() < faults.worker_stall_rate
    ):
        time.sleep(faults.worker_stall_seconds)
    if (
        faults.worker_crash_rate > 0.0
        and rng.random() < faults.worker_crash_rate
    ):
        raise WorkerFaultError(
            f"simulated worker crash (attempt {attempt + 1})", device="worker"
        )


def _run_one_for_pool(
    request: Tuple[str, str, str],
    sizing: Tuple[int, int, int, int, str],
    faults: Optional[FaultConfig] = None,
    attempt: int = 0,
) -> RunMetrics:
    """Process-pool worker: one simulation with the sanitizer attached."""
    scheme, workload_name, variant = request
    scale, measure_ops, warmup_ops, seed, check_level = sizing
    # Import inside the worker so forked/spawned processes initialise
    # their own module state (notably dynamically-registered variants).
    from repro.experiments import ablation_partial, dram_capacity, sensitivity  # noqa: F401

    _inject_worker_fault(faults, request, attempt)
    check = CheckConfig(level=check_level) if check_level != "off" else None
    system = build_system(
        scheme,
        workload_by_name(workload_name),
        scale=scale,
        seed=seed,
        config_mutator=VARIANTS[variant],
        check=check,
        faults=faults,
    )
    metrics = system.run(measure_ops, warmup_ops)
    return dataclasses.replace(metrics, raw={})
