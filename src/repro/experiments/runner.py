"""Experiment execution with an on-disk result cache.

Figures 7, 8, 10, 13, and 14 all consume the same PoM / MemPod / PageSeer
runs over the 26 workloads; Figure 11 adds a no-bandwidth-heuristic
variant and Section V-C a no-correlation variant.  The runner executes
each distinct (scheme, workload, variant, sizing) combination once and
caches the resulting metrics as JSON keyed by every input that affects
the outcome, including a cache version bumped on model changes.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import json
import os
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.config import CheckConfig, SystemConfig
from repro.common.errors import SweepError
from repro.sim.metrics import RunMetrics
from repro.sim.system import build_system
from repro.workloads import all_workloads, workload_by_name

#: Bump when a simulator change invalidates cached results.
CACHE_VERSION = 2

DEFAULT_SCALE = 512
#: The warm-up must cover the longest workload's first full sweep
#: (fft: ~384 pages x 64 lines = ~25K ops/core) so the PCT has history
#: when measurement starts — mirroring the paper's 1.5B-instruction warm-up.
DEFAULT_MEASURE_OPS = 10_000
DEFAULT_WARMUP_OPS = 26_000


def _variant_default(config: SystemConfig) -> SystemConfig:
    return config


def _variant_nocorr(config: SystemConfig) -> SystemConfig:
    """PageSeer-NoCorr (Section V-C): PCTc entries carry no follower info."""
    return dataclasses.replace(
        config,
        pageseer=dataclasses.replace(config.pageseer, correlation_enabled=False),
    )


def _variant_nobw(config: SystemConfig) -> SystemConfig:
    """PageSeer w/o BW-opt (Figure 11): Swap Driver heuristic disabled."""
    return dataclasses.replace(
        config,
        pageseer=dataclasses.replace(
            config.pageseer, bandwidth_heuristic_enabled=False
        ),
    )


def _variant_nohints(config: SystemConfig) -> SystemConfig:
    """PageSeer without the MMU signal (used by ablation benches)."""
    return dataclasses.replace(
        config,
        pageseer=dataclasses.replace(config.pageseer, mmu_hints_enabled=False),
    )


VARIANTS: Dict[str, Callable[[SystemConfig], SystemConfig]] = {
    "default": _variant_default,
    "nocorr": _variant_nocorr,
    "nobw": _variant_nobw,
    "nohints": _variant_nohints,
}

#: RunMetrics fields persisted in the cache (``raw`` is dropped: it is
#: large and only useful interactively).
_METRIC_FIELDS = [
    field.name for field in dataclasses.fields(RunMetrics) if field.name != "raw"
]


class ExperimentRunner:
    """Runs (scheme, workload, variant) simulations with caching."""

    def __init__(
        self,
        scale: int = DEFAULT_SCALE,
        measure_ops: int = DEFAULT_MEASURE_OPS,
        warmup_ops: int = DEFAULT_WARMUP_OPS,
        seed: int = 0,
        cache_dir: Optional[Path] = None,
        verbose: bool = False,
        workloads: Optional[List[str]] = None,
        worker_check_level: str = "full",
    ):
        self.scale = scale
        self.measure_ops = measure_ops
        self.warmup_ops = warmup_ops
        self.seed = seed
        self.verbose = verbose
        #: Sanitizer level for pool workers.  Sweep runs are where silent
        #: model corruption would quietly poison every figure, and the
        #: checking cost hides behind process-level parallelism — so the
        #: worker path checks at "full" by default.  The serial paths stay
        #: unchecked; the sanitizer is metrics-neutral, so cached results
        #: agree regardless of which path produced them.
        self.worker_check_level = worker_check_level
        self._workloads = list(workloads) if workloads is not None else None
        if cache_dir is None:
            env = os.environ.get("REPRO_CACHE_DIR")
            cache_dir = Path(env) if env else Path(".repro_cache")
        self.cache_dir = Path(cache_dir)
        self._memory: Dict[str, RunMetrics] = {}

    # -- cache plumbing ------------------------------------------------------
    def _key(self, scheme: str, workload: str, variant: str) -> str:
        return (
            f"v{CACHE_VERSION}_{scheme}_{workload}_{variant}"
            f"_s{self.scale}_m{self.measure_ops}_w{self.warmup_ops}"
            f"_seed{self.seed}"
        )

    def _cache_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def _load(self, key: str) -> Optional[RunMetrics]:
        if key in self._memory:
            return self._memory[key]
        path = self._cache_path(key)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            return None
        metrics = RunMetrics(raw={}, **{k: payload[k] for k in _METRIC_FIELDS})
        self._memory[key] = metrics
        return metrics

    def _store(self, key: str, metrics: RunMetrics) -> None:
        self._memory[key] = metrics
        payload = {name: getattr(metrics, name) for name in _METRIC_FIELDS}
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._cache_path(key).write_text(json.dumps(payload))

    # -- execution --------------------------------------------------------------
    def run(
        self, scheme: str, workload_name: str, variant: str = "default"
    ) -> RunMetrics:
        """Run (or fetch from cache) one simulation and return its metrics."""
        key = self._key(scheme, workload_name, variant)
        cached = self._load(key)
        if cached is not None:
            return cached
        if self.verbose:
            print(f"[runner] simulating {scheme}/{workload_name}/{variant} ...")
        system = build_system(
            scheme,
            workload_by_name(workload_name),
            scale=self.scale,
            seed=self.seed,
            config_mutator=VARIANTS[variant],
        )
        metrics = system.run(self.measure_ops, self.warmup_ops)
        self._store(key, metrics)
        return metrics

    def run_matrix(
        self,
        schemes: Iterable[str],
        workload_names: Optional[Iterable[str]] = None,
        variant: str = "default",
    ) -> Dict[str, Dict[str, RunMetrics]]:
        """Return ``{scheme: {workload: metrics}}`` over the workload list."""
        if workload_names is None:
            workload_names = self.workload_names()
        names = list(workload_names)
        return {
            scheme: {name: self.run(scheme, name, variant) for name in names}
            for scheme in schemes
        }

    def run_many(
        self,
        requests: Iterable[Tuple[str, str, str]],
        jobs: Optional[int] = None,
    ) -> Dict[Tuple[str, str, str], RunMetrics]:
        """Run many (scheme, workload, variant) triples, in parallel.

        Simulations are independent CPU-bound processes, so a process pool
        cuts a cold sweep roughly by the core count.  Cached results are
        returned without spawning work; results computed by workers are
        stored in the cache by the parent.  ``jobs=None`` uses the CPU
        count; ``jobs=1`` degrades to the serial path (useful under
        debuggers).

        A failing request does not abandon the sweep mid-flight: every
        completed result is still cached, the remaining queue is cancelled
        cleanly, and a :class:`repro.common.errors.SweepError` naming each
        offending (scheme, workload, variant) is raised at the end.
        """
        requests = list(dict.fromkeys(requests))
        results: Dict[Tuple[str, str, str], RunMetrics] = {}
        pending = []
        for request in requests:
            cached = self._load(self._key(*request))
            if cached is not None:
                results[request] = cached
            else:
                pending.append(request)
        if not pending:
            return results
        failures: List[Tuple[Tuple[str, str, str], BaseException]] = []
        if jobs == 1:
            for request in pending:
                try:
                    results[request] = self.run(*request)
                except Exception as exc:
                    _annotate_failure(exc, request)
                    failures.append((request, exc))
            if failures:
                raise SweepError(failures)
            return results

        sizing = (
            self.scale, self.measure_ops, self.warmup_ops, self.seed,
            self.worker_check_level,
        )
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=jobs)
        try:
            futures = {
                pool.submit(_run_one_for_pool, request, sizing): request
                for request in pending
            }
            for future in concurrent.futures.as_completed(futures):
                request = futures[future]
                try:
                    metrics = future.result()
                except concurrent.futures.CancelledError:
                    continue
                except Exception as exc:
                    _annotate_failure(exc, request)
                    failures.append((request, exc))
                    # Stop launching queued work; already-running futures
                    # finish (and are harvested) so their results cache.
                    for other in futures:
                        other.cancel()
                    continue
                self._store(self._key(*request), metrics)
                results[request] = metrics
                if self.verbose:
                    print(f"[runner] finished {'/'.join(request)}")
        except KeyboardInterrupt:
            # Ctrl-C must interrupt the sweep promptly: drop the queued
            # work and re-raise without joining the running workers (a
            # plain `with` block would block here until every in-flight
            # simulation finished).
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)
        if failures:
            raise SweepError(failures)
        return results

    def prewarm(self, jobs: Optional[int] = None) -> None:
        """Populate the cache for every run the standard figures need."""
        requests: List[Tuple[str, str, str]] = []
        for name in self.workload_names():
            for scheme in ("pageseer", "pom", "mempod"):
                requests.append((scheme, name, "default"))
            requests.append(("pageseer", name, "nobw"))
            requests.append(("pageseer", name, "nocorr"))
            requests.append(("pageseer", name, "nohints"))
        self.run_many(requests, jobs=jobs)

    def workload_names(self) -> List[str]:
        """The workloads this runner covers (all 26 unless restricted)."""
        if self._workloads is not None:
            return list(self._workloads)
        return [spec.name for spec in all_workloads()]


def _annotate_failure(exc: BaseException, request: Tuple[str, str, str]) -> None:
    """Stamp the failing (scheme, workload, variant) onto the traceback.

    Pool workers re-raise in the parent with the remote traceback attached
    but without saying *which* sweep request died; the note makes every
    rendered traceback self-identifying.  ``add_note`` appeared in 3.11;
    older interpreters still get the names via SweepError's message.
    """
    note = f"while simulating {'/'.join(request)}"
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:
        add_note(note)


def _run_one_for_pool(
    request: Tuple[str, str, str], sizing: Tuple[int, int, int, int, str]
) -> RunMetrics:
    """Process-pool worker: one simulation with the sanitizer attached."""
    scheme, workload_name, variant = request
    scale, measure_ops, warmup_ops, seed, check_level = sizing
    # Import inside the worker so forked/spawned processes initialise
    # their own module state (notably dynamically-registered variants).
    from repro.experiments import ablation_partial, dram_capacity, sensitivity  # noqa: F401

    check = CheckConfig(level=check_level) if check_level != "off" else None
    system = build_system(
        scheme,
        workload_by_name(workload_name),
        scale=scale,
        seed=seed,
        config_mutator=VARIANTS[variant],
        check=check,
    )
    metrics = system.run(measure_ops, warmup_ops)
    return dataclasses.replace(metrics, raw={})
