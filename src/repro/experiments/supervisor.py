"""Supervised sweep execution: watchdog, checkpoints, and resume.

The pool path in :meth:`repro.experiments.runner.ExperimentRunner.run_many`
retries failed requests *from scratch* — fine for short CI-sized runs,
wasteful for paper-sized sweeps where one request is minutes of work and
a hung worker would otherwise stall the whole sweep behind a timeout.
This module trades the executor for directly-managed
:class:`multiprocessing.Process` workers so the supervisor can do three
things a pool cannot:

* **checkpoint** — each worker runs with a per-request checkpoint
  directory and writes a rolling ``latest.ckpt`` every N ops;
* **watch** — each worker heartbeats (touches a file) from the
  simulation loop; a heartbeat older than ``stall_timeout`` marks the
  worker hung and the supervisor SIGKILLs it;
* **resume** — a killed or crashed worker is relaunched and continues
  from its last checkpoint instead of re-simulating from op zero, and an
  interrupted *sweep* (the supervisor process itself dying) continues
  from the manifest + per-request checkpoints via :meth:`resume`.

Determinism is inherited from the checkpoint layer: a resumed request
produces the bit-identical metrics of an uninterrupted one, so results
are attempt- and kill-schedule-invariant and safe to cache.

Deterministic stall injection (``FaultConfig.worker_stall_rate``) is
honoured here by wedging the worker *mid-run, after its first periodic
checkpoint* — on attempt 0 only — which is exactly the scenario the
watchdog exists for, and what the fault-matrix CI job exercises.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.config import CheckConfig, FaultConfig
from repro.common.errors import CheckpointError, SweepError, WorkerFaultError
from repro.common.rng import DeterministicRng
from repro.sim.metrics import RunMetrics
from repro.snapshot import LATEST_NAME, Checkpointer, load_checkpoint
from repro.snapshot.hooks import HEARTBEAT_NAME

Request = Tuple[str, str, str]

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

#: Default ops between worker checkpoints; small enough that a killed
#: worker rarely loses more than a second of simulation.
DEFAULT_CHECKPOINT_EVERY = 20_000


def request_dirname(request: Request) -> str:
    return "_".join(request)


# -- worker side -------------------------------------------------------------


class _StallingCheckpointer(Checkpointer):
    """A checkpointer that wedges the worker once, at a fixed op count.

    Models an infrastructure hang (NFS stall, runaway GC, cosmic rays in
    the scheduler): the simulation stops making progress *and* stops
    heartbeating, which is the condition the supervisor's watchdog must
    detect and break.  The sleep happens outside simulated time, so the
    eventual metrics are unaffected — only liveness is.
    """

    def __init__(self, *args, stall_at_ops: int, stall_seconds: float, **kwargs):
        super().__init__(*args, **kwargs)
        self._stall_at_ops = stall_at_ops
        self._stall_seconds = stall_seconds
        self._stalled = False

    def on_step(self, system) -> None:
        super().on_step(system)
        if not self._stalled and system.steps_total >= self._stall_at_ops:
            self._stalled = True
            time.sleep(self._stall_seconds)


def _build_worker_checkpointer(
    request: Request,
    attempt: int,
    faults: Optional[FaultConfig],
    directory: Path,
    checkpoint_every: int,
    heartbeat_seconds: float,
    resumed_from_ops: int,
) -> Checkpointer:
    stall = 0.0
    if (
        attempt == 0
        and faults is not None
        and faults.enabled
        and faults.worker_stall_rate > 0.0
    ):
        stream = f"fault/supervised/{'/'.join(request)}/stall"
        if DeterministicRng(stream, faults.fault_seed).random() < faults.worker_stall_rate:
            stall = faults.worker_stall_seconds
    if stall > 0.0:
        # Wedge only after at least one periodic checkpoint exists, so
        # the relaunch genuinely *resumes* rather than starting over.
        return _StallingCheckpointer(
            directory,
            every_ops=checkpoint_every,
            heartbeat_seconds=heartbeat_seconds,
            stall_at_ops=resumed_from_ops + 2 * checkpoint_every,
            stall_seconds=stall,
        )
    return Checkpointer(
        directory,
        every_ops=checkpoint_every,
        heartbeat_seconds=heartbeat_seconds,
    )


def _inject_worker_crash(
    faults: Optional[FaultConfig], request: Request, attempt: int
) -> None:
    """The crash half of the pool path's worker-fault injection.

    Stalls are NOT injected here: under supervision a stall is modelled
    mid-run by :class:`_StallingCheckpointer` (a pre-run sleep would
    wedge the worker before it armed its heartbeat, which no real hang
    does).  The stall draw is still consumed so the crash schedule stays
    aligned with the pool path's per-(request, attempt) RNG stream.
    """
    if faults is None or not faults.enabled:
        return
    if faults.worker_crash_rate <= 0.0:
        return
    stream = f"fault/worker/{'/'.join(request)}/attempt{attempt}"
    rng = DeterministicRng(stream, faults.fault_seed)
    if faults.worker_stall_rate > 0.0:
        rng.random()
    if rng.random() < faults.worker_crash_rate:
        raise WorkerFaultError(
            f"simulated worker crash (attempt {attempt + 1})", device="worker"
        )


def _supervised_worker(
    request: Request,
    sizing: Tuple[int, int, int, int, str],
    faults: Optional[FaultConfig],
    attempt: int,
    directory: str,
    checkpoint_every: int,
    heartbeat_seconds: float,
) -> None:
    """One supervised simulation; result lands in ``<dir>/result.json``."""
    from repro.experiments import ablation_partial, dram_capacity, sensitivity  # noqa: F401
    from repro.experiments.runner import VARIANTS, _METRIC_FIELDS
    from repro.sim.system import build_system
    from repro.workloads import workload_by_name

    scheme, workload_name, variant = request
    scale, measure_ops, warmup_ops, seed, check_level = sizing
    directory = Path(directory)
    latest = directory / LATEST_NAME

    resumed_from_ops = 0
    if latest.exists():
        system = load_checkpoint(latest)
        resumed_from_ops = system.steps_total
    else:
        _inject_worker_crash(faults, request, attempt)
        check = CheckConfig(level=check_level) if check_level != "off" else None
        system = build_system(
            scheme,
            workload_by_name(workload_name),
            scale=scale,
            seed=seed,
            config_mutator=VARIANTS[variant],
            check=check,
            faults=faults,
        )
    checkpointer = _build_worker_checkpointer(
        request, attempt, faults, directory,
        checkpoint_every, heartbeat_seconds, resumed_from_ops,
    )
    checkpointer.arm(system)
    if resumed_from_ops:
        metrics = system.resume_run()
    else:
        metrics = system.run(measure_ops, warmup_ops)

    payload = {name: getattr(metrics, name) for name in _METRIC_FIELDS}
    payload["resumed_at_ops"] = resumed_from_ops
    payload["attempt"] = attempt
    result_path = directory / "result.json"
    temp = result_path.with_name(f"result.json.{os.getpid()}.tmp")
    temp.write_text(json.dumps(payload))
    os.replace(temp, result_path)


# -- supervisor side ---------------------------------------------------------


@dataclasses.dataclass
class _Worker:
    request: Request
    attempt: int
    process: multiprocessing.Process
    directory: Path
    started: float


class SweepSupervisor:
    """Runs sweep requests under watchdog supervision with resume."""

    def __init__(
        self,
        runner,
        checkpoint_root,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        heartbeat_seconds: float = 0.5,
        stall_timeout: float = 30.0,
        poll_seconds: float = 0.1,
        verbose: Optional[bool] = None,
    ):
        self.runner = runner
        self.root = Path(checkpoint_root)
        self.checkpoint_every = int(checkpoint_every)
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.stall_timeout = float(stall_timeout)
        self.poll_seconds = float(poll_seconds)
        self.verbose = runner.verbose if verbose is None else verbose
        #: Observability for tests and the CLI summary.
        self.kills = 0
        self.resumes: Dict[Request, int] = {}
        self.attempts: Dict[Request, int] = {}

    # -- manifest ---------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _write_manifest(self, requests: Sequence[Request], completed) -> None:
        runner = self.runner
        payload = {
            "manifest_version": MANIFEST_VERSION,
            "sizing": {
                "scale": runner.scale,
                "measure_ops": runner.measure_ops,
                "warmup_ops": runner.warmup_ops,
                "seed": runner.seed,
                "check_level": runner.worker_check_level,
            },
            "requests": [list(request) for request in requests],
            "completed": sorted("/".join(request) for request in completed),
            # The fault configuration participates in the result cache
            # key, so resume must rebuild the runner with the same one.
            "faults": (
                None if runner.faults is None
                else dataclasses.asdict(runner.faults)
            ),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        temp = self.manifest_path.with_name(f"{MANIFEST_NAME}.{os.getpid()}.tmp")
        temp.write_text(json.dumps(payload, indent=2))
        os.replace(temp, self.manifest_path)

    def read_manifest(self) -> Dict[str, object]:
        path = self.manifest_path
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise CheckpointError(
                f"no sweep manifest at {path}: nothing to resume "
                f"(start a sweep with a --checkpoint-root first)"
            )
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable sweep manifest {path}: {exc}")
        version = payload.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise CheckpointError(
                f"{path}: manifest version {version} unsupported "
                f"(this build reads {MANIFEST_VERSION})"
            )
        return payload

    # -- execution --------------------------------------------------------
    def run(self, requests: Sequence[Request], jobs: Optional[int] = None):
        """Run *requests*; returns ``{request: RunMetrics}`` like run_many."""
        requests = list(dict.fromkeys(tuple(r) for r in requests))
        jobs = jobs or os.cpu_count() or 1
        results: Dict[Request, RunMetrics] = {}
        failures: List[Tuple[Request, BaseException]] = []

        pending: List[Tuple[Request, int]] = []
        for request in requests:
            cached = self.runner._load(self.runner._key(*request))
            if cached is not None:
                results[request] = cached
            else:
                pending.append((request, 0))
        self._write_manifest(requests, results)
        if not pending:
            return results

        sizing = (
            self.runner.scale, self.runner.measure_ops,
            self.runner.warmup_ops, self.runner.seed,
            self.runner.worker_check_level,
        )
        live: List[_Worker] = []

        def launch(request: Request, attempt: int) -> None:
            directory = self.root / "requests" / request_dirname(request)
            directory.mkdir(parents=True, exist_ok=True)
            stale_result = directory / "result.json"
            if stale_result.exists():
                stale_result.unlink()
            if attempt > 0 and (directory / LATEST_NAME).exists():
                self.resumes[request] = self.resumes.get(request, 0) + 1
            self.attempts[request] = attempt + 1
            process = multiprocessing.Process(
                target=_supervised_worker,
                args=(request, sizing, self.runner.faults, attempt,
                      str(directory), self.checkpoint_every,
                      self.heartbeat_seconds),
                daemon=True,
            )
            process.start()
            live.append(_Worker(request, attempt, process, directory,
                                time.monotonic()))
            if self.verbose:
                verb = "resuming" if attempt > 0 else "starting"
                print(f"[supervisor] {verb} {'/'.join(request)} "
                      f"(attempt {attempt + 1})")

        def harvest(worker: _Worker) -> bool:
            result_path = worker.directory / "result.json"
            try:
                payload = json.loads(result_path.read_text())
            except (OSError, json.JSONDecodeError):
                return False
            from repro.experiments.runner import _METRIC_FIELDS

            metrics = RunMetrics(
                raw={}, **{name: payload[name] for name in _METRIC_FIELDS}
            )
            self.runner._store(self.runner._key(*worker.request), metrics)
            results[worker.request] = metrics
            self._write_manifest(requests, results)
            if self.verbose:
                suffix = ""
                if payload.get("resumed_at_ops"):
                    suffix = f" (resumed at op {payload['resumed_at_ops']})"
                print(f"[supervisor] finished {'/'.join(worker.request)}"
                      f"{suffix}")
            return True

        def fail_or_retry(worker: _Worker, error: BaseException) -> None:
            if worker.attempt + 1 < self.runner.max_attempts:
                pending.append((worker.request, worker.attempt + 1))
            else:
                failures.append((worker.request, error))

        def heartbeat_age(worker: _Worker) -> float:
            heartbeat = worker.directory / HEARTBEAT_NAME
            now = time.monotonic()
            try:
                mtime = heartbeat.stat().st_mtime
            except OSError:
                return now - worker.started
            # st_mtime is wall-clock; measure staleness against it
            # directly and never beyond the worker's own lifetime.
            return min(time.time() - mtime, now - worker.started)

        while pending or live:
            while pending and len(live) < jobs:
                launch(*pending.pop(0))
            time.sleep(self.poll_seconds)
            for worker in list(live):
                if worker.process.exitcode is not None:
                    worker.process.join()
                    live.remove(worker)
                    if harvest(worker):
                        continue
                    fail_or_retry(worker, WorkerFaultError(
                        f"worker exited with code {worker.process.exitcode} "
                        f"and no result (attempt {worker.attempt + 1})",
                        device="worker",
                    ))
                elif heartbeat_age(worker) > self.stall_timeout:
                    worker.process.kill()
                    worker.process.join()
                    live.remove(worker)
                    self.kills += 1
                    if self.verbose:
                        print(f"[supervisor] killed hung worker "
                              f"{'/'.join(worker.request)} (no heartbeat for "
                              f">{self.stall_timeout:.0f}s)")
                    fail_or_retry(worker, WorkerFaultError(
                        f"worker hung (no heartbeat for "
                        f"{self.stall_timeout:.0f}s) and was killed "
                        f"(attempt {worker.attempt + 1})",
                        device="worker",
                    ))

        if failures:
            raise SweepError(failures, attempts=self.attempts)
        return results

    def resume(self, jobs: Optional[int] = None):
        """Continue the sweep described by this root's manifest."""
        manifest = self.read_manifest()
        sizing = manifest["sizing"]
        for name in ("scale", "measure_ops", "warmup_ops", "seed"):
            setattr(self.runner, name, sizing[name])
        self.runner.worker_check_level = sizing["check_level"]
        faults = manifest.get("faults")
        self.runner.faults = (
            None if faults is None else FaultConfig(**faults)
        )
        requests = [tuple(request) for request in manifest["requests"]]
        return self.run(requests, jobs=jobs)
