"""Supervised sweep execution: watchdog, checkpoints, and resume.

The pool path in :meth:`repro.experiments.runner.ExperimentRunner.run_many`
retries failed requests *from scratch* — fine for short CI-sized runs,
wasteful for paper-sized sweeps where one request is minutes of work and
a hung worker would otherwise stall the whole sweep behind a timeout.
This module trades the executor for directly-managed
:class:`multiprocessing.Process` workers so the supervisor can do three
things a pool cannot:

* **checkpoint** — each worker runs with a per-request checkpoint
  directory and writes a rolling ``latest.ckpt`` every N ops;
* **watch** — each worker heartbeats (touches a file) from the
  simulation loop; a heartbeat older than ``stall_timeout`` marks the
  worker hung and the supervisor SIGKILLs it;
* **resume** — a killed or crashed worker is relaunched and continues
  from its last checkpoint instead of re-simulating from op zero, and an
  interrupted *sweep* (the supervisor process itself dying) continues
  from the manifest + per-request checkpoints via :meth:`resume`.

Determinism is inherited from the checkpoint layer: a resumed request
produces the bit-identical metrics of an uninterrupted one, so results
are attempt- and kill-schedule-invariant and safe to cache.

Deterministic stall injection (``FaultConfig.worker_stall_rate``) is
honoured here by wedging the worker *mid-run, after its first periodic
checkpoint* — on attempt 0 only — which is exactly the scenario the
watchdog exists for, and what the fault-matrix CI job exercises.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import persist
from repro.common.config import FaultConfig
from repro.common.errors import (
    CheckpointError,
    CorruptPayloadError,
    ManifestVersionError,
    PersistError,
    SweepError,
    WorkerFaultError,
)
from repro.experiments.jobcore import (
    RESULT_NAME,
    Request,
    execute_job,
    inject_worker_crash,
    load_result,
    metrics_from_payload,
    request_dirname,
    sizing_signature,
    write_json_atomic,
)
from repro.sim.metrics import RunMetrics
from repro.snapshot import LATEST_NAME, Checkpointer
from repro.snapshot.hooks import HEARTBEAT_NAME

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

#: Keys the ``sizing`` block of a version-1 manifest must carry; a
#: manifest missing any of them is from a different schema generation
#: and must fail with a ManifestVersionError, not a KeyError.
_MANIFEST_SIZING_KEYS = ("scale", "measure_ops", "warmup_ops", "seed", "check_level")

_MANIFEST_HINT = (
    "start a fresh sweep with a new --checkpoint-root, or resume with the "
    "build that wrote this manifest"
)

#: Default ops between worker checkpoints; small enough that a killed
#: worker rarely loses more than a second of simulation.
DEFAULT_CHECKPOINT_EVERY = 20_000


# -- worker side -------------------------------------------------------------


class _StallingCheckpointer(Checkpointer):
    """A checkpointer that wedges the worker once, at a fixed op count.

    Models an infrastructure hang (NFS stall, runaway GC, cosmic rays in
    the scheduler): the simulation stops making progress *and* stops
    heartbeating, which is the condition the supervisor's watchdog must
    detect and break.  The sleep happens outside simulated time, so the
    eventual metrics are unaffected — only liveness is.
    """

    def __init__(self, *args, stall_at_ops: int, stall_seconds: float, **kwargs):
        super().__init__(*args, **kwargs)
        self._stall_at_ops = stall_at_ops
        self._stall_seconds = stall_seconds
        self._stalled = False

    def on_step(self, system) -> None:
        super().on_step(system)
        if not self._stalled and system.steps_total >= self._stall_at_ops:
            self._stalled = True
            time.sleep(self._stall_seconds)


def _make_stall_aware_checkpointer(
    request: Request,
    attempt: int,
    faults: Optional[FaultConfig],
    directory: Path,
    checkpoint_every: int,
    heartbeat_seconds: float,
    resumed_from_ops: int,
) -> Checkpointer:
    from repro.common.rng import DeterministicRng

    stall = 0.0
    if (
        attempt == 0
        and faults is not None
        and faults.enabled
        and faults.worker_stall_rate > 0.0
    ):
        stream = f"fault/supervised/{'/'.join(request)}/stall"
        if DeterministicRng(stream, faults.fault_seed).random() < faults.worker_stall_rate:
            stall = faults.worker_stall_seconds
    if stall > 0.0:
        # Wedge only after at least one periodic checkpoint exists, so
        # the relaunch genuinely *resumes* rather than starting over.
        return _StallingCheckpointer(
            directory,
            every_ops=checkpoint_every,
            heartbeat_seconds=heartbeat_seconds,
            stall_at_ops=resumed_from_ops + 2 * checkpoint_every,
            stall_seconds=stall,
        )
    return Checkpointer(
        directory,
        every_ops=checkpoint_every,
        heartbeat_seconds=heartbeat_seconds,
    )


def _supervised_worker(
    request: Request,
    sizing: Tuple[int, int, int, int, str],
    faults: Optional[FaultConfig],
    attempt: int,
    directory: str,
    checkpoint_every: int,
    heartbeat_seconds: float,
) -> None:
    """One supervised simulation; result lands in ``<dir>/result.json``.

    The execution core (resume-or-build, checkpointer arming, payload
    shape) is shared with the distributed ``sweepd`` workers via
    :func:`repro.experiments.jobcore.execute_job`; only the
    stall-injection checkpointer and the result *transport* (a file here,
    a socket there) differ.
    """
    directory = Path(directory)
    payload = execute_job(
        request, sizing, faults, attempt, directory,
        checkpoint_every=checkpoint_every,
        heartbeat_seconds=heartbeat_seconds,
        crash_injector=lambda req, att: inject_worker_crash(faults, req, att),
        make_checkpointer=lambda resumed_from_ops: _make_stall_aware_checkpointer(
            request, attempt, faults, directory,
            checkpoint_every, heartbeat_seconds, resumed_from_ops,
        ),
    )
    write_json_atomic(directory / RESULT_NAME, payload)


# -- supervisor side ---------------------------------------------------------


@dataclasses.dataclass
class _Worker:
    request: Request
    attempt: int
    process: multiprocessing.Process
    directory: Path
    started: float


class SweepSupervisor:
    """Runs sweep requests under watchdog supervision with resume."""

    def __init__(
        self,
        runner,
        checkpoint_root,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        heartbeat_seconds: float = 0.5,
        stall_timeout: float = 30.0,
        poll_seconds: float = 0.1,
        verbose: Optional[bool] = None,
    ):
        self.runner = runner
        self.root = Path(checkpoint_root)
        self.checkpoint_every = int(checkpoint_every)
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.stall_timeout = float(stall_timeout)
        self.poll_seconds = float(poll_seconds)
        self.verbose = runner.verbose if verbose is None else verbose
        #: Observability for tests and the CLI summary.
        self.kills = 0
        self.resumes: Dict[Request, int] = {}
        self.attempts: Dict[Request, int] = {}

    # -- manifest ---------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _write_manifest(self, requests: Sequence[Request], completed) -> None:
        runner = self.runner
        payload = {
            "manifest_version": MANIFEST_VERSION,
            "sizing": {
                "scale": runner.scale,
                "measure_ops": runner.measure_ops,
                "warmup_ops": runner.warmup_ops,
                "seed": runner.seed,
                "check_level": runner.worker_check_level,
            },
            "requests": [list(request) for request in requests],
            "completed": sorted("/".join(request) for request in completed),
            # The fault configuration participates in the result cache
            # key, so resume must rebuild the runner with the same one.
            "faults": (
                None if runner.faults is None
                else dataclasses.asdict(runner.faults)
            ),
        }
        try:
            write_json_atomic(
                self.manifest_path, payload, site="manifest", backup=True
            )
        except PersistError as exc:
            # A refused manifest write costs resume freshness, not
            # results (those are in the atomic cache): warn and carry on;
            # the next completed request retries the write.
            warnings.warn(
                f"could not persist sweep manifest ({exc}); "
                f"resume may replay already-completed requests",
                RuntimeWarning,
                stacklevel=2,
            )

    def read_manifest(self) -> Dict[str, object]:
        """Load and *validate* this root's manifest.

        Schema problems — a binary manifest from an older build, a
        version number this build does not read, or a version-1 file
        missing required fields — raise
        :class:`repro.common.errors.ManifestVersionError` with a
        remediation hint, so ``sweep --resume`` fails with one clear
        line instead of an unpickling/KeyError traceback.
        """
        path = self.manifest_path
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            raise CheckpointError(
                f"no sweep manifest at {path}: nothing to resume "
                f"(start a sweep with a --checkpoint-root first)"
            )
        except OSError as exc:
            raise CheckpointError(f"unreadable sweep manifest {path}: {exc}")
        if raw[:1] == b"\x80":
            # Pickle protocol-2+ opcode: a manifest from the pre-JSON
            # layout.  Unpickling it would at best crash and at worst
            # execute stale class definitions.
            raise ManifestVersionError(
                f"{path}: binary (pickled) manifest from an older build; "
                f"this build reads JSON manifests at version "
                f"{MANIFEST_VERSION}",
                hint=_MANIFEST_HINT,
            )
        try:
            payload = persist.verify_json_bytes(raw, path, "manifest")
        except CorruptPayloadError as exc:
            # Torn or bit-rotted primary: fall back to the ``.bak``
            # generation kept by every manifest write.  At most one
            # completed request stale — resume re-runs it from cache.
            backup = persist.read_json_or_none(
                persist.backup_path(path), site="manifest"
            )
            if backup is None:
                raise CheckpointError(
                    f"unreadable sweep manifest {path}: {exc}"
                )
            payload = backup
        version = payload.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise ManifestVersionError(
                f"{path}: manifest version {version} unsupported "
                f"(this build reads {MANIFEST_VERSION})",
                hint=_MANIFEST_HINT,
            )
        sizing = payload.get("sizing")
        missing = [
            key for key in _MANIFEST_SIZING_KEYS
            if not isinstance(sizing, dict) or key not in sizing
        ]
        if missing or not isinstance(payload.get("requests"), list):
            what = (
                f"missing sizing field(s) {', '.join(missing)}"
                if missing else "missing request list"
            )
            raise ManifestVersionError(
                f"{path}: version-{MANIFEST_VERSION} manifest with {what} "
                f"— written by an incompatible build",
                hint=_MANIFEST_HINT,
            )
        return payload

    # -- execution --------------------------------------------------------
    def run(self, requests: Sequence[Request], jobs: Optional[int] = None):
        """Run *requests*; returns ``{request: RunMetrics}`` like run_many."""
        requests = list(dict.fromkeys(tuple(r) for r in requests))
        jobs = jobs or os.cpu_count() or 1
        results: Dict[Request, RunMetrics] = {}
        failures: List[Tuple[Request, BaseException]] = []

        pending: List[Tuple[Request, int]] = []
        for request in requests:
            cached = self.runner._load(self.runner._key(*request))
            if cached is not None:
                results[request] = cached
            else:
                pending.append((request, 0))
        self._write_manifest(requests, results)
        if not pending:
            return results

        sizing = (
            self.runner.scale, self.runner.measure_ops,
            self.runner.warmup_ops, self.runner.seed,
            self.runner.worker_check_level,
        )
        # Per-request directories are salted with the sizing/fault
        # signature: two sweeps whose requests agree on
        # (scheme, workload, variant) but differ in seed or sizing must
        # never share a checkpoint or heartbeat file.
        signature = sizing_signature(sizing, self.runner.faults)
        live: List[_Worker] = []

        def launch(request: Request, attempt: int) -> None:
            directory = self.root / "requests" / request_dirname(request, signature)
            directory.mkdir(parents=True, exist_ok=True)
            stale_result = directory / RESULT_NAME
            if stale_result.exists():
                stale_result.unlink()
            if attempt > 0 and (directory / LATEST_NAME).exists():
                self.resumes[request] = self.resumes.get(request, 0) + 1
            self.attempts[request] = attempt + 1
            process = multiprocessing.Process(
                target=_supervised_worker,
                args=(request, sizing, self.runner.faults, attempt,
                      str(directory), self.checkpoint_every,
                      self.heartbeat_seconds),
                daemon=True,
            )
            process.start()
            live.append(_Worker(request, attempt, process, directory,
                                time.monotonic()))
            if self.verbose:
                verb = "resuming" if attempt > 0 else "starting"
                print(f"[supervisor] {verb} {'/'.join(request)} "
                      f"(attempt {attempt + 1})")

        def harvest(worker: _Worker) -> bool:
            # Checksummed read: a torn or bit-rotted result file reads as
            # "no result", and the worker is retried/resumed like a crash.
            payload = load_result(worker.directory)
            if payload is None:
                return False
            metrics = metrics_from_payload(payload)
            self.runner._store(self.runner._key(*worker.request), metrics)
            results[worker.request] = metrics
            self._write_manifest(requests, results)
            if self.verbose:
                suffix = ""
                if payload.get("resumed_at_ops"):
                    suffix = f" (resumed at op {payload['resumed_at_ops']})"
                print(f"[supervisor] finished {'/'.join(worker.request)}"
                      f"{suffix}")
            return True

        def fail_or_retry(worker: _Worker, error: BaseException) -> None:
            if worker.attempt + 1 < self.runner.max_attempts:
                pending.append((worker.request, worker.attempt + 1))
            else:
                failures.append((worker.request, error))

        def heartbeat_age(worker: _Worker) -> float:
            heartbeat = worker.directory / HEARTBEAT_NAME
            now = time.monotonic()
            try:
                mtime = heartbeat.stat().st_mtime
            except OSError:
                return now - worker.started
            # st_mtime is wall-clock; measure staleness against it
            # directly and never beyond the worker's own lifetime.
            return min(time.time() - mtime, now - worker.started)

        while pending or live:
            while pending and len(live) < jobs:
                launch(*pending.pop(0))
            time.sleep(self.poll_seconds)
            for worker in list(live):
                if worker.process.exitcode is not None:
                    worker.process.join()
                    live.remove(worker)
                    if harvest(worker):
                        continue
                    fail_or_retry(worker, WorkerFaultError(
                        f"worker exited with code {worker.process.exitcode} "
                        f"and no result (attempt {worker.attempt + 1})",
                        device="worker",
                    ))
                elif heartbeat_age(worker) > self.stall_timeout:
                    worker.process.kill()
                    worker.process.join()
                    live.remove(worker)
                    self.kills += 1
                    if self.verbose:
                        print(f"[supervisor] killed hung worker "
                              f"{'/'.join(worker.request)} (no heartbeat for "
                              f">{self.stall_timeout:.0f}s)")
                    fail_or_retry(worker, WorkerFaultError(
                        f"worker hung (no heartbeat for "
                        f"{self.stall_timeout:.0f}s) and was killed "
                        f"(attempt {worker.attempt + 1})",
                        device="worker",
                    ))

        if failures:
            raise SweepError(failures, attempts=self.attempts)
        return results

    def resume(self, jobs: Optional[int] = None):
        """Continue the sweep described by this root's manifest."""
        manifest = self.read_manifest()
        sizing = manifest["sizing"]
        for name in ("scale", "measure_ops", "warmup_ops", "seed"):
            setattr(self.runner, name, sizing[name])
        self.runner.worker_check_level = sizing["check_level"]
        faults = manifest.get("faults")
        try:
            self.runner.faults = (
                None if faults is None else FaultConfig(**faults)
            )
        except TypeError as exc:
            raise ManifestVersionError(
                f"{self.manifest_path}: fault configuration does not match "
                f"this build's schema ({exc})",
                hint=_MANIFEST_HINT,
            )
        requests = [tuple(request) for request in manifest["requests"]]
        return self.run(requests, jobs=jobs)
