"""Ablation: SILC-FM-style partial swaps (the Section VI extension).

PageSeer's related-work section suggests adopting SILC-FM's sub-block
bitmap "and avoid moving 4KB of data".  This ablation enables the
extension and measures the trade: swap bandwidth saved versus extra NVM
accesses for lazily-migrated residue lines.  It should help sparse-access
workloads (pointer chasers) and be neutral for dense streams, whose
bitmaps mark nearly every line.
"""

from __future__ import annotations

import dataclasses

from repro.common.config import SystemConfig
from repro.experiments.figures import FigureResult, geometric_mean
from repro.experiments.runner import ExperimentRunner, VARIANTS


def _variant_partial(config: SystemConfig) -> SystemConfig:
    return dataclasses.replace(
        config,
        pageseer=dataclasses.replace(config.pageseer, partial_swaps_enabled=True),
    )


VARIANTS.setdefault("partial", _variant_partial)

#: Sparse- and dense-access representatives (full 26 would be overkill for
#: an extension the paper only sketches).
WORKLOADS = ["mcfx8", "omnetppx8", "barnesx8", "lbmx4", "streamx4", "milcx4"]


def compute(runner: ExperimentRunner) -> FigureResult:
    names = [n for n in WORKLOADS if n in runner.workload_names()]
    default = runner.run_matrix(["pageseer"], names)["pageseer"]
    partial = runner.run_matrix(["pageseer"], names, variant="partial")["pageseer"]
    result = FigureResult(
        figure_id="Ablation (partial swaps)",
        title="PageSeer vs PageSeer with SILC-FM-style partial swaps",
        columns=["workload", "ipc", "ipc_partial", "speedup", "ammat", "ammat_partial"],
    )
    ratios = []
    for name in names:
        base = default[name]
        ext = partial[name]
        ratio = ext.ipc / base.ipc if base.ipc > 0 else 0.0
        if ratio > 0:
            ratios.append(ratio)
        result.rows.append(
            [name, base.ipc, ext.ipc, ratio, base.ammat, ext.ammat]
        )
    result.rows.append(["GEOMEAN", "", "", geometric_mean(ratios), "", ""])
    result.notes.append(
        "partial swaps move only observed-hot lines; cold lines migrate "
        "lazily on first touch (extension, not baseline PageSeer)"
    )
    return result
