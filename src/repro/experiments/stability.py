"""Seed stability: results must not hinge on one random stream.

The workload generators are synthetic, so a reviewer's first question is
whether the headline ratios are an artifact of one particular random
stream.  This module re-runs the three schemes under several seeds and
reports the spread of the PageSeer-vs-MemPod IPC ratio.
"""

from __future__ import annotations

from typing import List

from repro.experiments.figures import FigureResult
from repro.experiments.runner import ExperimentRunner

SEEDS = [0, 1, 2]
WORKLOADS = ["lbmx4", "milcx4"]
SCHEMES = ["pageseer", "mempod"]


def _runner_for_seed(runner: ExperimentRunner, seed: int) -> ExperimentRunner:
    return ExperimentRunner(
        scale=runner.scale,
        measure_ops=runner.measure_ops,
        warmup_ops=runner.warmup_ops,
        seed=seed,
        cache_dir=runner.cache_dir,
        workloads=WORKLOADS,
    )


def compute(runner: ExperimentRunner) -> FigureResult:
    names = [n for n in WORKLOADS if n in runner.workload_names()]
    result = FigureResult(
        figure_id="Stability",
        title="Seed stability of the PageSeer/MemPod IPC ratio",
        columns=["workload", "seed", "ipc_pageseer", "ipc_mempod", "ratio"],
    )
    ratios_by_workload = {}
    for name in names:
        for seed in SEEDS:
            seeded = _runner_for_seed(runner, seed)
            pageseer = seeded.run("pageseer", name)
            mempod = seeded.run("mempod", name)
            ratio = pageseer.ipc / mempod.ipc if mempod.ipc else 0.0
            ratios_by_workload.setdefault(name, []).append(ratio)
            result.rows.append([name, seed, pageseer.ipc, mempod.ipc, ratio])
    for name, ratios in ratios_by_workload.items():
        mean = sum(ratios) / len(ratios)
        spread = (max(ratios) - min(ratios)) / mean if mean else 0.0
        result.rows.append([f"{name} SPREAD", "", "", "", spread])
    result.notes.append(
        "spread = (max-min)/mean of the ratio across seeds; the winner "
        "must not change with the seed"
    )
    return result


def ratio_spreads(result: FigureResult) -> List[float]:
    return [row[4] for row in result.rows if str(row[0]).endswith("SPREAD")]
