"""Crossover study: how much DRAM before swapping stops paying?

PageSeer exists because DRAM is much smaller than the working set.  This
experiment sweeps the DRAM capacity (at fixed NVM size and fixed
workload) and compares PageSeer against the no-swap reference.  The
expected shape: a large PageSeer advantage under heavy pressure that
shrinks as DRAM grows, crossing into "barely matters" once the hot
working set fits — the capacity crossover that motivates hybrid designs.
"""

from __future__ import annotations

import dataclasses

from repro.common.config import SystemConfig
from repro.experiments.figures import FigureResult
from repro.experiments.runner import ExperimentRunner, VARIANTS

#: DRAM capacity multipliers relative to the Table I ratio (NVM fixed).
MULTIPLIERS = [1, 2, 4, 8]

WORKLOAD = "lbmx4"


def _make_variant(multiplier: int):
    def mutate(config: SystemConfig) -> SystemConfig:
        dram = dataclasses.replace(
            config.memory.dram,
            capacity_bytes=config.memory.dram.capacity_bytes * multiplier,
        )
        return dataclasses.replace(
            config, memory=dataclasses.replace(config.memory, dram=dram)
        )

    return mutate


def variant_name(multiplier: int) -> str:
    return f"dramcap_x{multiplier}"


for _multiplier in MULTIPLIERS:
    VARIANTS.setdefault(variant_name(_multiplier), _make_variant(_multiplier))


def compute(runner: ExperimentRunner) -> FigureResult:
    result = FigureResult(
        figure_id="Crossover",
        title=f"PageSeer benefit vs DRAM capacity ({WORKLOAD}, NVM fixed)",
        columns=[
            "dram_multiplier", "ipc_pageseer", "ipc_noswap",
            "speedup_over_noswap", "pageseer_fast_share",
        ],
    )
    for multiplier in MULTIPLIERS:
        name = variant_name(multiplier)
        pageseer = runner.run("pageseer", WORKLOAD, name)
        noswap = runner.run("noswap", WORKLOAD, name)
        speedup = pageseer.ipc / noswap.ipc if noswap.ipc else 0.0
        result.rows.append(
            [
                multiplier,
                pageseer.ipc,
                noswap.ipc,
                speedup,
                pageseer.dram_share + pageseer.buffer_share,
            ]
        )
    result.notes.append(
        "the speedup over no-swap should shrink toward 1.0 as DRAM grows "
        "(once the working set fits, there is nothing to swap for)"
    )
    return result


def speedups(result: FigureResult):
    return [row[3] for row in result.rows]
