"""Figure 7: percentage of main-memory accesses serviced by each module.

The paper shows, per benchmark suite and for PoM / MemPod / PageSeer, what
fraction of main-memory accesses were serviced from DRAM, NVM, or the swap
buffers.  Headline: PageSeer directs the most requests to DRAM (88.5% on
average in the paper) with a small but non-zero swap-buffer slice (2.2%).
"""

from __future__ import annotations

from repro.experiments.figures import (
    FigureResult,
    SUITE_LABELS,
    SUITE_ORDER,
    arithmetic_mean,
    suite_mean,
)
from repro.experiments.runner import ExperimentRunner

SCHEMES = ["pom", "mempod", "pageseer"]


def compute(runner: ExperimentRunner) -> FigureResult:
    matrix = runner.run_matrix(SCHEMES)
    result = FigureResult(
        figure_id="Figure 7",
        title="Main-memory accesses serviced by DRAM / NVM / swap buffers (%)",
        columns=["suite", "scheme", "dram%", "nvm%", "buffer%"],
    )
    for suite in SUITE_ORDER:
        for scheme in SCHEMES:
            per_workload = matrix[scheme]
            result.rows.append(
                [
                    SUITE_LABELS[suite],
                    scheme,
                    100 * suite_mean(per_workload, suite, lambda m: m.dram_share),
                    100 * suite_mean(per_workload, suite, lambda m: m.nvm_share),
                    100 * suite_mean(per_workload, suite, lambda m: m.buffer_share),
                ]
            )
    for scheme in SCHEMES:
        values = list(matrix[scheme].values())
        result.rows.append(
            [
                "AVERAGE",
                scheme,
                100 * arithmetic_mean([m.dram_share for m in values]),
                100 * arithmetic_mean([m.nvm_share for m in values]),
                100 * arithmetic_mean([m.buffer_share for m in values]),
            ]
        )
    result.notes.append(
        "paper: PageSeer averages 88.5% DRAM, 2.2% swap buffers; highest "
        "DRAM share of the three schemes"
    )
    return result


def average_dram_share(runner: ExperimentRunner, scheme: str) -> float:
    per_workload = runner.run_matrix([scheme])[scheme]
    return arithmetic_mean([m.dram_share for m in per_workload.values()])
