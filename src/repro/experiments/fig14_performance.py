"""Figure 14: IPC and AMMAT of PoM and PageSeer, normalised to MemPod.

The headline result of the paper: across the 26 workloads, PageSeer's IPC
is 28% higher than MemPod's and 19% higher than PoM's, while its AMMAT is
37% and 29% lower respectively.  MemPod never beats PageSeer on IPC; PoM
does only on milc and GemsFDTD.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.figures import FigureResult, geometric_mean
from repro.experiments.runner import ExperimentRunner

SCHEMES = ["pom", "mempod", "pageseer"]


def compute(runner: ExperimentRunner) -> FigureResult:
    matrix = runner.run_matrix(SCHEMES)
    result = FigureResult(
        figure_id="Figure 14",
        title="IPC and AMMAT normalised to MemPod",
        columns=[
            "workload",
            "ipc_pom", "ipc_pageseer",
            "ammat_pom", "ammat_pageseer",
        ],
    )
    ipc_ratios: Dict[str, list] = {"pom": [], "pageseer": []}
    ammat_ratios: Dict[str, list] = {"pom": [], "pageseer": []}
    for name in runner.workload_names():
        base = matrix["mempod"][name]
        row = [name]
        for metric, ratios in (("ipc", ipc_ratios), ("ammat", ammat_ratios)):
            base_value = getattr(base, metric)
            for scheme in ("pom", "pageseer"):
                value = getattr(matrix[scheme][name], metric)
                ratio = value / base_value if base_value else 0.0
                ratios[scheme].append(ratio)
        row.extend(
            [
                ipc_ratios["pom"][-1],
                ipc_ratios["pageseer"][-1],
                ammat_ratios["pom"][-1],
                ammat_ratios["pageseer"][-1],
            ]
        )
        result.rows.append(row)
    result.rows.append(
        [
            "GEOMEAN",
            geometric_mean(ipc_ratios["pom"]),
            geometric_mean(ipc_ratios["pageseer"]),
            geometric_mean(ammat_ratios["pom"]),
            geometric_mean(ammat_ratios["pageseer"]),
        ]
    )
    result.notes.append(
        "paper: PageSeer IPC is 1.28x MemPod and 1.19x PoM on average; "
        "PageSeer AMMAT is 0.63x MemPod and 0.71x PoM"
    )
    return result


def headline_ratios(runner: ExperimentRunner) -> Dict[str, float]:
    """The four headline numbers: PageSeer vs MemPod/PoM, IPC and AMMAT."""
    matrix = runner.run_matrix(SCHEMES)
    names = runner.workload_names()

    def ratio_geomean(metric: str, numerator: str, denominator: str) -> float:
        ratios = []
        for name in names:
            denominator_value = getattr(matrix[denominator][name], metric)
            numerator_value = getattr(matrix[numerator][name], metric)
            if denominator_value > 0 and numerator_value > 0:
                ratios.append(numerator_value / denominator_value)
        return geometric_mean(ratios)

    return {
        "ipc_vs_mempod": ratio_geomean("ipc", "pageseer", "mempod"),
        "ipc_vs_pom": ratio_geomean("ipc", "pageseer", "pom"),
        "ammat_vs_mempod": ratio_geomean("ammat", "pageseer", "mempod"),
        "ammat_vs_pom": ratio_geomean("ammat", "pageseer", "pom"),
    }
