"""Figure 11: swaps per kilo-instruction, with and without the BW heuristic.

The Swap Driver declines swaps while DRAM has been servicing more than 95%
of main-memory requests (Section V-B).  The figure compares the per-suite
swap rate of PageSeer with the heuristic (w/ BW-opt) and without it.
Paper headline: 0.19 versus 0.35 swaps per kilo-instruction on average —
the heuristic has an impact.
"""

from __future__ import annotations

from repro.experiments.figures import (
    FigureResult,
    SUITE_LABELS,
    SUITE_ORDER,
    arithmetic_mean,
    suite_mean,
)
from repro.experiments.runner import ExperimentRunner


def compute(runner: ExperimentRunner) -> FigureResult:
    with_bw = runner.run_matrix(["pageseer"])["pageseer"]
    without_bw = runner.run_matrix(["pageseer"], variant="nobw")["pageseer"]
    result = FigureResult(
        figure_id="Figure 11",
        title="Swap rate (swaps per kilo-instruction), PageSeer",
        columns=["suite", "w/ BW-opt", "w/o BW-opt"],
    )
    metric = lambda m: m.swaps_per_kilo_instruction
    for suite in SUITE_ORDER:
        result.rows.append(
            [
                SUITE_LABELS[suite],
                suite_mean(with_bw, suite, metric),
                suite_mean(without_bw, suite, metric),
            ]
        )
    result.rows.append(
        [
            "AVERAGE",
            arithmetic_mean([metric(m) for m in with_bw.values()]),
            arithmetic_mean([metric(m) for m in without_bw.values()]),
        ]
    )
    result.notes.append(
        "paper: 0.19 (w/ BW-opt) vs 0.35 (w/o) swaps per kilo-instruction"
    )
    return result
