"""Tables I, II, and III: configuration printers and consistency checks.

These are not measurements; they regenerate the paper's configuration
tables from the library's defaults so any drift between the code and the
paper is visible, and they compute the structure sizes Table II reports.
"""

from __future__ import annotations

from repro.common.config import SystemConfig, default_system_config
from repro.experiments.figures import FigureResult
from repro.workloads import all_workloads
from repro.workloads.base import footprint_pages_for
from repro.workloads.suites import BENCHMARKS, INSTANCE_COUNTS

#: Table II entry sizes in bytes.
ENTRY_BYTES = {"prtc": 3.5, "pctc": 10.5, "hpt": 5.25, "filter": 17.25}


def table1(config: SystemConfig = None) -> FigureResult:
    """Table I: the simulated system configuration."""
    config = config or default_system_config(scale=1)
    result = FigureResult(
        figure_id="Table I",
        title="Configuration of the system evaluated",
        columns=["parameter", "value"],
    )
    memory = config.memory
    rows = [
        ("cores", f"{config.cores} @ 2 GHz (2 cycles per memory cycle)"),
        ("cache line", "64 B"),
        ("l1", f"{config.l1.size_bytes // 1024}KB {config.l1.ways}-way, "
               f"{config.l1.latency_cycles} cycles"),
        ("l2", f"{config.l2.size_bytes // 1024}KB {config.l2.ways}-way, "
               f"{config.l2.latency_cycles} cycles"),
        ("l3", f"{config.l3.size_bytes // 1024}KB {config.l3.ways}-way, "
               f"{config.l3.latency_cycles} cycles, shared"),
        ("l1 tlb", f"{config.l1_tlb.entries} entries, {config.l1_tlb.ways}-way"),
        ("l2 tlb", f"{config.l2_tlb.entries} entries, {config.l2_tlb.ways}-way"),
        ("dram capacity", f"{memory.dram.capacity_bytes // (1024 * 1024)} MB"),
        ("nvm capacity", f"{memory.nvm.capacity_bytes // (1024 * 1024)} MB"),
        ("dram channels", memory.dram.channels),
        ("nvm channels", memory.nvm.channels),
        ("dram tCAS-tRCD-tRAS",
         f"{memory.dram.t_cas}-{memory.dram.t_rcd}-{memory.dram.t_ras}"),
        ("nvm tCAS-tRCD-tRAS",
         f"{memory.nvm.t_cas}-{memory.nvm.t_rcd}-{memory.nvm.t_ras}"),
        ("dram tRP,tWR", f"{memory.dram.t_rp},{memory.dram.t_wr}"),
        ("nvm tRP,tWR", f"{memory.nvm.t_rp},{memory.nvm.t_wr}"),
        ("dram ranks/channel; banks/rank",
         f"{memory.dram.ranks_per_channel}; {memory.dram.banks_per_rank}"),
        ("nvm ranks/channel; banks/rank",
         f"{memory.nvm.ranks_per_channel}; {memory.nvm.banks_per_rank}"),
    ]
    result.rows = [[name, str(value)] for name, value in rows]
    return result


def table2(config: SystemConfig = None) -> FigureResult:
    """Table II: PageSeer design parameters and structure sizes."""
    config = config or default_system_config(scale=1)
    ps = config.pageseer
    result = FigureResult(
        figure_id="Table II",
        title="PageSeer parameters",
        columns=["parameter", "value"],
    )
    dram_pages = config.memory.dram_pages
    total_pages = config.memory.total_pages
    rows = [
        ("swap size", "4 KB (one page)"),
        ("counters", f"{ps.counter_bits} bits (max {ps.counter_max})"),
        ("mmu-to-hmc latency", f"{ps.mmu_hint_latency_cycles} cycles @2GHz"),
        ("pctc prefetch swap threshold", ps.pct_prefetch_threshold),
        ("hpt swap threshold", ps.hpt_swap_threshold),
        ("hpt counter decrease interval",
         f"{ps.hpt_decay_interval_cycles} CPU cycles (= 50K @1GHz)"),
        ("prt associativity", f"{ps.prt_ways}-way"),
        ("prtc", f"{ps.prtc_entries} entries, {ps.prtc_ways}-way "
                 f"({ps.prtc_entries * ENTRY_BYTES['prtc'] / 1024:.1f} KB)"),
        ("pctc", f"{ps.pctc_entries} entries, {ps.pctc_ways}-way "
                 f"({ps.pctc_entries * ENTRY_BYTES['pctc'] / 1024:.1f} KB)"),
        ("hpt (each)", f"{ps.hpt_entries} entries "
                       f"({ps.hpt_entries * ENTRY_BYTES['hpt'] / 1024:.1f} KB)"),
        ("filter", f"{ps.filter_entries} entries "
                   f"({ps.filter_entries * ENTRY_BYTES['filter'] / 1024:.2f} KB)"),
        ("mmu driver", f"{ps.mmu_driver_pte_lines} lines with PTEs, 64 B per line"),
        ("prt in dram", f"{dram_pages * ENTRY_BYTES['prtc'] / 1024:.0f} KB"),
        ("pct in dram (with follower)",
         f"{total_pages * ENTRY_BYTES['pctc'] / 1024 / 1024:.1f} MB"),
        ("swap buffers", ps.swap_buffers),
        ("bandwidth heuristic",
         f"decline swaps above {ps.bandwidth_decline_dram_share:.0%} DRAM share"),
    ]
    result.rows = [[name, str(value)] for name, value in rows]
    result.notes.append(
        "paper: PRTc/PCTc 32KB each; HPT 5.3KB; Filter 2.2KB; PRT in DRAM "
        "426KB; PCT in DRAM 7MB with follower"
    )
    return result


def table3(scale: int = 1) -> FigureResult:
    """Table III: the 26 workloads and their footprints."""
    result = FigureResult(
        figure_id="Table III",
        title="Workloads (single-instance footprints)",
        columns=["workload", "suite", "cores", "MB(single)", "pages@scale"],
    )
    for spec in all_workloads():
        if spec.is_mix:
            footprint = "+".join(p.benchmark for p in spec.parts)
            pages = spec.footprint_pages(scale)
            result.rows.append([spec.name, spec.suite, spec.cores, footprint, pages])
        else:
            part = spec.parts[0]
            result.rows.append(
                [
                    spec.name,
                    spec.suite,
                    spec.cores,
                    part.footprint_mb,
                    footprint_pages_for(part.footprint_mb, scale),
                ]
            )
    result.notes.append("paper Table III lists 20 unique workloads + 6 mixes")
    return result


def paper_table3_consistency() -> bool:
    """Check our suite matches Table III's names and instance counts."""
    expected_unique = 20
    expected_mixes = 6
    unique = [w for w in all_workloads() if not w.is_mix]
    mixes = [w for w in all_workloads() if w.is_mix]
    if len(unique) != expected_unique or len(mixes) != expected_mixes:
        return False
    for spec in unique:
        benchmark = spec.parts[0].benchmark
        if spec.cores != INSTANCE_COUNTS[benchmark]:
            return False
        if benchmark not in BENCHMARKS:
            return False
    return True
