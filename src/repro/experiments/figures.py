"""Shared infrastructure for the figure/table reproductions."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

from repro.sim.metrics import RunMetrics
from repro.workloads import all_workloads

#: Paper ordering of the benchmark groups (Figures 7, 8, 11).
SUITE_ORDER = ["spec", "splash3", "coral", "mix"]
SUITE_LABELS = {
    "spec": "SPEC CPU2006",
    "splash3": "Splash-3",
    "coral": "CORAL",
    "mix": "Mixes",
}


def suite_of(workload_name: str) -> str:
    for spec in all_workloads():
        if spec.name == workload_name:
            return spec.suite
    raise KeyError(workload_name)


def workloads_in_suite(suite: str) -> List[str]:
    return [spec.name for spec in all_workloads() if spec.suite == suite]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, ignoring non-positive values (paper convention)."""
    logs = [math.log(v) for v in values if v > 0]
    if not logs:
        return 0.0
    return math.exp(sum(logs) / len(logs))


def arithmetic_mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass
class FigureResult:
    """One reproduced table or figure, as printable rows."""

    figure_id: str
    title: str
    columns: List[str]
    rows: List[List] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def row_map(self) -> Dict[str, List]:
        """Rows keyed by their first column (workload / suite name)."""
        return {str(row[0]): row for row in self.rows}

    def to_csv(self) -> str:
        """The table as CSV (for external plotting tools)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def save_csv(self, path) -> None:
        """Write :meth:`to_csv` to *path*."""
        # Regenerable presentation output, not durable state: a torn CSV
        # is fixed by re-running the report, so persist's atomicity and
        # checksum stamp would only get in external plotting tools' way.
        with open(path, "w", newline="") as handle:  # repro-lint: disable=RL007
            handle.write(self.to_csv())

    def render(self) -> str:
        """A fixed-width text table matching the paper's rows/series."""

        def fmt(value) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        table = [self.columns] + [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(row[i]) for row in table) for i in range(len(self.columns))
        ]
        lines = [f"== {self.figure_id}: {self.title}"]
        header = "  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in table[1:]:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def suite_mean(
    per_workload: Dict[str, RunMetrics], suite: str, metric
) -> float:
    """Average a metric accessor over one suite's workloads."""
    values = [
        metric(per_workload[name])
        for name in workloads_in_suite(suite)
        if name in per_workload
    ]
    return arithmetic_mean(values)
