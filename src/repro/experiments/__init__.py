"""The evaluation harness: one module per table/figure of the paper.

:class:`repro.experiments.runner.ExperimentRunner` executes (scheme,
workload, variant) simulations with an on-disk result cache, so the many
figures that share the same underlying runs (7, 8, 10, 13, 14 all consume
the PoM/MemPod/PageSeer matrix) pay for each simulation once.

Each ``figN_*`` module exposes a ``compute(runner)`` returning a
:class:`repro.experiments.figures.FigureResult` with the same rows/series
the paper reports, plus the shape checks DESIGN.md Section 4 lists.
"""

from repro.experiments.runner import (
    DEFAULT_MEASURE_OPS,
    DEFAULT_SCALE,
    DEFAULT_WARMUP_OPS,
    ExperimentRunner,
)
from repro.experiments.figures import FigureResult

__all__ = [
    "DEFAULT_MEASURE_OPS",
    "DEFAULT_SCALE",
    "DEFAULT_WARMUP_OPS",
    "ExperimentRunner",
    "FigureResult",
]
