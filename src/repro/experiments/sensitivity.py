"""Design-space sensitivity: how PageSeer's Table II choices matter.

The paper fixes its design constants (PCTc threshold 14, HPT threshold 6,
the buffer/engine provisioning) without a sensitivity study; this module
sweeps each around the paper's value on representative workloads so the
choices DESIGN.md calls out can be defended with data:

* ``pct_prefetch_threshold`` — too low prefetches cold pages, too high
  misses prefetch opportunities;
* ``hpt_swap_threshold`` — the regular-swap safety net's aggressiveness;
* ``swap_engines`` — concurrent swap operations (bounds swap latency);
* ``prt_ways`` — DRAM frames per colour (swap-placement flexibility).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

from repro.common.config import SystemConfig
from repro.experiments.figures import FigureResult, geometric_mean
from repro.experiments.runner import ExperimentRunner, VARIANTS

#: parameter -> values swept (the middle value is the paper's).
SWEEPS: Dict[str, List[int]] = {
    "pct_prefetch_threshold": [7, 14, 28],
    "hpt_swap_threshold": [3, 6, 12],
    "swap_engines": [1, 3, 6],
    "prt_ways": [2, 4, 8],
}

#: One stream-heavy and one hot-set workload keep the sweep affordable.
WORKLOADS = ["lbmx4", "milcx4"]

#: Table II defaults, for marking the paper's operating point.
PAPER_VALUES = {
    "pct_prefetch_threshold": 14,
    "hpt_swap_threshold": 6,
    "swap_engines": 3,
    "prt_ways": 4,
}


def _make_variant(parameter: str, value: int):
    def mutate(config: SystemConfig) -> SystemConfig:
        return dataclasses.replace(
            config,
            pageseer=dataclasses.replace(config.pageseer, **{parameter: value}),
        )

    return mutate


def variant_name(parameter: str, value: int) -> str:
    return f"sens_{parameter}_{value}"


def register_variants() -> List[Tuple[str, int, str]]:
    """Register every sweep point in the runner's variant registry."""
    points = []
    for parameter, values in SWEEPS.items():
        for value in values:
            name = variant_name(parameter, value)
            VARIANTS.setdefault(name, _make_variant(parameter, value))
            points.append((parameter, value, name))
    return points


register_variants()


def compute(runner: ExperimentRunner) -> FigureResult:
    names = [n for n in WORKLOADS if n in runner.workload_names()]
    result = FigureResult(
        figure_id="Sensitivity",
        title="PageSeer design-space sensitivity (geomean IPC over "
              + "/".join(names) + ")",
        columns=["parameter", "value", "ipc_geomean", "ammat_geomean",
                 "swaps_total", "is_paper_value"],
    )
    for parameter, values in SWEEPS.items():
        for value in values:
            name = variant_name(parameter, value)
            metrics = [runner.run("pageseer", w, name) for w in names]
            result.rows.append(
                [
                    parameter,
                    value,
                    geometric_mean([m.ipc for m in metrics]),
                    geometric_mean([m.ammat for m in metrics]),
                    sum(m.swaps_total for m in metrics),
                    "*" if PAPER_VALUES[parameter] == value else "",
                ]
            )
    result.notes.append(
        "the paper's Table II values (marked *) should be competitive "
        "within each sweep"
    )
    return result


def best_value_for(result: FigureResult, parameter: str) -> int:
    """The swept value with the highest geomean IPC."""
    rows = [row for row in result.rows if row[0] == parameter]
    return max(rows, key=lambda row: row[2])[1]
