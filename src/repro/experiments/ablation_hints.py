"""Ablation: PageSeer with and without the MMU signal.

The paper's central claim is that the page-walk hint buys lead time that
LLC-miss-triggered schemes cannot have.  This ablation removes only the
MMU signal (prefetching-triggered and regular swaps remain) and measures
what the hint itself contributes — the experiment the paper implies
throughout Section V but does not plot directly.
"""

from __future__ import annotations

from repro.experiments.figures import FigureResult, geometric_mean
from repro.experiments.runner import ExperimentRunner


def compute(runner: ExperimentRunner) -> FigureResult:
    default = runner.run_matrix(["pageseer"])["pageseer"]
    nohints = runner.run_matrix(["pageseer"], variant="nohints")["pageseer"]
    result = FigureResult(
        figure_id="Ablation (MMU hints)",
        title="PageSeer vs PageSeer without the MMU signal",
        columns=[
            "workload", "ipc", "ipc_nohints", "speedup_from_hints",
            "fast_share", "fast_share_nohints",
        ],
    )
    ratios = []
    for name in runner.workload_names():
        with_hints = default[name]
        without = nohints[name]
        ratio = with_hints.ipc / without.ipc if without.ipc > 0 else 0.0
        if ratio > 0:
            ratios.append(ratio)
        result.rows.append(
            [
                name,
                with_hints.ipc,
                without.ipc,
                ratio,
                with_hints.dram_share + with_hints.buffer_share,
                without.dram_share + without.buffer_share,
            ]
        )
    result.rows.append(["GEOMEAN", "", "", geometric_mean(ratios), "", ""])
    result.notes.append(
        "the MMU signal should help most on TLB-miss-heavy streams and be "
        "neutral where TLB misses are rare (the paper's Section V-C logic)"
    )
    return result
