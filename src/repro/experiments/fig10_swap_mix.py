"""Figure 10: percentage of swaps that are prefetch swaps.

Per workload, the share of all swaps that are prefetch swaps, split into
MMU-triggered and prefetching(PCTc)-triggered; the remainder are regular
(HPT) swaps.  Paper headlines: prefetch swaps are 62.8% of all swaps on
average, MMU-triggered swaps alone are 48.6%, and MMU-triggered swaps are
much more frequent than prefetching-triggered ones for the workloads where
prefetching works at all.
"""

from __future__ import annotations

from repro.experiments.figures import FigureResult, arithmetic_mean
from repro.experiments.runner import ExperimentRunner


def compute(runner: ExperimentRunner) -> FigureResult:
    per_workload = runner.run_matrix(["pageseer"])["pageseer"]
    result = FigureResult(
        figure_id="Figure 10",
        title="Share of swaps that are prefetch swaps (PageSeer)",
        columns=[
            "workload", "swaps", "mmu_triggered%", "pct_triggered%", "regular%",
        ],
    )
    prefetch_shares = []
    mmu_shares = []
    for name, metrics in per_workload.items():
        total = metrics.swaps_total
        mmu = 100 * metrics.swaps_mmu / total if total else 0.0
        pct = 100 * metrics.swaps_pct / total if total else 0.0
        regular = 100 * metrics.swaps_regular / total if total else 0.0
        result.rows.append([name, total, mmu, pct, regular])
        if total:
            prefetch_shares.append(metrics.prefetch_swap_share)
            mmu_shares.append(metrics.mmu_swap_share)
    result.rows.append(
        [
            "AVERAGE",
            "",
            100 * arithmetic_mean(mmu_shares),
            100 * arithmetic_mean(
                [p - m for p, m in zip(prefetch_shares, mmu_shares)]
            ),
            100 * (1 - arithmetic_mean(prefetch_shares)),
        ]
    )
    result.notes.append(
        "paper: prefetch swaps are 62.8% of all swaps; MMU-triggered alone "
        "48.6%; benchmarks split into a few-prefetch group and a "
        "many-prefetch group"
    )
    return result
