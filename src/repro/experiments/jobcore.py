"""Shared job-execution core for the supervised and distributed sweeps.

``SweepSupervisor`` (single node, ``repro sweep``) and the ``sweepd``
service (work-queue server + socket workers, ``repro sweep
--distributed`` / ``repro sweepd``) run the *same* unit of work: one
(scheme, workload, variant) simulation that checkpoints into a private
directory, resumes from ``latest.ckpt`` after a crash or SIGKILL, and
lands its metrics as an atomically-written JSON payload.  This module is
that unit, extracted so the two schedulers cannot drift:

* :func:`execute_job` — resume-or-build, arm a checkpointer (with an
  optional over-the-wire heartbeat hook), run to completion, return the
  metrics payload;
* :func:`write_json_atomic` / :func:`load_result` — crash-safe result
  files and the salvage read that lets a relaunched worker ship a
  finished result without re-simulating;
* :func:`cache_key` / :func:`fault_signature` — the canonical result
  cache key (shared with :class:`repro.experiments.runner
  .ExperimentRunner`), which also seeds deterministic ``sweepd`` job
  ids;
* :func:`sizing_signature` / :func:`request_dirname` — collision-free
  per-request checkpoint/heartbeat directory names (two sweeps that
  differ only in seed or sizing must never share a heartbeat file);
* :func:`inject_worker_crash` / :func:`backoff_seconds` — the
  deterministic infrastructure-fault draw and the retry backoff curve
  both schedulers honour.
"""

from __future__ import annotations

import dataclasses
import hashlib
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.common.config import CheckConfig, FaultConfig
from repro.common.errors import WorkerFaultError
from repro.common.rng import DeterministicRng

#: ``(scheme, workload, variant)`` — the unit every sweep is made of.
Request = Tuple[str, str, str]

#: ``(scale, measure_ops, warmup_ops, seed, check_level)`` as threaded
#: through worker processes.
Sizing = Tuple[int, int, int, int, str]

#: Conventional name for a job's completed-metrics file.
RESULT_NAME = "result.json"

#: First retry waits this long; attempt ``n`` waits ``base << n`` seconds.
#: Kept tiny: the backoff is for scheduling fairness (and testability),
#: not for placating a remote service.
BACKOFF_BASE_SECONDS = 0.01


def backoff_seconds(attempt: int, base: float = BACKOFF_BASE_SECONDS) -> float:
    """Exponential retry backoff: ``base * 2**attempt`` seconds."""
    return base * (1 << attempt)


def write_json_atomic(
    path: Union[str, Path],
    payload: Dict[str, object],
    *,
    site: str = "result",
    backup: bool = False,
) -> Path:
    """Write *payload* crash-safe via :func:`repro.persist.write_json`.

    A reader never sees a torn file: it observes either the previous
    complete content or the new one, even if the writer is SIGKILLed
    mid-write.  The persist layer additionally embeds a checksum stamp
    (so silent truncation and bit-rot are detected on read) and raises
    :class:`repro.common.errors.PersistWriteError` — previous content
    intact — when the storage layer says no.
    """
    from repro import persist

    return persist.write_json(path, payload, site=site, backup=backup)


def fault_signature(faults: Optional[FaultConfig]) -> str:
    """Cache-key suffix for the fault fields that change simulation output.

    The worker crash/stall knobs steer *which attempt* produces a result,
    never the result itself (simulations are deterministic in their
    inputs), so they are deliberately left out of the signature.
    """
    if faults is None or not faults.enabled:
        return ""
    material = repr((
        faults.fault_seed,
        faults.nvm_uncorrectable_rate,
        faults.transient_rate,
        faults.transfer_fault_rate,
        faults.max_retries,
        faults.retry_backoff_cycles,
        faults.recovery_read_cycles,
    ))
    digest = hashlib.sha256(material.encode()).hexdigest()[:12]
    return f"_faults{digest}"


def cache_key(request: Request, sizing: Sizing, faults: Optional[FaultConfig]) -> str:
    """The canonical result-cache key for one sweep request.

    Identical to :meth:`repro.experiments.runner.ExperimentRunner._key`
    (which delegates here), so results computed by ``sweepd`` workers,
    the supervised sweep, and the serial runner all land in — and are
    found in — the same cache entries.
    """
    from repro.experiments.runner import CACHE_VERSION

    scheme, workload, variant = request
    scale, measure_ops, warmup_ops, seed, _check_level = sizing
    return (
        f"v{CACHE_VERSION}_{scheme}_{workload}_{variant}"
        f"_s{scale}_m{measure_ops}_w{warmup_ops}"
        f"_seed{seed}{fault_signature(faults)}"
    )


def sizing_signature(sizing: Sizing, faults: Optional[FaultConfig]) -> str:
    """Short digest of everything that shapes a request's *state*.

    Used to key per-request checkpoint/heartbeat directories: two sweeps
    whose requests agree on (scheme, workload, variant) but differ in
    seed, sizing, check level, or fault schedule must never share a
    checkpoint directory — a resumed checkpoint from the wrong seed
    would silently finish the wrong run.
    """
    material = repr((tuple(sizing), fault_signature(faults)))
    return hashlib.sha256(material.encode()).hexdigest()[:8]


def request_dirname(request: Request, signature: Optional[str] = None) -> str:
    """Directory name for one request's checkpoints and heartbeat."""
    base = "_".join(request)
    if signature:
        return f"{base}_{signature}"
    return base


def inject_worker_crash(
    faults: Optional[FaultConfig], request: Request, attempt: int
) -> None:
    """The crash half of the pool path's worker-fault injection.

    Stalls are NOT injected here: under supervision a stall is modelled
    mid-run by the supervisor's stalling checkpointer (a pre-run sleep
    would wedge the worker before it armed its heartbeat, which no real
    hang does).  The stall draw is still consumed so the crash schedule
    stays aligned with the pool path's per-(request, attempt) RNG
    stream.
    """
    if faults is None or not faults.enabled:
        return
    if faults.worker_crash_rate <= 0.0:
        return
    stream = f"fault/worker/{'/'.join(request)}/attempt{attempt}"
    rng = DeterministicRng(stream, faults.fault_seed)
    if faults.worker_stall_rate > 0.0:
        rng.random()
    if rng.random() < faults.worker_crash_rate:
        raise WorkerFaultError(
            f"simulated worker crash (attempt {attempt + 1})", device="worker"
        )


def load_result(directory: Union[str, Path]) -> Optional[Dict[str, object]]:
    """Salvage a completed result payload from a job directory.

    Returns None for a missing, torn, or schema-stale file — the caller
    re-simulates.  This is what lets a worker that finished a job but
    died before (or while) reporting it hand the result over on its next
    lease instead of redoing minutes of simulation.
    """
    from repro import persist
    from repro.experiments.runner import _METRIC_FIELDS

    path = Path(directory) / RESULT_NAME
    payload = persist.read_json_or_none(path, site="result")
    if payload is None:
        return None
    if any(name not in payload for name in _METRIC_FIELDS):
        return None
    return payload


def execute_job(
    request: Request,
    sizing: Sizing,
    faults: Optional[FaultConfig],
    attempt: int,
    directory: Union[str, Path],
    *,
    checkpoint_every: int,
    heartbeat_seconds: float,
    heartbeat_hook: Optional[Callable[[int], None]] = None,
    make_checkpointer: Optional[Callable[[int], object]] = None,
    crash_injector: Optional[Callable[[Request, int], None]] = None,
) -> Dict[str, object]:
    """Run one sweep job to completion and return its metrics payload.

    Resume-aware: if ``<directory>/latest.ckpt`` (or, when that file is
    missing or corrupt, the newest good ``gen-*.ckpt`` generation) loads,
    the simulation continues from it (bit-identical to an uninterrupted
    run, per docs/CHECKPOINTS.md); otherwise a fresh system is built — after
    giving *crash_injector* its deterministic chance to model a worker
    that dies before doing any work.  ``make_checkpointer`` overrides
    checkpointer construction (the supervisor's stall injection);
    ``heartbeat_hook`` additionally reports each heartbeat over the wire
    (the ``sweepd`` worker).  The returned payload carries every cached
    metric field plus ``resumed_at_ops`` and ``attempt``.
    """
    # Import inside the job so forked/spawned processes initialise their
    # own module state (notably dynamically-registered variants).
    from repro.experiments import ablation_partial, dram_capacity, sensitivity  # noqa: F401
    from repro.experiments.runner import VARIANTS, _METRIC_FIELDS
    from repro.sim.system import build_system
    from repro.snapshot import Checkpointer, load_checkpoint_with_fallback
    from repro.workloads import workload_by_name

    scheme, workload_name, variant = request
    scale, measure_ops, warmup_ops, seed, check_level = sizing
    directory = Path(directory)

    # A torn or bit-rotted latest.ckpt must not poison the job: fall back
    # through the generation chain, and past it to a fresh build.
    resumed_from_ops = 0
    system, _, _skipped = load_checkpoint_with_fallback(directory)
    if system is not None:
        resumed_from_ops = system.steps_total
    else:
        if crash_injector is not None:
            crash_injector(request, attempt)
        check = CheckConfig(level=check_level) if check_level != "off" else None
        system = build_system(
            scheme,
            workload_by_name(workload_name),
            scale=scale,
            seed=seed,
            config_mutator=VARIANTS[variant],
            check=check,
            faults=faults,
        )
    if make_checkpointer is not None:
        checkpointer = make_checkpointer(resumed_from_ops)
    else:
        checkpointer = Checkpointer(
            directory,
            every_ops=checkpoint_every,
            heartbeat_seconds=heartbeat_seconds,
            heartbeat_hook=heartbeat_hook,
        )
    checkpointer.arm(system)
    if resumed_from_ops:
        metrics = system.resume_run()
    else:
        metrics = system.run(measure_ops, warmup_ops)

    payload: Dict[str, object] = {
        name: getattr(metrics, name) for name in _METRIC_FIELDS
    }
    payload["resumed_at_ops"] = resumed_from_ops
    payload["attempt"] = attempt
    return payload


def metrics_from_payload(payload: Dict[str, object]):
    """Rebuild a :class:`repro.sim.metrics.RunMetrics` from a payload."""
    from repro.experiments.runner import _METRIC_FIELDS
    from repro.sim.metrics import RunMetrics

    return RunMetrics(raw={}, **{name: payload[name] for name in _METRIC_FIELDS})


def faults_to_wire(faults: Optional[FaultConfig]) -> Optional[Dict[str, object]]:
    """Serialize a FaultConfig for a manifest or protocol message."""
    if faults is None:
        return None
    return dataclasses.asdict(faults)


def faults_from_wire(payload: Optional[Dict[str, object]]) -> Optional[FaultConfig]:
    """Inverse of :func:`faults_to_wire`; tolerant of None."""
    if payload is None:
        return None
    return FaultConfig(**payload)
