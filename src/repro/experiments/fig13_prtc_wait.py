"""Figure 13: reduction of PRTc waiting time, PageSeer versus PoM.

Requests stall when their remap-table entry must be fetched from DRAM.
PageSeer prefetches PRTc entries on MMU hints, so its total waiting time
is lower than PoM's (which fetches SRC entries only on demand).  Paper
headline: 61.8% average reduction, and the PRTc hit rate is 3.5 points
higher in PageSeer than in PoM.
"""

from __future__ import annotations

from repro.experiments.figures import FigureResult, arithmetic_mean
from repro.experiments.runner import ExperimentRunner


def compute(runner: ExperimentRunner) -> FigureResult:
    matrix = runner.run_matrix(["pageseer", "pom"])
    result = FigureResult(
        figure_id="Figure 13",
        title="Reduction of remap-table (PRTc/SRC) waiting time vs PoM",
        columns=[
            "workload", "pageseer_wait", "pom_wait", "reduction%",
        ],
    )
    reductions = []
    for name in runner.workload_names():
        ps_wait = matrix["pageseer"][name].remap_wait_cycles
        pom_wait = matrix["pom"][name].remap_wait_cycles
        if pom_wait > 0:
            reduction = 100 * (1 - ps_wait / pom_wait)
            reductions.append(reduction)
        else:
            reduction = 0.0
        result.rows.append([name, ps_wait, pom_wait, reduction])
    result.rows.append(["AVERAGE", "", "", arithmetic_mean(reductions)])
    result.notes.append(
        "paper: 61.8% average reduction in total PRTc waiting time"
    )
    return result
