"""Set-associative cache substrate: L1/L2 private, L3 shared (Table I).

Caches are simulated functionally (real sets, ways, LRU state, dirty bits)
so the LLC miss stream that drives every hybrid-memory policy has realistic
spatial and temporal structure.  Caches are indexed by the OS-visible
*system physical address*; page remapping happens below them, inside the
memory controller, exactly as in the paper (the OS — and hence the cache
tags — are oblivious to swaps).
"""

from repro.cache.cache import EvictedLine, SetAssociativeCache, SoaCache
from repro.cache.hierarchy import CacheHierarchy, HierarchyOutcome

__all__ = [
    "EvictedLine",
    "SetAssociativeCache",
    "SoaCache",
    "CacheHierarchy",
    "HierarchyOutcome",
]
