"""A single set-associative, write-back, LRU cache level.

Two implementations of the same contract:

* :class:`SetAssociativeCache` — the original ``OrderedDict``-per-set
  model (LRU order is the dict order).  Kept as the reference oracle the
  property suite differences against.
* :class:`SoaCache` — the struct-of-arrays model the simulator runs.
  Per set: a ``tag -> way`` index dict plus parallel per-way arrays
  (tag, dirty bit, last-touch age).  The LRU victim is ``argmin(age)``
  under a strictly increasing touch counter — no ties, so the victim is
  exactly the ``OrderedDict``'s LRU-first ``popitem``.  The batched
  engine's chunk kernel reads the way dicts and age/dirty arrays
  directly; the shared one-element age cell keeps engine-side and
  method-side touches on a single counter with no flush protocol.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.common.config import CacheConfig


class EvictedLine:
    """A line pushed out of a cache level by a fill (``__slots__`` class)."""

    __slots__ = ("line_number", "dirty")

    def __init__(self, line_number: int, dirty: bool):
        self.line_number = line_number
        self.dirty = dirty

    def __repr__(self) -> str:
        return f"EvictedLine(line_number={self.line_number}, dirty={self.dirty})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EvictedLine):
            return NotImplemented
        return self.line_number == other.line_number and self.dirty == other.dirty

    def __hash__(self) -> int:
        return hash((self.line_number, self.dirty))


class SetAssociativeCache:
    """Reference cache model: ``OrderedDict`` per set, LRU-first order.

    Addresses are *line numbers* (byte address >> 6).  The cache stores no
    data — the simulator only needs hit/miss behaviour and write-back
    traffic.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        # Each set maps tag -> dirty flag, ordered LRU-first.
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def _locate(self, line_number: int) -> tuple:
        return line_number % self.num_sets, line_number // self.num_sets

    def lookup(self, line_number: int, is_write: bool = False) -> bool:
        """Probe the cache; on a hit, update LRU (and dirty on writes)."""
        num_sets = self.num_sets
        entries = self._sets[line_number % num_sets]
        tag = line_number // num_sets
        if tag not in entries:
            return False
        entries.move_to_end(tag)
        if is_write:
            entries[tag] = True
        return True

    def contains(self, line_number: int) -> bool:
        """Probe without disturbing LRU or dirty state."""
        set_index, tag = self._locate(line_number)
        return tag in self._sets[set_index]

    def fill(self, line_number: int, dirty: bool = False) -> Optional[EvictedLine]:
        """Install a line, returning the victim (if any) for write-back."""
        num_sets = self.num_sets
        set_index = line_number % num_sets
        tag = line_number // num_sets
        entries = self._sets[set_index]
        if tag in entries:
            entries.move_to_end(tag)
            if dirty:
                entries[tag] = True
            return None
        victim: Optional[EvictedLine] = None
        if len(entries) >= self.ways:
            victim_tag, victim_dirty = entries.popitem(last=False)
            victim_line = victim_tag * self.num_sets + set_index
            victim = EvictedLine(victim_line, victim_dirty)
        entries[tag] = dirty
        return victim

    def invalidate(self, line_number: int) -> bool:
        """Drop a line if present; returns whether it was present."""
        set_index, tag = self._locate(line_number)
        return self._sets[set_index].pop(tag, None) is not None

    def invalidate_page(self, page_number: int, lines_per_page: int = 64) -> int:
        """Drop every line of a page; returns how many were present."""
        first = page_number * lines_per_page
        return sum(
            1 for offset in range(lines_per_page) if self.invalidate(first + offset)
        )

    @property
    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def resident_lines(self) -> List[int]:
        """Return every line currently cached (for tests)."""
        lines = []
        for set_index, entries in enumerate(self._sets):
            for tag in entries:
                lines.append(tag * self.num_sets + set_index)
        return lines


class SoaCache:
    """Struct-of-arrays cache level (see module docstring).

    Behaviourally identical to :class:`SetAssociativeCache`: same hits,
    same victims (line number *and* dirty bit), same occupancy — only the
    layout differs.  State is plain dicts/lists/ints, so instances pickle
    inside checkpoints.
    """

    __slots__ = (
        "config", "num_sets", "ways",
        "_way_of", "_tags", "_dirty", "_ages", "_age",
    )

    #: Empty-way tag marker (real tags are non-negative line numbers).
    _EMPTY = -1

    def __init__(self, config: CacheConfig):
        self.config = config
        num_sets = config.num_sets
        ways = config.ways
        self.num_sets = num_sets
        self.ways = ways
        #: Per set: tag -> way index (membership + placement in O(1)).
        self._way_of: List[Dict[int, int]] = [dict() for _ in range(num_sets)]
        #: Tag matrix: the tag held by each way (-1 = empty way).
        self._tags: List[List[int]] = [
            [self._EMPTY] * ways for _ in range(num_sets)
        ]
        #: Dirty-bit matrix.
        self._dirty: List[List[bool]] = [[False] * ways for _ in range(num_sets)]
        #: LRU age matrix: last-touch stamp per way.
        self._ages: List[List[int]] = [[0] * ways for _ in range(num_sets)]
        #: The strictly increasing touch counter, shared with the batched
        #: engine's hoisted kernel (one-element cell, mutated in place).
        self._age = [1]

    def _locate(self, line_number: int) -> tuple:
        return line_number % self.num_sets, line_number // self.num_sets

    # repro-hot
    def lookup(self, line_number: int, is_write: bool = False) -> bool:
        """Probe the cache; on a hit, update LRU (and dirty on writes)."""
        num_sets = self.num_sets
        set_index = line_number % num_sets
        way = self._way_of[set_index].get(line_number // num_sets)
        if way is None:
            return False
        age = self._age
        self._ages[set_index][way] = age[0]
        age[0] += 1
        if is_write:
            self._dirty[set_index][way] = True
        return True

    def contains(self, line_number: int) -> bool:
        """Probe without disturbing LRU or dirty state."""
        set_index = line_number % self.num_sets
        return line_number // self.num_sets in self._way_of[set_index]

    # repro-hot
    def fill(self, line_number: int, dirty: bool = False) -> Optional[EvictedLine]:
        """Install a line, returning the victim (if any) for write-back."""
        num_sets = self.num_sets
        set_index = line_number % num_sets
        tag = line_number // num_sets
        ways = self._way_of[set_index]
        ages = self._ages[set_index]
        age = self._age
        way = ways.get(tag)
        if way is not None:
            ages[way] = age[0]
            age[0] += 1
            if dirty:
                self._dirty[set_index][way] = True
            return None
        tags = self._tags[set_index]
        dirty_bits = self._dirty[set_index]
        victim: Optional[EvictedLine] = None
        if len(ways) >= self.ways:
            # Ages are unique (strictly increasing counter), so the LRU
            # way is index-of-min — two C passes over a small int list.
            way = ages.index(min(ages))
            victim_tag = tags[way]
            victim = EvictedLine(victim_tag * num_sets + set_index, dirty_bits[way])
            del ways[victim_tag]
        else:
            way = tags.index(self._EMPTY)
        ways[tag] = way
        tags[way] = tag
        dirty_bits[way] = dirty
        ages[way] = age[0]
        age[0] += 1
        return victim

    def invalidate(self, line_number: int) -> bool:
        """Drop a line if present; returns whether it was present."""
        set_index = line_number % self.num_sets
        way = self._way_of[set_index].pop(line_number // self.num_sets, None)
        if way is None:
            return False
        self._tags[set_index][way] = self._EMPTY
        self._dirty[set_index][way] = False
        return True

    def invalidate_page(self, page_number: int, lines_per_page: int = 64) -> int:
        """Drop every line of a page; returns how many were present."""
        first = page_number * lines_per_page
        return sum(
            1 for offset in range(lines_per_page) if self.invalidate(first + offset)
        )

    @property
    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._way_of)

    def resident_lines(self) -> List[int]:
        """Return every line currently cached, LRU-first per set (for tests)."""
        lines = []
        num_sets = self.num_sets
        for set_index, ways in enumerate(self._way_of):
            ages = self._ages[set_index]
            for tag in sorted(ways, key=lambda t: ages[ways[t]]):
                lines.append(tag * num_sets + set_index)
        return lines
