"""A single set-associative, write-back, LRU cache level."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional

from repro.common.config import CacheConfig


@dataclass(frozen=True)
class EvictedLine:
    """A line pushed out of a cache level by a fill."""

    line_number: int
    dirty: bool


class SetAssociativeCache:
    """Tag-only set-associative cache with true LRU and dirty bits.

    Addresses are *line numbers* (byte address >> 6).  The cache stores no
    data — the simulator only needs hit/miss behaviour and write-back
    traffic.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        # Each set maps tag -> dirty flag, ordered LRU-first.
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def _locate(self, line_number: int) -> tuple:
        return line_number % self.num_sets, line_number // self.num_sets

    def lookup(self, line_number: int, is_write: bool = False) -> bool:
        """Probe the cache; on a hit, update LRU (and dirty on writes)."""
        set_index, tag = self._locate(line_number)
        entries = self._sets[set_index]
        if tag not in entries:
            return False
        entries.move_to_end(tag)
        if is_write:
            entries[tag] = True
        return True

    def contains(self, line_number: int) -> bool:
        """Probe without disturbing LRU or dirty state."""
        set_index, tag = self._locate(line_number)
        return tag in self._sets[set_index]

    def fill(self, line_number: int, dirty: bool = False) -> Optional[EvictedLine]:
        """Install a line, returning the victim (if any) for write-back."""
        set_index, tag = self._locate(line_number)
        entries = self._sets[set_index]
        if tag in entries:
            entries.move_to_end(tag)
            if dirty:
                entries[tag] = True
            return None
        victim: Optional[EvictedLine] = None
        if len(entries) >= self.ways:
            victim_tag, victim_dirty = entries.popitem(last=False)
            victim_line = victim_tag * self.num_sets + set_index
            victim = EvictedLine(victim_line, victim_dirty)
        entries[tag] = dirty
        return victim

    def invalidate(self, line_number: int) -> bool:
        """Drop a line if present; returns whether it was present."""
        set_index, tag = self._locate(line_number)
        return self._sets[set_index].pop(tag, None) is not None

    def invalidate_page(self, page_number: int, lines_per_page: int = 64) -> int:
        """Drop every line of a page; returns how many were present."""
        first = page_number * lines_per_page
        return sum(
            1 for offset in range(lines_per_page) if self.invalidate(first + offset)
        )

    @property
    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def resident_lines(self) -> List[int]:
        """Return every line currently cached (for tests)."""
        lines = []
        for set_index, entries in enumerate(self._sets):
            for tag in entries:
                lines.append(tag * self.num_sets + set_index)
        return lines
