"""A single set-associative, write-back, LRU cache level."""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.common.config import CacheConfig


class EvictedLine:
    """A line pushed out of a cache level by a fill (``__slots__`` class)."""

    __slots__ = ("line_number", "dirty")

    def __init__(self, line_number: int, dirty: bool):
        self.line_number = line_number
        self.dirty = dirty

    def __repr__(self) -> str:
        return f"EvictedLine(line_number={self.line_number}, dirty={self.dirty})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EvictedLine):
            return NotImplemented
        return self.line_number == other.line_number and self.dirty == other.dirty

    def __hash__(self) -> int:
        return hash((self.line_number, self.dirty))


class SetAssociativeCache:
    """Tag-only set-associative cache with true LRU and dirty bits.

    Addresses are *line numbers* (byte address >> 6).  The cache stores no
    data — the simulator only needs hit/miss behaviour and write-back
    traffic.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        # Each set maps tag -> dirty flag, ordered LRU-first.
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def _locate(self, line_number: int) -> tuple:
        return line_number % self.num_sets, line_number // self.num_sets

    # repro-hot
    def lookup(self, line_number: int, is_write: bool = False) -> bool:
        """Probe the cache; on a hit, update LRU (and dirty on writes)."""
        num_sets = self.num_sets
        entries = self._sets[line_number % num_sets]
        tag = line_number // num_sets
        if tag not in entries:
            return False
        entries.move_to_end(tag)
        if is_write:
            entries[tag] = True
        return True

    def contains(self, line_number: int) -> bool:
        """Probe without disturbing LRU or dirty state."""
        set_index, tag = self._locate(line_number)
        return tag in self._sets[set_index]

    # repro-hot
    def fill(self, line_number: int, dirty: bool = False) -> Optional[EvictedLine]:
        """Install a line, returning the victim (if any) for write-back."""
        num_sets = self.num_sets
        set_index = line_number % num_sets
        tag = line_number // num_sets
        entries = self._sets[set_index]
        if tag in entries:
            entries.move_to_end(tag)
            if dirty:
                entries[tag] = True
            return None
        victim: Optional[EvictedLine] = None
        if len(entries) >= self.ways:
            victim_tag, victim_dirty = entries.popitem(last=False)
            victim_line = victim_tag * self.num_sets + set_index
            victim = EvictedLine(victim_line, victim_dirty)
        entries[tag] = dirty
        return victim

    def invalidate(self, line_number: int) -> bool:
        """Drop a line if present; returns whether it was present."""
        set_index, tag = self._locate(line_number)
        return self._sets[set_index].pop(tag, None) is not None

    def invalidate_page(self, page_number: int, lines_per_page: int = 64) -> int:
        """Drop every line of a page; returns how many were present."""
        first = page_number * lines_per_page
        return sum(
            1 for offset in range(lines_per_page) if self.invalidate(first + offset)
        )

    @property
    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)

    def resident_lines(self) -> List[int]:
        """Return every line currently cached (for tests)."""
        lines = []
        for set_index, entries in enumerate(self._sets):
            for tag in entries:
                lines.append(tag * self.num_sets + set_index)
        return lines
