"""Page-residency analysis: what swapped-in pages do with their DRAM time.

Tracks, per swap-in, how long the page stayed in the DRAM frame before
being displaced (or until the end of the observation window) and how many
demand accesses it served while resident.  A healthy policy keeps
residencies long enough to amortise the swap (the paper's break-even is
14 accesses) and avoids one-hit wonders.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List

from repro.common.addr import LINES_PER_PAGE


@dataclass(frozen=True)
class ResidencySummary:
    """Aggregate residency statistics for one run."""

    completed_residencies: int
    live_residencies: int
    mean_duration: float
    mean_hits: float
    #: Residencies whose page earned >= the break-even access count.
    amortised: int
    break_even_hits: int

    @property
    def amortised_fraction(self) -> float:
        total = self.completed_residencies + self.live_residencies
        return self.amortised / total if total else 0.0

    def render(self) -> str:
        return (
            f"residencies         {self.completed_residencies} completed, "
            f"{self.live_residencies} live\n"
            f"  mean duration     {self.mean_duration:.0f} cycles\n"
            f"  mean demand hits  {self.mean_hits:.1f}\n"
            f"  amortised (>= {self.break_even_hits} hits)  "
            f"{self.amortised} ({self.amortised_fraction:.1%})"
        )


class ResidencyProbe:
    """Observes swap-ins/outs and per-page demand hits on a PageSeer system."""

    def __init__(self, system):
        if system.scheme != "pageseer":
            raise ValueError("ResidencyProbe requires a PageSeer system")
        self.system = system
        self.hmc = system.hmc
        self.break_even_hits = system.config.pageseer.pct_prefetch_threshold
        #: page -> [swap_in_time, hits]
        self._live: Dict[int, List] = {}
        #: (duration, hits) per completed residency.
        self.completed: List[tuple] = []
        self._wrap()

    def _wrap(self) -> None:
        driver = self.hmc.swap_driver
        original_in = driver._on_swap_in
        original_out = driver._on_swap_out

        def on_in(page, trigger, now):
            self._live[page] = [now, 0]
            if original_in is not None:
                original_in(page, trigger, now)

        def on_out(page, now):
            state = self._live.pop(page, None)
            if state is not None:
                self.completed.append((now - state[0], state[1]))
            if original_out is not None:
                original_out(page, now)

        driver._on_swap_in = on_in
        driver._on_swap_out = on_out

        original_request = self.hmc.handle_request

        def wrapped(now, line_spa, is_write, pid, kind=None, **kwargs):
            page = line_spa // LINES_PER_PAGE
            state = self._live.get(page)
            if state is not None:
                state[1] += 1
            if kind is None:
                return original_request(now, line_spa, is_write, pid, **kwargs)
            return original_request(now, line_spa, is_write, pid, kind, **kwargs)

        self.hmc.handle_request = wrapped

    def summary(self) -> ResidencySummary:
        durations = [d for d, _ in self.completed]
        hits_list = [h for _, h in self.completed] + [
            state[1] for state in self._live.values()
        ]
        amortised = sum(1 for h in hits_list if h >= self.break_even_hits)
        return ResidencySummary(
            completed_residencies=len(self.completed),
            live_residencies=len(self._live),
            mean_duration=statistics.mean(durations) if durations else 0.0,
            mean_hits=statistics.mean(hits_list) if hits_list else 0.0,
            amortised=amortised,
            break_even_hits=self.break_even_hits,
        )
