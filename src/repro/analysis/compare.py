"""Side-by-side scheme comparison on arbitrary workloads.

The library version of ``examples/compare_schemes.py``: build fresh
systems for each (scheme, workload) pair, run them under identical
sizing, and return one comparison table — the quickest way to evaluate a
policy change or a new workload against all schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.figures import FigureResult
from repro.sim.metrics import RunMetrics
from repro.sim.system import SCHEMES, build_system
from repro.workloads import workload_by_name
from repro.workloads.base import WorkloadSpec

DEFAULT_SCHEMES = ("noswap", "mempod", "pom", "pageseer")


@dataclass(frozen=True)
class ComparisonRow:
    """One (workload, scheme) outcome."""

    workload: str
    scheme: str
    metrics: RunMetrics

    @property
    def fast_share(self) -> float:
        return self.metrics.dram_share + self.metrics.buffer_share


def compare_schemes(
    workloads: Sequence,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    scale: int = 512,
    measure_ops: int = 8000,
    warmup_ops: int = 12_000,
    seed: int = 0,
    config_mutator: Optional[Callable] = None,
) -> List[ComparisonRow]:
    """Run every scheme on every workload; returns one row per pair.

    *workloads* may contain Table III names or :class:`WorkloadSpec`
    objects (e.g. trace or extras workloads).
    """
    unknown = [s for s in schemes if s not in SCHEMES]
    if unknown:
        raise ValueError(f"unknown schemes: {unknown}")
    rows: List[ComparisonRow] = []
    for workload in workloads:
        spec = (
            workload
            if isinstance(workload, WorkloadSpec)
            else workload_by_name(workload)
        )
        for scheme in schemes:
            system = build_system(
                scheme, spec, scale=scale, seed=seed, config_mutator=config_mutator
            )
            metrics = system.run(measure_ops, warmup_ops)
            rows.append(ComparisonRow(spec.name, scheme, metrics))
    return rows


def comparison_table(rows: Sequence[ComparisonRow]) -> FigureResult:
    """Render comparison rows as a printable table."""
    result = FigureResult(
        figure_id="Comparison",
        title="Scheme comparison",
        columns=[
            "workload", "scheme", "ipc", "ammat",
            "fast_share%", "swaps", "positive%",
        ],
    )
    for row in rows:
        metrics = row.metrics
        result.rows.append(
            [
                row.workload,
                row.scheme,
                metrics.ipc,
                metrics.ammat,
                100 * row.fast_share,
                metrics.swaps_total,
                100 * metrics.positive_share,
            ]
        )
    return result


def winner_by_ipc(rows: Sequence[ComparisonRow]) -> Dict[str, str]:
    """The best-IPC scheme per workload."""
    best: Dict[str, ComparisonRow] = {}
    for row in rows:
        current = best.get(row.workload)
        if current is None or row.metrics.ipc > current.metrics.ipc:
            best[row.workload] = row
    return {workload: row.scheme for workload, row in best.items()}
