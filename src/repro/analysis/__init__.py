"""Post-run analysis tools.

The paper's abstract claims PageSeer performs swaps "accurately and with
substantial lead time" and "effectively hides the swap overhead".  This
package quantifies those claims on any run:

* :mod:`repro.analysis.lead_time` — per-swap lead time (trigger to first
  demand hit) and the fraction of swaps whose cost is fully hidden;
* :mod:`repro.analysis.residency` — how long swapped-in pages stay in
  DRAM and how much service they deliver while there;
* :mod:`repro.analysis.breakdown` — AMMAT decomposition into device
  service, queueing, and remap-table waiting.
"""

from repro.analysis.lead_time import LeadTimeProbe, LeadTimeSummary
from repro.analysis.residency import ResidencyProbe, ResidencySummary
from repro.analysis.breakdown import ammat_breakdown
from repro.analysis.compare import (
    ComparisonRow,
    compare_schemes,
    comparison_table,
    winner_by_ipc,
)

__all__ = [
    "LeadTimeProbe",
    "LeadTimeSummary",
    "ResidencyProbe",
    "ResidencySummary",
    "ammat_breakdown",
    "ComparisonRow",
    "compare_schemes",
    "comparison_table",
    "winner_by_ipc",
]
