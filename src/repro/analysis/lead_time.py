"""Swap lead-time analysis: does PageSeer really hide the swap overhead?

For every swap, two intervals matter:

* **lead time** — from the swap's start to the *first demand access* for
  the swapped page.  MMU-triggered swaps should have positive lead (the
  hint fires while the TLB miss is still being resolved);
* **exposure** — how much of the swap's duration the demand stream
  actually had to see.  A swap is *fully hidden* when it completes before
  the first demand access arrives, and *buffered* when the accesses that
  do land mid-swap are absorbed by the swap buffers.

The probe instruments a built :class:`repro.sim.system.System` (PageSeer
scheme) before it runs, by wrapping the HMC's request path; it adds no
behaviour, only observation.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List

from repro.common.addr import LINES_PER_PAGE


@dataclass(frozen=True)
class LeadTimeSummary:
    """Aggregate lead-time statistics for one run."""

    swaps_observed: int
    swaps_with_demand: int
    mean_lead: float
    median_lead: float
    #: Swaps that finished before their page's first demand access.
    fully_hidden: int
    #: Swaps whose first demand access landed mid-swap (buffer-serviced).
    partially_hidden: int

    @property
    def hidden_fraction(self) -> float:
        """Swaps whose cost the demand stream never waited for, fully."""
        if self.swaps_with_demand == 0:
            return 0.0
        return self.fully_hidden / self.swaps_with_demand

    @property
    def covered_fraction(self) -> float:
        """Swaps fully hidden or absorbed by the buffers."""
        if self.swaps_with_demand == 0:
            return 0.0
        return (self.fully_hidden + self.partially_hidden) / self.swaps_with_demand

    def render(self) -> str:
        return (
            f"swaps observed      {self.swaps_observed}\n"
            f"  with demand hits  {self.swaps_with_demand}\n"
            f"  mean lead time    {self.mean_lead:.0f} cycles\n"
            f"  median lead time  {self.median_lead:.0f} cycles\n"
            f"  fully hidden      {self.fully_hidden} "
            f"({self.hidden_fraction:.1%})\n"
            f"  buffer-absorbed   {self.partially_hidden} "
            f"(covered: {self.covered_fraction:.1%})"
        )


class LeadTimeProbe:
    """Observes a PageSeer system's swaps and demand stream.

    Attach before running::

        system = build_system("pageseer", workload, scale=512)
        probe = LeadTimeProbe(system)
        system.run_ops(20_000)
        print(probe.summary().render())
    """

    def __init__(self, system):
        if system.scheme != "pageseer":
            raise ValueError("LeadTimeProbe requires a PageSeer system")
        self.system = system
        self.hmc = system.hmc
        #: page -> (swap_start, swap_end) of its most recent swap-in.
        self._open_swaps: Dict[int, tuple] = {}
        #: (lead, start, end, first_hit) per swap that saw demand.
        self.observations: List[tuple] = []
        self._records_seen = 0
        self._wrap()

    def _wrap(self) -> None:
        original = self.hmc.handle_request

        def wrapped(now, line_spa, is_write, pid, kind=None, **kwargs):
            self._harvest_new_swaps()
            page = line_spa // LINES_PER_PAGE
            window = self._open_swaps.pop(page, None)
            if window is not None:
                start, end = window
                self.observations.append((now - start, start, end, now))
            if kind is None:
                return original(now, line_spa, is_write, pid, **kwargs)
            return original(now, line_spa, is_write, pid, kind, **kwargs)

        self.hmc.handle_request = wrapped

    def _harvest_new_swaps(self) -> None:
        records = self.hmc.swap_driver.records
        while self._records_seen < len(records):
            record = records[self._records_seen]
            self._open_swaps[record.page] = (record.start, record.end)
            self._records_seen += 1

    # -- results -----------------------------------------------------------
    def summary(self) -> LeadTimeSummary:
        self._harvest_new_swaps()
        leads = [obs[0] for obs in self.observations]
        fully_hidden = sum(
            1 for _, start, end, first_hit in self.observations if first_hit >= end
        )
        partially = sum(
            1 for _, start, end, first_hit in self.observations
            if start <= first_hit < end
        )
        return LeadTimeSummary(
            swaps_observed=self._records_seen,
            swaps_with_demand=len(self.observations),
            mean_lead=statistics.mean(leads) if leads else 0.0,
            median_lead=statistics.median(leads) if leads else 0.0,
            fully_hidden=fully_hidden,
            partially_hidden=partially,
        )
