"""AMMAT decomposition: where does main-memory access time go?

Splits a finished run's mean main-memory access time into:

* **device service** — activation + CAS + burst on the DRAM/NVM devices;
* **queueing** — waiting for busy banks and buses;
* **remap wait** — stalling on PRTc/SRC fills from DRAM;
* **other** — controller fixed latencies and buffer services.

The pieces come from the device counters and the controller statistics;
they are attributions over the same request population as AMMAT, so the
parts sum approximately to the whole.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AmmatBreakdown:
    """Mean per-request attribution of main-memory access time."""

    ammat: float
    device_service: float
    queueing: float
    remap_wait: float

    @property
    def other(self) -> float:
        explained = self.device_service + self.queueing + self.remap_wait
        return max(0.0, self.ammat - explained)

    def render(self) -> str:
        def pct(value: float) -> str:
            return f"{100 * value / self.ammat:5.1f}%" if self.ammat else "  n/a"

        return (
            f"AMMAT               {self.ammat:8.1f} cycles\n"
            f"  device service    {self.device_service:8.1f}  {pct(self.device_service)}\n"
            f"  queueing          {self.queueing:8.1f}  {pct(self.queueing)}\n"
            f"  remap-table wait  {self.remap_wait:8.1f}  {pct(self.remap_wait)}\n"
            f"  other/controller  {self.other:8.1f}  {pct(self.other)}"
        )


def ammat_breakdown(system) -> AmmatBreakdown:
    """Decompose the AMMAT of a *finished* run of any scheme."""
    stats = system.stats
    requests = stats.count("hmc/ammat")
    ammat = stats.mean("hmc/ammat")

    dram = system.hmc.memory.dram
    nvm = system.hmc.memory.nvm
    device_ops = dram.reads + dram.writes + nvm.reads + nvm.writes
    service_total = dram.service_time_total + nvm.service_time_total
    queue_total = dram.queue_delay_total + nvm.queue_delay_total

    if requests == 0:
        return AmmatBreakdown(0.0, 0.0, 0.0, 0.0)

    # Device counters cover every line moved (including swap traffic);
    # attribute the mean per *demand request* by dividing by the request
    # population, and scale service to a per-access mean so swap bulk
    # does not inflate the per-request figure.
    per_access_service = service_total / device_ops if device_ops else 0.0
    per_request_queue = queue_total / requests
    remap_wait = stats.get("hmc/remap_wait_cycles") / requests

    return AmmatBreakdown(
        ammat=ammat,
        device_service=min(per_access_service, ammat),
        queueing=min(per_request_queue, ammat),
        remap_wait=min(remap_wait, ammat),
    )
