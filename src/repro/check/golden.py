"""The golden-run digest harness (the sanitizer's regression half).

A *golden* pins the complete :class:`repro.sim.metrics.RunMetrics` (minus
``raw``) of one small (scheme, workload, variant) run, plus a SHA-256
digest of its canonical JSON form, into ``tests/golden/*.json``.  The
golden regression tests recompute each run and compare field by field, so
any behavioural drift — an accidental model change, a nondeterminism
regression, a broken scheme — fails as a readable metrics diff instead of
silently changing every figure.

Golden runs execute with the sanitizer at level ``full``, so regenerating
or verifying goldens also proves each pinned run is invariant-clean.

Regenerate after an intentional model change with::

    PYTHONPATH=src python -m repro golden --update
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.metrics import RunMetrics

#: The pinned matrix: every scheme the paper evaluates head-to-head, on
#: two small workloads, with and without MMU hints.
GOLDEN_SCHEMES = ("pageseer", "pom", "mempod")
GOLDEN_WORKLOADS = ("lbmx4", "streamx4")
GOLDEN_VARIANTS = ("default", "nohints")

#: Sizing shared by every golden run: small enough for CI, large enough
#: that all three schemes actually swap.
GOLDEN_SIZING = {"scale": 1024, "measure_ops": 400, "warmup_ops": 400, "seed": 0}

#: RunMetrics fields pinned by a golden (``raw`` is interactive-only).
GOLDEN_FIELDS = tuple(
    f.name for f in dataclasses.fields(RunMetrics) if f.name != "raw"
)


def golden_matrix() -> List[Tuple[str, str, str]]:
    """Every (scheme, workload, variant) triple the goldens pin."""
    return [
        (scheme, workload, variant)
        for scheme in GOLDEN_SCHEMES
        for workload in GOLDEN_WORKLOADS
        for variant in GOLDEN_VARIANTS
    ]


def golden_filename(scheme: str, workload: str, variant: str) -> str:
    return f"{scheme}_{workload}_{variant}.json"


def default_golden_dir() -> Path:
    """``tests/golden`` relative to the current directory (the repo root)."""
    return Path("tests") / "golden"


def metrics_payload(metrics: RunMetrics) -> Dict[str, object]:
    """The pinned, JSON-stable view of one run's metrics."""
    return {name: getattr(metrics, name) for name in GOLDEN_FIELDS}


def payload_digest(payload: Dict[str, object]) -> str:
    """SHA-256 over the canonical JSON form of *payload*."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def run_golden_entry(scheme: str, workload: str, variant: str) -> RunMetrics:
    """Execute one golden run, sanitizer at level ``full``."""
    import dataclasses as dc

    from repro.common.config import CheckConfig
    from repro.experiments.runner import VARIANTS
    from repro.sim.system import build_system
    from repro.workloads import workload_by_name

    variant_mutator = VARIANTS[variant]

    def mutate(config):
        config = variant_mutator(config)
        return dc.replace(config, check=CheckConfig(level="full"))

    system = build_system(
        scheme,
        workload_by_name(workload),
        scale=GOLDEN_SIZING["scale"],
        seed=GOLDEN_SIZING["seed"],
        config_mutator=mutate,
    )
    return system.run(GOLDEN_SIZING["measure_ops"], GOLDEN_SIZING["warmup_ops"])


def compare_payloads(
    expected: Dict[str, object], actual: Dict[str, object]
) -> List[str]:
    """Field-by-field differences, formatted for a loud test failure."""
    diffs: List[str] = []
    for name in sorted(set(expected) | set(actual)):
        want = expected.get(name, "<missing>")
        got = actual.get(name, "<missing>")
        if want != got:
            diffs.append(f"{name}: expected {want!r}, got {got!r}")
    return diffs


def write_golden(
    directory: Path, scheme: str, workload: str, variant: str
) -> Path:
    """Run one golden entry and pin it to disk; returns the file path."""
    metrics = run_golden_entry(scheme, workload, variant)
    payload = metrics_payload(metrics)
    document = {
        "scheme": scheme,
        "workload": workload,
        "variant": variant,
        "sizing": dict(GOLDEN_SIZING),
        "digest": payload_digest(payload),
        "metrics": payload,
    }
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / golden_filename(scheme, workload, variant)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_golden(
    directory: Path, scheme: str, workload: str, variant: str
) -> Optional[Dict[str, object]]:
    path = directory / golden_filename(scheme, workload, variant)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def verify_golden(
    directory: Path, scheme: str, workload: str, variant: str
) -> List[str]:
    """Recompute one entry and diff it against its pinned golden.

    Returns a list of human-readable problems; empty means the run still
    matches its golden exactly.
    """
    document = load_golden(directory, scheme, workload, variant)
    if document is None:
        return [
            f"missing golden file {golden_filename(scheme, workload, variant)} "
            f"(run `python -m repro golden --update`)"
        ]
    metrics = run_golden_entry(scheme, workload, variant)
    actual = metrics_payload(metrics)
    diffs = compare_payloads(document["metrics"], actual)
    actual_digest = payload_digest(actual)
    if not diffs and document.get("digest") != actual_digest:
        diffs.append(
            f"digest mismatch with identical fields (golden file edited "
            f"by hand?): pinned {document.get('digest')}, "
            f"recomputed {actual_digest}"
        )
    return diffs


def update_goldens(
    directory: Path,
    entries: Optional[Iterable[Tuple[str, str, str]]] = None,
    verbose: bool = False,
) -> List[Path]:
    """Regenerate every golden (the `python -m repro golden --update` path)."""
    written: List[Path] = []
    for scheme, workload, variant in entries or golden_matrix():
        path = write_golden(directory, scheme, workload, variant)
        if verbose:
            print(f"[golden] wrote {path}")
        written.append(path)
    return written


def verify_goldens(
    directory: Path,
    entries: Optional[Iterable[Tuple[str, str, str]]] = None,
    verbose: bool = False,
) -> Dict[Tuple[str, str, str], List[str]]:
    """Verify every golden; returns only the entries that diverged."""
    problems: Dict[Tuple[str, str, str], List[str]] = {}
    for scheme, workload, variant in entries or golden_matrix():
        diffs = verify_golden(directory, scheme, workload, variant)
        if verbose:
            status = "MISMATCH" if diffs else "ok"
            print(f"[golden] {scheme}/{workload}/{variant}: {status}")
        if diffs:
            problems[(scheme, workload, variant)] = diffs
    return problems
