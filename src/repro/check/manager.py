"""The CheckManager: attaches the sanitizer to a live system.

The manager is constructed by :class:`repro.sim.system.System` only when
``config.check.level != "off"`` — at the default ``off`` level nothing is
built, nothing is wrapped, and the hot path runs exactly the code it runs
without the sanitizer (the zero-overhead guarantee the throughput tests
pin down).

When enabled, the manager

* wraps ``hmc.handle_request`` with an observer that counts requests,
  cross-checks each accessed page against the shadow oracle (level
  ``full``), and runs a structural invariant sweep every
  ``interval_ops`` requests;
* subscribes to the PRT's install/remove events and the Swap Driver's
  swap events, so event-count conservation and the oracle's replay are
  driven by the model's own mutation stream;
* raises :class:`repro.common.errors.CheckViolationError` on the first
  violation (``fail_fast``), or collects violations and raises once at
  :meth:`finalize`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.addr import LINES_PER_PAGE
from repro.common.config import CheckConfig
from repro.common.errors import CheckViolationError
from repro.check.invariants import InvariantChecker, Violation, build_checkers
from repro.check.shadow import ShadowPageOracle


@dataclass
class CheckReport:
    """What the sanitizer did during one run."""

    level: str
    accesses_observed: int = 0
    sweeps: int = 0
    checkers: List[str] = field(default_factory=list)
    shadow_accesses_checked: int = 0
    shadow_swaps_replayed: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations


class CheckManager:
    """Owns the checkers and the shadow oracle for one system."""

    def __init__(self, config: CheckConfig):
        self.config = config
        self.checkers: List[InvariantChecker] = []
        self.shadow: Optional[ShadowPageOracle] = None
        self.system = None
        self.accesses = 0
        self.sweeps = 0
        self.violations: List[Violation] = []
        self._prt_installs = 0
        self._prt_removes = 0
        self._finalized = False

    # -- wiring -------------------------------------------------------------
    def attach(self, system) -> None:
        """Bind to *system*: build checkers, subscribe events, wrap the HMC."""
        self.system = system
        self.checkers = build_checkers(system)
        if system.scheme == "pageseer":
            hmc = system.hmc
            hmc.prt.on_event = self._on_prt_event
            if self.config.shadow_enabled:
                self.shadow = ShadowPageOracle(hmc.dram_pages, hmc.total_pages)
                hmc.swap_driver.on_swap_event = self.shadow.on_swap
        self._wrap_handle_request()

    def _wrap_handle_request(self) -> None:
        from repro.sim.hmc_base import RequestKind

        hmc = self.system.hmc
        inner = hmc.handle_request
        interval = self.config.interval_ops
        shadow = self.shadow
        prt = getattr(hmc, "prt", None)

        def checked_handle_request(
            now, line_spa, is_write, pid, kind=RequestKind.DEMAND
        ):
            self.accesses += 1
            if shadow is not None:
                violation = shadow.verify_access(prt, line_spa // LINES_PER_PAGE)
                if violation is not None:
                    self._handle([violation])
            if self.accesses % interval == 0:
                self.run_invariants(now)
            finish = inner(now, line_spa, is_write, pid, kind)
            if shadow is not None and shadow.event_violations:
                drained = list(shadow.event_violations)
                shadow.event_violations.clear()
                self._handle(drained)
            return finish

        hmc.handle_request = checked_handle_request
        self._inner_handle_request = inner

    # -- checkpointing ------------------------------------------------------
    def snapshot_detach(self) -> None:
        """Strip the closures this manager installed, for a pickle window.

        ``hmc.handle_request`` reverts to the wrapped inner callable (a
        picklable bound method) and checkers drop their table listeners.
        The PRT/swap-driver subscriptions are bound methods and pickle
        as-is.  No simulation step may run while detached — the
        checkpoint machinery guarantees that by detaching/reattaching
        inside one ``save_checkpoint`` call.
        """
        self.system.hmc.handle_request = self._inner_handle_request
        for checker in self.checkers:
            detach = getattr(checker, "snapshot_detach", None)
            if detach is not None:
                detach()

    def snapshot_reattach(self) -> None:
        """Rebuild the closures after a pickle window or a restore."""
        self._wrap_handle_request()
        for checker in self.checkers:
            reattach = getattr(checker, "snapshot_reattach", None)
            if reattach is not None:
                reattach()

    def _on_prt_event(self, kind: str, nvm_ppn: int, dram_ppn: int) -> None:
        if kind == "install":
            self._prt_installs += 1
        elif kind == "remove":
            self._prt_removes += 1

    # -- checking -----------------------------------------------------------
    def run_invariants(self, now: int) -> None:
        """One structural sweep over every registered checker."""
        self.sweeps += 1
        found: List[Violation] = []
        for checker in self.checkers:
            found.extend(checker.check(self.system, now))
        found.extend(self._check_event_conservation())
        if found:
            self._handle(found)

    def _check_event_conservation(self) -> List[Violation]:
        """PRT event stream must balance against its active pair count."""
        if self.system.scheme != "pageseer":
            return []
        expected = self._prt_installs - self._prt_removes
        actual = self.system.hmc.prt.active_pairs
        if actual == expected:
            return []
        return [Violation(
            checker="prt-event-conservation",
            message=f"PRT holds {actual} pairs but its event stream "
                    f"accounts for {expected} "
                    f"({self._prt_installs} installs - "
                    f"{self._prt_removes} removes)",
        )]

    def finalize(self, now: int) -> None:
        """End-of-run sweep plus the oracle's full-map comparison."""
        if self._finalized:
            return
        self._finalized = True
        self.run_invariants(now)
        if self.shadow is not None:
            mismatches = self.shadow.verify_full(self.system.hmc.prt)
            self.shadow.event_violations.clear()
            if mismatches:
                self._handle(mismatches)
        if self.violations:
            raise CheckViolationError(self.violations)

    # -- reporting ----------------------------------------------------------
    def _handle(self, violations: List[Violation]) -> None:
        self.violations.extend(violations)
        if self.config.fail_fast:
            raise CheckViolationError(violations)

    def report(self) -> CheckReport:
        return CheckReport(
            level=self.config.level,
            accesses_observed=self.accesses,
            sweeps=self.sweeps,
            checkers=[checker.name for checker in self.checkers],
            shadow_accesses_checked=(
                self.shadow.accesses_checked if self.shadow else 0
            ),
            shadow_swaps_replayed=(
                self.shadow.swaps_replayed if self.shadow else 0
            ),
            violations=list(self.violations),
        )
