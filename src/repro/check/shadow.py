"""The shadow functional reference model (the sanitizer's semantic half).

A :class:`ShadowPageOracle` is a zero-timing, dict-based replica of the
remap state: it replays the Swap Driver's swap events (and nothing else —
in particular it never reads the PRT it is checking) and derives, for any
physical page, the location its data must resolve to.  On every request
the timed model handles, the sanitizer asks the oracle where the accessed
page's data should live and compares that against the PRT's answer; at
the end of the run the two remap maps are compared entry by entry.

Because the oracle evolves only through the swap-event stream, any PRT
corruption that did not come from a legitimate swap — a lost update, a
double install, a stray write — shows up as a divergence between the two
models, pinpointing the violating page and frame.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.check.invariants import Violation


class ShadowPageOracle:
    """Replays swap events into a flat functional model of remapping."""

    name = "shadow-oracle"

    def __init__(self, dram_pages: int, total_pages: int):
        self.dram_pages = dram_pages
        self.total_pages = total_pages
        self._nvm_to_dram: Dict[int, int] = {}
        self._dram_to_nvm: Dict[int, int] = {}
        self.swaps_replayed = 0
        self.accesses_checked = 0
        #: Violations raised by malformed events themselves (e.g. a swap
        #: evicting an occupant the oracle never saw arrive).
        self.event_violations: List[Violation] = []

    # -- event replay -------------------------------------------------------
    def on_swap(
        self, now: int, page: int, frame: int, occupant: Optional[int], end: int
    ) -> None:
        """Replay one committed swap: *page* moves into *frame*.

        When *occupant* is not None, the optimized slow swap first sends
        the frame's previous tenant home (Figure 5).
        """
        self.swaps_replayed += 1
        if occupant is not None:
            expected_frame = self._nvm_to_dram.pop(occupant, None)
            if expected_frame is None:
                self.event_violations.append(Violation(
                    checker=self.name,
                    message="swap evicted an occupant the oracle never saw "
                            "swap in",
                    page=occupant, frame=frame))
            else:
                self._dram_to_nvm.pop(expected_frame, None)
                if expected_frame != frame:
                    self.event_violations.append(Violation(
                        checker=self.name,
                        message=f"swap evicted occupant from frame {frame} "
                                f"but the oracle placed it in "
                                f"{expected_frame}",
                        page=occupant, frame=frame))
        if page in self._nvm_to_dram:
            self.event_violations.append(Violation(
                checker=self.name,
                message="page swapped in while the oracle already holds it "
                        "in a frame",
                page=page, frame=self._nvm_to_dram[page]))
        if frame in self._dram_to_nvm:
            self.event_violations.append(Violation(
                checker=self.name,
                message=f"frame received page {page} while the oracle still "
                        f"holds page {self._dram_to_nvm[frame]} there",
                page=page, frame=frame))
        self._nvm_to_dram[page] = frame
        self._dram_to_nvm[frame] = page

    # -- queries ------------------------------------------------------------
    def expected_location(self, page_spa: int) -> int:
        """Where *page_spa*'s data must live according to the oracle."""
        if page_spa < self.dram_pages:
            partner = self._dram_to_nvm.get(page_spa)
            return partner if partner is not None else page_spa
        partner = self._nvm_to_dram.get(page_spa)
        return partner if partner is not None else page_spa

    @property
    def active_pairs(self) -> int:
        return len(self._nvm_to_dram)

    # -- verification -------------------------------------------------------
    def verify_access(self, prt, page_spa: int) -> Optional[Violation]:
        """Cross-check the timed model's resolution of one accessed page."""
        self.accesses_checked += 1
        expected = self.expected_location(page_spa)
        actual = prt.location_of(page_spa)
        if actual == expected:
            return None
        return Violation(
            checker=self.name,
            message=f"access to page {page_spa} resolves to {actual} in the "
                    f"timed model but the oracle expects {expected}",
            page=page_spa,
            frame=actual if actual < self.dram_pages else expected,
        )

    def verify_full(self, prt) -> List[Violation]:
        """Compare the complete remap maps entry by entry (end of run)."""
        out = list(self.event_violations)
        timed = dict(prt.entries())
        for page, frame in self._nvm_to_dram.items():
            if timed.get(page) != frame:
                out.append(Violation(
                    checker=self.name,
                    message=f"oracle holds {page} -> {frame} but the PRT "
                            f"says {timed.get(page)}",
                    page=page, frame=frame))
        for page, frame in timed.items():
            if page not in self._nvm_to_dram:
                out.append(Violation(
                    checker=self.name,
                    message=f"PRT holds {page} -> {frame} but the oracle "
                            f"never saw that swap",
                    page=page, frame=frame))
        return out
