"""Pluggable runtime invariant checkers (the sanitizer's structural half).

Each checker inspects one slice of a live :class:`repro.sim.system.System`
and returns the :class:`Violation` objects it found.  Checkers are pure
observers: they never mutate model state (in particular they use the
LRU-neutral ``entries()`` accessors, never ``lookup``), so an attached
sanitizer cannot change simulation results — only report on them.

The checkers implemented here cover the structures the paper's claims
rest on:

* **PRT bijectivity** — the remap relation is a colour-respecting
  involution: forward and reverse maps are exact inverses, no two NVM
  pages occupy one DRAM frame, and no pair touches a protected frame.
* **Frame exclusivity** — across every process's page tables, the
  controller metadata region, and the allocator bump pointers, each
  physical frame is owned at most once and lies in an allocated range.
* **Swap conservation** — every page in an in-flight swap is accounted
  for in exactly one place: live swap-buffer windows belong to active
  swaps, partial-swap residue belongs to swapped-in pages, and the
  number of concurrent swaps never exceeds the engine budget.
* **Counter monotonicity** — HPT counters only grow within one decay
  epoch, and every PCT/PCTc/Filter counter stays inside its 6-bit range.
* **Stats sanity** — no counter or observation count is negative, every
  value is finite, and means never exceed maxima.
* **Quarantine integrity** (fault injection only) — every frame retired
  after an uncorrectable error is a valid NVM page, the retired set only
  grows, and every page the injector knows is bad has been quarantined.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.addr import LINES_PER_PAGE


@dataclass(frozen=True)
class Violation:
    """One detected invariant violation, with its page/frame context."""

    checker: str
    message: str
    page: Optional[int] = None
    frame: Optional[int] = None

    def __str__(self) -> str:
        where = []
        if self.page is not None:
            where.append(f"page={self.page}")
        if self.frame is not None:
            where.append(f"frame={self.frame}")
        suffix = f" ({', '.join(where)})" if where else ""
        return f"[{self.checker}] {self.message}{suffix}"


class InvariantChecker:
    """Base class: one named, stateless-or-stateful structural check."""

    name = "invariant"

    def check(self, system, now: int) -> List[Violation]:
        """Inspect *system* at time *now*; return all violations found."""
        raise NotImplementedError

    def _violation(
        self,
        message: str,
        page: Optional[int] = None,
        frame: Optional[int] = None,
    ) -> Violation:
        return Violation(checker=self.name, message=message, page=page, frame=frame)


class PrtBijectivityChecker(InvariantChecker):
    """The Page Remapping Table is a colour-respecting involution."""

    name = "prt-bijectivity"

    def check(self, system, now: int) -> List[Violation]:
        prt = system.hmc.prt
        os_model = system.os_model
        out: List[Violation] = []
        forward = dict(prt.entries())
        reverse = dict(prt.reverse_entries())

        for nvm, frame in forward.items():
            if not (prt.dram_pages <= nvm < prt.total_pages):
                out.append(self._violation(
                    f"forward entry keyed by non-NVM page {nvm}",
                    page=nvm, frame=frame))
            if not (0 <= frame < prt.dram_pages):
                out.append(self._violation(
                    f"forward entry maps into non-DRAM frame {frame}",
                    page=nvm, frame=frame))
                continue
            if prt.colour_of(nvm) != prt.colour_of(frame):
                out.append(self._violation(
                    f"colour mismatch: nvm colour {prt.colour_of(nvm)} vs "
                    f"frame colour {prt.colour_of(frame)}",
                    page=nvm, frame=frame))
            if reverse.get(frame) != nvm:
                out.append(self._violation(
                    f"forward entry {nvm} -> {frame} has no matching reverse "
                    f"entry (reverse says {reverse.get(frame)})",
                    page=nvm, frame=frame))
            if os_model.is_protected_frame(frame):
                out.append(self._violation(
                    "swap pair occupies a protected frame "
                    "(page tables / controller metadata must stay pinned)",
                    page=nvm, frame=frame))

        frames_used = list(forward.values())
        if len(set(frames_used)) != len(frames_used):
            seen: Dict[int, int] = {}
            for nvm, frame in forward.items():
                if frame in seen:
                    out.append(self._violation(
                        f"two virtual pages map to one frame: NVM pages "
                        f"{seen[frame]} and {nvm} both claim it",
                        page=nvm, frame=frame))
                seen[frame] = nvm

        for frame, nvm in reverse.items():
            if forward.get(nvm) != frame:
                out.append(self._violation(
                    f"reverse entry {frame} -> {nvm} has no matching forward "
                    f"entry (forward says {forward.get(nvm)})",
                    page=nvm, frame=frame))
        return out


class FrameExclusivityChecker(InvariantChecker):
    """Every physical frame is owned at most once, in an allocated range."""

    name = "frame-exclusivity"

    def check(self, system, now: int) -> List[Violation]:
        os_model = system.os_model
        memory = system.config.memory
        out: List[Violation] = []

        if os_model.dram_frames_used > memory.dram_pages:
            out.append(self._violation(
                f"DRAM allocator overran its range: "
                f"{os_model.dram_frames_used} > {memory.dram_pages}"))
        if os_model.nvm_frames_used > memory.nvm_pages:
            out.append(self._violation(
                f"NVM allocator overran its range: "
                f"{os_model.nvm_frames_used} > {memory.nvm_pages}"))

        owners: Dict[int, str] = {}

        def claim(frame: int, owner: str) -> None:
            if frame in owners:
                out.append(self._violation(
                    f"frame allocated twice: owned by {owners[frame]} "
                    f"and {owner}", frame=frame))
                return
            owners[frame] = owner
            if not (0 <= frame < memory.total_pages):
                out.append(self._violation(
                    f"{owner} holds out-of-range frame", frame=frame))
            elif memory.is_dram_page(frame):
                if frame >= os_model.dram_frames_used:
                    out.append(self._violation(
                        f"{owner} holds unallocated DRAM frame", frame=frame))
            elif frame >= memory.dram_pages + os_model.nvm_frames_used:
                out.append(self._violation(
                    f"{owner} holds unallocated NVM frame", frame=frame))

        for page in os_model.metadata_pages:
            claim(page, "controller-metadata")
        for pid, process in os_model.processes.items():
            for frame in process.page_table.table_pages():
                claim(frame, f"pid{pid}-page-table")
            for frame in process.page_table.data_frames():
                claim(frame, f"pid{pid}-data")
        return out


class SwapConservationChecker(InvariantChecker):
    """Every in-flight page is accounted for in exactly one place."""

    name = "swap-conservation"

    def check(self, system, now: int) -> List[Violation]:
        driver = system.hmc.swap_driver
        prt = system.hmc.prt
        buffers = system.hmc.buffers
        out: List[Violation] = []

        if driver.in_flight_count > driver.max_in_flight:
            out.append(self._violation(
                f"{driver.in_flight_count} concurrent swaps exceed the "
                f"{driver.max_in_flight}-engine budget"))
        if buffers.occupancy > buffers.capacity:
            out.append(self._violation(
                f"buffer pool over capacity: {buffers.occupancy} > "
                f"{buffers.capacity}"))

        active = driver.active_swaps()
        # Per-core request times skew, so a swap may already be purged at a
        # wall time later than this sweep's `now`; only windows outliving
        # the driver's purge high-water mark can be genuine orphans.
        horizon = max(now, driver.last_purge_time)
        for key, (available_from, release_at) in buffers.held_windows().items():
            if release_at <= horizon:
                continue  # expired entry awaiting lazy cleanup
            if key not in active:
                out.append(self._violation(
                    "live swap buffer holds a page with no in-flight swap",
                    page=key))
            elif active[key] < release_at:
                out.append(self._violation(
                    f"buffer window outlives its swap "
                    f"(buffer until {release_at}, swap ends {active[key]})",
                    page=key))

        full_mask = (1 << LINES_PER_PAGE) - 1
        for page, residue in driver.partial_residue.items():
            if prt.dram_frame_holding(page) is None:
                out.append(self._violation(
                    "partial-swap residue recorded for a page that is not "
                    "swapped in", page=page))
            if residue == 0 or residue & ~full_mask:
                out.append(self._violation(
                    f"malformed residue bitmap {residue:#x}", page=page))
        return out


class CounterMonotonicityChecker(InvariantChecker):
    """HPT counters grow within an epoch; all counters stay in range.

    A counter may legitimately restart at 1 if its entry was evicted (or
    removed after a swap) and the page re-missed, so the checker
    subscribes to the HPTs' evict/remove events and exempts those pages
    from the monotonicity comparison until the next sweep.
    """

    name = "counter-monotonicity"

    def __init__(self, system) -> None:
        #: Per-table (epoch, {page: counter}) from the previous sweep.
        self._previous: Dict[str, Tuple[int, Dict[int, int]]] = {}
        #: Pages whose entry left a table since the previous sweep.
        self._departed: Dict[str, set] = {"dram-hpt": set(), "nvm-hpt": set()}
        self._hmc = system.hmc
        self.snapshot_reattach()

    def snapshot_detach(self) -> None:
        """Drop the HPT listeners (closures) for a pickle window."""
        self._hmc.dram_hpt.on_event = None
        self._hmc.nvm_hpt.on_event = None

    def snapshot_reattach(self) -> None:
        """(Re)install the HPT evict/remove listeners."""
        for label, hpt in (
            ("dram-hpt", self._hmc.dram_hpt),
            ("nvm-hpt", self._hmc.nvm_hpt),
        ):
            hpt.on_event = self._make_listener(label)

    def _make_listener(self, label: str):
        departed = self._departed[label]

        def on_event(kind: str, value: int) -> None:
            if kind in ("evict", "remove"):
                departed.add(value)

        return on_event

    def check(self, system, now: int) -> List[Violation]:
        hmc = system.hmc
        counter_max = system.config.pageseer.counter_max
        out: List[Violation] = []

        for label, hpt in (("dram-hpt", hmc.dram_hpt), ("nvm-hpt", hmc.nvm_hpt)):
            counters = hpt.counters()
            epoch = hpt.epoch
            for page, count in counters.items():
                if not (1 <= count <= counter_max):
                    out.append(self._violation(
                        f"{label} counter {count} outside [1, {counter_max}]",
                        page=page))
            previous = self._previous.get(label)
            departed = self._departed[label]
            if previous is not None and previous[0] == epoch:
                for page, old_count in previous[1].items():
                    new_count = counters.get(page)
                    if (
                        new_count is not None
                        and new_count < old_count
                        and page not in departed
                    ):
                        out.append(self._violation(
                            f"{label} counter decreased {old_count} -> "
                            f"{new_count} within epoch {epoch}", page=page))
            departed.clear()
            self._previous[label] = (epoch, counters)

        for page, entry in hmc.pct.entries():
            out.extend(self._check_pct_entry("pct", page, entry, counter_max))
        for page, entry in hmc.pctc.entries():
            out.extend(self._check_pct_entry("pctc", page, entry, counter_max))
        for entry in hmc.filter.entries():
            if not (0 <= entry.misses <= counter_max):
                out.append(self._violation(
                    f"filter miss counter {entry.misses} outside "
                    f"[0, {counter_max}]", page=entry.page))
            if not (0 <= entry.follower_misses <= counter_max):
                out.append(self._violation(
                    f"filter follower counter {entry.follower_misses} "
                    f"outside [0, {counter_max}]", page=entry.page))
        return out

    def _check_pct_entry(self, label: str, page: int, entry, counter_max: int):
        out = []
        if not (0 <= entry.count <= counter_max):
            out.append(self._violation(
                f"{label} count {entry.count} outside [0, {counter_max}]",
                page=page))
        if not (0 <= entry.follower_count <= counter_max):
            out.append(self._violation(
                f"{label} follower count {entry.follower_count} outside "
                f"[0, {counter_max}]", page=page))
        return out


class StatsSanityChecker(InvariantChecker):
    """No counter goes negative; every observation stream is coherent."""

    name = "stats-sanity"

    def check(self, system, now: int) -> List[Violation]:
        snap = system.stats.snapshot_full()
        out: List[Violation] = []
        for name, value in snap.counters.items():
            if not math.isfinite(value):
                out.append(self._violation(f"counter {name} is {value}"))
            elif value < 0:
                out.append(self._violation(f"counter {name} is negative: {value}"))
        for name, count in snap.counts.items():
            if count < 0:
                out.append(self._violation(
                    f"observation count {name} is negative: {count}"))
            if count > 0 and name not in snap.maxima:
                out.append(self._violation(
                    f"observations of {name} recorded but no maximum kept"))
        for name, total in snap.sums.items():
            if not math.isfinite(total):
                out.append(self._violation(f"sum {name} is {total}"))
                continue
            count = snap.counts.get(name, 0)
            if count > 0:
                mean = total / count
                maximum = snap.maxima.get(name)
                if maximum is not None and mean > maximum + 1e-9:
                    out.append(self._violation(
                        f"mean of {name} ({mean}) exceeds its maximum "
                        f"({maximum})"))
        return out


class QuarantineChecker(InvariantChecker):
    """Frame quarantine (``repro.faults``) stays coherent with the injector.

    Quarantine is monotone — a frame retired after an uncorrectable error
    never returns to service — and complete: every NVM page the injector's
    sticky bad-page set contains must have been quarantined by the
    recovery hook the first time a read of it was serviced.
    """

    name = "quarantine"

    def __init__(self) -> None:
        self._previously_quarantined: set = set()

    def check(self, system, now: int) -> List[Violation]:
        os_model = system.os_model
        memory = system.config.memory
        out: List[Violation] = []

        quarantined = set(os_model.quarantined_frames)
        for frame in quarantined:
            if not (0 <= frame < memory.total_pages):
                out.append(self._violation(
                    "quarantined frame outside physical memory", frame=frame))
            elif not memory.is_nvm_page(frame):
                out.append(self._violation(
                    "quarantined frame is not an NVM page (only NVM frames "
                    "suffer uncorrectable errors)", frame=frame))
        lost = self._previously_quarantined - quarantined
        for frame in sorted(lost):
            out.append(self._violation(
                "frame left quarantine (retirement must be permanent)",
                frame=frame))
        self._previously_quarantined = quarantined

        injector = getattr(system.hmc, "fault_injector", None)
        if injector is not None:
            for local_page in injector.bad_pages:
                spa_page = memory.dram_pages + local_page
                if spa_page not in quarantined:
                    out.append(self._violation(
                        "injector knows this NVM page is bad but it was "
                        "never quarantined", page=spa_page))
        return out


def build_checkers(system) -> List[InvariantChecker]:
    """The checkers that apply to *system*'s scheme."""
    checkers: List[InvariantChecker] = [
        FrameExclusivityChecker(),
        StatsSanityChecker(),
    ]
    if system.scheme == "pageseer":
        checkers.extend([
            PrtBijectivityChecker(),
            SwapConservationChecker(),
            CounterMonotonicityChecker(system),
        ])
        if system.config.faults.enabled:
            checkers.append(QuarantineChecker())
    return checkers
