"""The simulation sanitizer: runtime correctness checking for the model.

The paper's figures are only as trustworthy as the simulator's remap and
swap bookkeeping, so this package provides three complementary layers:

* :mod:`repro.check.invariants` — pluggable structural checkers (PRT
  bijectivity, frame exclusivity, swap conservation, counter
  monotonicity, stats sanity) swept periodically during a run;
* :mod:`repro.check.shadow` — a zero-timing functional oracle that
  replays the swap-event stream and cross-checks every access's resolved
  location against the timed model;
* :mod:`repro.check.golden` — a golden-run digest harness pinning full
  ``RunMetrics`` for a (scheme x workload x variant) matrix, so
  behavioural drift fails tests with a metrics diff.

Enable via ``CheckConfig`` (``repro.common.config``), the ``--check`` /
``--check-level`` CLI flags, or ``build_system``'s config mutator; at the
default ``off`` level nothing is constructed and the hot path is
untouched.
"""

from repro.check.invariants import (
    CounterMonotonicityChecker,
    FrameExclusivityChecker,
    InvariantChecker,
    PrtBijectivityChecker,
    StatsSanityChecker,
    SwapConservationChecker,
    Violation,
    build_checkers,
)
from repro.check.manager import CheckManager, CheckReport
from repro.check.shadow import ShadowPageOracle

__all__ = [
    "CheckManager",
    "CheckReport",
    "CounterMonotonicityChecker",
    "FrameExclusivityChecker",
    "InvariantChecker",
    "PrtBijectivityChecker",
    "ShadowPageOracle",
    "StatsSanityChecker",
    "SwapConservationChecker",
    "Violation",
    "build_checkers",
]
