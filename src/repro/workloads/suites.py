"""The 26 workloads of Table III.

Each benchmark is mapped to the synthetic archetype that reproduces its
page-grain memory behaviour (see the generator docstrings for the
reasoning), with Table III's single-instance footprint and instance count.
Suite labels follow the paper's grouping: 8 SPEC CPU2006, 6 Splash-3, 6
CORAL, and 6 mixes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workloads.base import BenchmarkPart, WorkloadSpec, mix_workload, unique_workload

#: benchmark -> (suite, single-instance footprint MB, generator, params).
BENCHMARKS: Dict[str, Tuple[str, float, str, Dict]] = {
    # SPEC CPU2006 (memory-intensive subset of Table III).
    "lbm": ("spec", 422, "stream_sweep", {"arrays": 3, "write_fraction": 0.4}),
    "milc": ("spec", 380, "hot_cold", {"hot_fraction": 0.12, "flurry_lines": 20}),
    "bwaves": ("spec", 385, "stream_sweep", {"arrays": 4, "write_fraction": 0.25}),
    "GemsFDTD": ("spec", 502, "phased_sweep", {"write_fraction": 0.35}),
    "mcf": ("spec", 290, "pointer_chase", {"lines_per_visit": 2}),
    "libquantum": ("spec", 267, "stream_sweep", {"arrays": 1, "write_fraction": 0.15}),
    "omnetpp": ("spec", 164, "pointer_chase", {"lines_per_visit": 3}),
    "leslie3d": ("spec", 62, "stencil_sweep", {"arrays": 3}),
    # Splash-3.
    "fft": ("splash3", 768, "phased_sweep", {"write_fraction": 0.4}),
    "luCon": ("splash3", 520, "blocked_sweep", {"block_pages": 32}),
    "luNCon": ("splash3", 520, "random_mix", {"streamed_fraction": 0.5}),
    "oceanCon": ("splash3", 887, "stencil_sweep", {"arrays": 6}),
    "barnes": ("splash3", 250, "pointer_chase", {"lines_per_visit": 2}),
    "radix": ("splash3", 648, "phased_sweep", {"write_fraction": 0.5}),
    # CORAL.
    "stream": ("coral", 457, "stream_sweep", {"arrays": 3, "write_fraction": 0.33}),
    "miniFE": ("coral", 480, "stencil_sweep", {"arrays": 4}),
    "LULESH": ("coral", 914, "stencil_sweep", {"arrays": 8}),
    "AMGmk": ("coral", 350, "random_mix", {"streamed_fraction": 0.6}),
    "SNAP": ("coral", 441, "stream_sweep", {"arrays": 5, "write_fraction": 0.3}),
    "MILCmk": ("coral", 480, "hot_cold", {"hot_fraction": 0.15, "flurry_lines": 24}),
}

#: Table III instance counts for the unique-benchmark workloads.
INSTANCE_COUNTS: Dict[str, int] = {
    "lbm": 4, "milc": 4, "bwaves": 4, "GemsFDTD": 4, "mcf": 8,
    "libquantum": 6, "omnetpp": 8, "leslie3d": 12,
    "fft": 4, "luCon": 4, "luNCon": 4, "oceanCon": 4, "barnes": 8, "radix": 4,
    "stream": 4, "miniFE": 4, "LULESH": 4, "AMGmk": 4, "SNAP": 4, "MILCmk": 4,
}

#: The six mixed workloads (Table III, bottom).
MIX_DEFINITIONS: Dict[str, List[str]] = {
    "mix1": ["lbm", "LULESH", "SNAP", "leslie3d"],
    "mix2": ["AMGmk", "luCon", "radix", "barnes"],
    "mix3": ["miniFE", "oceanCon", "barnes", "AMGmk"],
    "mix4": ["LULESH", "milc", "miniFE", "stream"],
    "mix5": ["luCon", "radix", "oceanCon", "barnes"],
    "mix6": ["libquantum", "lbm", "mcf", "bwaves"],
}


def _part(benchmark: str) -> BenchmarkPart:
    suite, footprint_mb, generator, params = BENCHMARKS[benchmark]
    return BenchmarkPart(benchmark, generator, footprint_mb, params)


def _build_unique() -> List[WorkloadSpec]:
    specs = []
    for benchmark, (suite, footprint_mb, generator, params) in BENCHMARKS.items():
        specs.append(
            unique_workload(
                benchmark,
                suite,
                INSTANCE_COUNTS[benchmark],
                footprint_mb,
                generator,
                params,
            )
        )
    return specs


def _build_mixes() -> List[WorkloadSpec]:
    return [
        mix_workload(name, [_part(benchmark) for benchmark in members])
        for name, members in MIX_DEFINITIONS.items()
    ]


UNIQUE_WORKLOADS: List[WorkloadSpec] = _build_unique()
MIX_WORKLOADS: List[WorkloadSpec] = _build_mixes()


def all_workloads() -> List[WorkloadSpec]:
    """The paper's 26 workloads: 20 unique-benchmark + 6 mixes."""
    return UNIQUE_WORKLOADS + MIX_WORKLOADS


def workload_by_name(name: str) -> WorkloadSpec:
    """Look a workload up by its Table III name (e.g. ``"lbmx4"``)."""
    for spec in all_workloads():
        if spec.name == name:
            return spec
    raise KeyError(f"unknown workload: {name!r}")
