"""Workload specifications: which generator runs on which core.

A :class:`WorkloadSpec` describes one Table III workload: either N
instances of the same benchmark archetype on N cores (each instance a
separate process with its own address space, as in the paper), or a mix
assigning a different benchmark to each core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.addr import PAGE_BYTES
from repro.common.rng import DeterministicRng
from repro.sim.cpu import MemoryOp
from repro.workloads.chunks import Block
from repro.workloads.synthetic import BLOCK_GENERATORS, GENERATORS

MB = 1024 * 1024

#: Floor so that heavily-scaled footprints keep enough pages to exercise
#: the TLB and the swap machinery (the scaled L2 TLB reaches 64 pages, so
#: the floor must exceed that or small workloads stop TLB-missing).
MIN_FOOTPRINT_PAGES = 96


def footprint_pages_for(footprint_mb: float, scale: int) -> int:
    """Scale a Table III footprint (MB, full size) to simulated pages."""
    pages = int(footprint_mb * MB / scale) // PAGE_BYTES
    return max(MIN_FOOTPRINT_PAGES, pages)


@dataclass(frozen=True)
class BenchmarkPart:
    """One benchmark archetype bound to one core of a workload."""

    benchmark: str
    generator: str
    footprint_mb: float
    params: Dict = field(default_factory=dict)

    def make_stream(
        self, rng: DeterministicRng, scale: int
    ) -> Iterator[MemoryOp]:
        generator = GENERATORS[self.generator]
        pages = footprint_pages_for(self.footprint_mb, scale)
        return generator(rng, pages, **self.params)

    def make_blocks(
        self, rng: DeterministicRng, scale: int
    ) -> Optional[Iterator[Block]]:
        """The block view of this part's stream, or None.

        None means the generator is registered per-op only (an external
        plugin): callers fall back to batching :meth:`make_stream` output,
        which yields the identical op sequence at per-op generation cost.
        """
        generator = BLOCK_GENERATORS.get(self.generator)
        if generator is None:
            return None
        pages = footprint_pages_for(self.footprint_mb, scale)
        return generator(rng, pages, **self.params)


@dataclass(frozen=True)
class WorkloadSpec:
    """One of the paper's 26 workloads."""

    name: str
    suite: str
    #: One entry per core.  Unique-benchmark workloads repeat the same part.
    parts: Tuple[BenchmarkPart, ...]

    @property
    def cores(self) -> int:
        return len(self.parts)

    @property
    def is_mix(self) -> bool:
        return self.suite == "mix"

    def part_for_core(self, core_id: int) -> BenchmarkPart:
        return self.parts[core_id % len(self.parts)]

    def make_stream(
        self, core_id: int, seed: int, scale: int
    ) -> Iterator[MemoryOp]:
        """Build the op stream for one core (deterministic per seed/core)."""
        part = self.part_for_core(core_id)
        rng = DeterministicRng(f"{self.name}/core{core_id}/{part.benchmark}", seed)
        return part.make_stream(rng, scale)

    def make_blocks(
        self, core_id: int, seed: int, scale: int
    ) -> Optional[Iterator[Block]]:
        """Block view of :meth:`make_stream`: same RNG name, same seed,
        same draw order, so the two views emit the identical sequence."""
        part = self.part_for_core(core_id)
        rng = DeterministicRng(f"{self.name}/core{core_id}/{part.benchmark}", seed)
        return part.make_blocks(rng, scale)

    def footprint_pages(self, scale: int) -> int:
        """Total data pages across all cores at the given scale."""
        return sum(
            footprint_pages_for(part.footprint_mb, scale) for part in self.parts
        )


def unique_workload(
    benchmark: str,
    suite: str,
    instances: int,
    footprint_mb: float,
    generator: str,
    params: Optional[Dict] = None,
) -> WorkloadSpec:
    """Build a Table III unique-benchmark workload (``name x instances``)."""
    part = BenchmarkPart(benchmark, generator, footprint_mb, params or {})
    return WorkloadSpec(
        name=f"{benchmark}x{instances}",
        suite=suite,
        parts=tuple([part] * instances),
    )


def mix_workload(name: str, parts: List[BenchmarkPart]) -> WorkloadSpec:
    """Build one of the six mixed-benchmark workloads."""
    return WorkloadSpec(name=name, suite="mix", parts=tuple(parts))
