"""Trace-driven workloads: record, save, load, and replay access traces.

The synthetic archetypes stand in for benchmarks the simulator cannot run;
users who *do* have an address trace (from Pin, DynamoRIO, a full-system
simulator, ...) can replay it instead.  The trace format is one memory
reference per line::

    <vaddr-hex> <r|w> <instructions-before>

Lines starting with ``#`` are comments.  A trace replays in a loop, like
every other generator, so the runner's op budget — not the trace length —
bounds the simulation.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.common.errors import ReproError
from repro.common.rng import DeterministicRng
from repro.sim.cpu import MemoryOp
from repro.workloads.base import BenchmarkPart, WorkloadSpec
from repro.workloads.chunks import Block
from repro.workloads.synthetic import BLOCK_GENERATORS, GENERATORS


class TraceFormatError(ReproError):
    """A trace file line could not be parsed."""


def write_trace(path: Union[str, Path], ops: Iterable[MemoryOp]) -> int:
    """Write *ops* to a trace file; returns how many were written."""
    count = 0
    with open(path, "w") as handle:
        handle.write("# repro trace v1: vaddr-hex r|w instructions-before\n")
        for op in ops:
            kind = "w" if op.is_write else "r"
            handle.write(f"{op.vaddr:x} {kind} {op.instructions_before}\n")
            count += 1
    return count


def read_trace(path: Union[str, Path]) -> List[MemoryOp]:
    """Parse a trace file into a list of ops (raises on malformed lines)."""
    ops: List[MemoryOp] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[1] not in ("r", "w"):
                raise TraceFormatError(f"{path}:{line_number}: bad line {line!r}")
            try:
                vaddr = int(parts[0], 16)
                instructions = int(parts[2])
            except ValueError as error:
                raise TraceFormatError(
                    f"{path}:{line_number}: {error}"
                ) from error
            if vaddr < 0 or instructions < 0:
                raise TraceFormatError(
                    f"{path}:{line_number}: negative field in {line!r}"
                )
            ops.append(MemoryOp(vaddr, parts[1] == "w", instructions))
    if not ops:
        raise TraceFormatError(f"{path}: trace contains no operations")
    return ops


def trace_replay(
    rng: DeterministicRng, footprint_pages: int, path: str = ""
) -> Iterator[MemoryOp]:
    """Generator adapter: loop a trace file forever.

    Registered under ``"trace"`` so a :class:`BenchmarkPart` can reference
    a trace exactly like a synthetic archetype; ``rng`` and
    ``footprint_pages`` are part of the generator signature but unused.
    """
    ops = read_trace(path)
    while True:
        yield from ops


def trace_replay_blocks(
    rng: DeterministicRng, footprint_pages: int, path: str = ""
) -> Iterator[Block]:
    """Block view of :func:`trace_replay`: one whole-trace block per pass.

    The trace decomposes into its three columns exactly once; every pass
    yields the same parallel lists (blocks are read-only to consumers),
    so replay cost is one tuple per loop instead of one op object per
    reference.
    """
    ops = read_trace(path)
    vaddrs = [op.vaddr for op in ops]
    writes = [op.is_write for op in ops]
    instr = [op.instructions_before for op in ops]
    while True:
        yield vaddrs, writes, instr


def trace_workload(name: str, trace_paths: List[Union[str, Path]]) -> WorkloadSpec:
    """Build a workload that replays one trace file per core."""
    if not trace_paths:
        raise ReproError("trace workload needs at least one trace file")
    parts = tuple(
        BenchmarkPart(
            benchmark=f"trace{index}",
            generator="trace",
            footprint_mb=0.0,
            params={"path": str(path)},
        )
        for index, path in enumerate(trace_paths)
    )
    return WorkloadSpec(name=name, suite="trace", parts=parts)


def record_trace(
    workload: WorkloadSpec,
    core_id: int,
    count: int,
    path: Union[str, Path],
    seed: int = 0,
    scale: int = 512,
) -> int:
    """Record *count* ops of one core's stream to a trace file."""
    import itertools

    stream = workload.make_stream(core_id, seed, scale)
    return write_trace(path, itertools.islice(stream, count))


GENERATORS.setdefault("trace", trace_replay)
BLOCK_GENERATORS.setdefault("trace", trace_replay_blocks)
