"""Extra workload archetypes beyond Table III.

The paper's suite is SPEC/Splash-3/CORAL; users studying hybrid memory
also care about patterns those suites under-represent.  This module adds
three classics as an ``extras`` suite — they participate in nothing by
default (the 26-workload figures are exactly the paper's) but are
available to :func:`repro.sim.system.build_system`, the CLI, and custom
studies:

* **gups** — HPCC RandomAccess: uniform single-line updates over the
  whole footprint.  The adversarial case for page swapping: no page ever
  earns its 4 KB move.
* **btree** — index probes: a hot top-of-tree (first levels re-visited on
  every lookup) above a cold leaf ocean.  Swapping should pin the top
  levels fast and leave the leaves alone.
* **scanjoin** — an analytics kernel: a streaming scan of a fact table
  joined against a small hash table that stays hot.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.common.addr import LINES_PER_PAGE
from repro.common.rng import DeterministicRng
from repro.workloads.base import BenchmarkPart, WorkloadSpec
from repro.workloads.chunks import Block
from repro.workloads.synthetic import (
    BLOCK_GENERATORS,
    GENERATORS,
    _flurry_block,
    _per_op,
)


def gups_blocks(
    rng: DeterministicRng,
    footprint_pages: int,
    instructions: int = 30,
    update_fraction: float = 0.5,
) -> Iterator[Block]:
    """HPCC RandomAccess: uniform random single-line read-modify-writes."""
    while True:
        page_index = rng.randint(0, footprint_pages - 1)
        line = rng.randint(0, LINES_PER_PAGE - 1)
        is_write = rng.random() < update_fraction
        yield _flurry_block(
            page_index, 1, 1.0 if is_write else 0.0, instructions, rng,
            lines=[line],
        )


def btree_blocks(
    rng: DeterministicRng,
    footprint_pages: int,
    fanout_levels: int = 4,
    hot_level_pages: int = 8,
    instructions: int = 40,
) -> Iterator[Block]:
    """Index probes: hot upper levels, cold leaves.

    Each lookup touches one page per level; the first levels come from a
    tiny hot set (the root region), deeper levels from exponentially
    larger regions, the leaf from the cold remainder.
    """
    fanout_levels = max(2, fanout_levels)
    regions: List[range] = []
    start = 0
    size = max(1, hot_level_pages)
    for _ in range(fanout_levels - 1):
        end = min(start + size, footprint_pages)
        regions.append(range(start, max(start + 1, end)))
        start = end
        size *= 8
    regions.append(range(start, max(start + 1, footprint_pages)))
    while True:
        for level, region in enumerate(regions):
            page_index = region.start + rng.randint(0, len(region) - 1)
            page_index = min(page_index, footprint_pages - 1)
            lines = [rng.randint(0, LINES_PER_PAGE - 1)]
            if level < 2:
                # Upper levels: a few lines (node scan within the page).
                lines = list(range(lines[0] % 60, lines[0] % 60 + 4))
            yield _flurry_block(page_index, 1, 0.05, instructions, rng, lines=lines)


def scanjoin_blocks(
    rng: DeterministicRng,
    footprint_pages: int,
    hash_table_fraction: float = 0.08,
    instructions: int = 40,
    write_fraction: float = 0.1,
) -> Iterator[Block]:
    """Analytics scan-join: stream the fact table, probe a hot hash table."""
    hash_pages = max(1, int(footprint_pages * hash_table_fraction))
    fact_pages = max(1, footprint_pages - hash_pages)
    while True:
        for position in range(fact_pages):
            # Stream one fact page fully...
            yield _flurry_block(
                hash_pages + position, 1, write_fraction, instructions, rng
            )
            # ...probing the hash table a few times along the way.
            for _ in range(4):
                probe = rng.randint(0, hash_pages - 1)
                lines = [rng.randint(0, LINES_PER_PAGE - 1)]
                yield _flurry_block(probe, 1, 0.0, instructions, rng, lines=lines)


gups = _per_op(gups_blocks)
btree = _per_op(btree_blocks)
scanjoin = _per_op(scanjoin_blocks)

GENERATORS.setdefault("gups", gups)
GENERATORS.setdefault("btree", btree)
GENERATORS.setdefault("scanjoin", scanjoin)
BLOCK_GENERATORS.setdefault("gups", gups_blocks)
BLOCK_GENERATORS.setdefault("btree", btree_blocks)
BLOCK_GENERATORS.setdefault("scanjoin", scanjoin_blocks)


def _extra(benchmark: str, generator: str, instances: int, footprint_mb: float,
           params=None) -> WorkloadSpec:
    part = BenchmarkPart(benchmark, generator, footprint_mb, params or {})
    return WorkloadSpec(
        name=f"{benchmark}x{instances}",
        suite="extras",
        parts=tuple([part] * instances),
    )


EXTRA_WORKLOADS: List[WorkloadSpec] = [
    _extra("gups", "gups", 4, 600),
    _extra("btree", "btree", 4, 500),
    _extra("scanjoin", "scanjoin", 4, 700),
]


def extra_workload_by_name(name: str) -> WorkloadSpec:
    for spec in EXTRA_WORKLOADS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown extra workload: {name!r}")
