"""Synthetic memory-access generators (the workload archetypes).

Every generator is an infinite iterator of :class:`repro.sim.cpu.MemoryOp`
over a private virtual address range; the runner bounds the number of
operations.  The archetypes are chosen so that the page-grain behaviours
the paper's mechanisms key off — per-page LLC-miss flurries, stable or
shifting leader/follower page orders, page re-visitation, TLB pressure —
appear with controllable intensity.  All randomness flows from the passed
:class:`repro.common.rng.DeterministicRng`.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.common.addr import CACHE_LINE_BYTES, LINES_PER_PAGE, PAGE_BYTES
from repro.common.rng import DeterministicRng
from repro.sim.cpu import MemoryOp

#: Base of the synthetic heap in each process's virtual space.
HEAP_BASE = 0x1000_0000_0000


def _page_va(page_index: int) -> int:
    return HEAP_BASE + page_index * PAGE_BYTES


# repro-hot
def _flurry(
    page_index: int,
    line_stride: int,
    write_fraction: float,
    instructions: int,
    rng: DeterministicRng,
    lines: Optional[Sequence[int]] = None,
) -> Iterator[MemoryOp]:
    """Emit a burst of references inside one page."""
    base = _page_va(page_index)
    indices = lines if lines is not None else range(0, LINES_PER_PAGE, line_stride)
    random = rng.random
    for line_index in indices:
        yield MemoryOp(
            base + line_index * CACHE_LINE_BYTES,
            random() < write_fraction,
            instructions,
        )


def stream_sweep(
    rng: DeterministicRng,
    footprint_pages: int,
    arrays: int = 3,
    line_stride: int = 1,
    write_fraction: float = 0.3,
    instructions: int = 40,
) -> Iterator[MemoryOp]:
    """Sequential sweeps over several arrays in lockstep.

    Models lbm / STREAM / bwaves / libquantum-style kernels: page flurries
    arrive in a stable order (page ``i`` of array A, then of array B, ...),
    giving the PCT a perfectly learnable leader->follower structure and the
    TLB a steady stream of new pages.
    """
    arrays = max(1, min(arrays, footprint_pages))
    pages_per_array = footprint_pages // arrays
    bases = [a * pages_per_array for a in range(arrays)]
    while True:
        for position in range(pages_per_array):
            for base in bases:
                yield from _flurry(
                    base + position, line_stride, write_fraction, instructions, rng
                )


def pointer_chase(
    rng: DeterministicRng,
    footprint_pages: int,
    lines_per_visit: int = 2,
    write_fraction: float = 0.1,
    instructions: int = 55,
) -> Iterator[MemoryOp]:
    """A fixed random tour over pages, few lines per visit.

    Models mcf / omnetpp / barnes-style linked-structure traversal: low
    spatial locality within a page and modest per-page miss counts, which
    starves prefetch-swap triggers (these benchmarks sit in Figure 10's
    "few prefetch swaps" group).
    """
    order = rng.permutation(footprint_pages)
    while True:
        for page_index in order:
            lines = rng.sample(range(LINES_PER_PAGE), min(lines_per_visit, LINES_PER_PAGE))
            yield from _flurry(
                page_index, 1, write_fraction, instructions, rng, lines=lines
            )


def hot_cold(
    rng: DeterministicRng,
    footprint_pages: int,
    hot_fraction: float = 0.12,
    hot_probability: float = 0.8,
    flurry_lines: int = 20,
    write_fraction: float = 0.25,
    instructions: int = 40,
) -> Iterator[MemoryOp]:
    """A small hot set absorbing most flurries, a large cold tail.

    Models milc / MILCmk-style behaviour: hot pages are revisited with
    dense flurries (prefetch-swap material), cold pages are touched
    sparsely.
    """
    hot_pages = max(1, int(footprint_pages * hot_fraction))
    cold_lines = max(2, flurry_lines // 5)
    while True:
        if rng.random() < hot_probability:
            page_index = rng.zipf_index(hot_pages, skew=0.8)
            lines = range(0, min(flurry_lines, LINES_PER_PAGE))
        else:
            page_index = hot_pages + rng.randint(0, max(0, footprint_pages - hot_pages - 1))
            lines = range(0, cold_lines)
        yield from _flurry(
            page_index, 1, write_fraction, instructions, rng, lines=lines
        )


def phased_sweep(
    rng: DeterministicRng,
    footprint_pages: int,
    line_stride: int = 1,
    write_fraction: float = 0.35,
    instructions: int = 40,
    pages_per_phase: int = 0,
) -> Iterator[MemoryOp]:
    """Sweeps whose page order is reshuffled every phase.

    Models GemsFDTD / fft / radix: pages still see dense flurries, but the
    follower of a page changes between phases, which degrades correlation
    prefetching accuracy (the effect behind GemsFDTD's 28.3% in Figure 9).
    """
    if pages_per_phase <= 0:
        pages_per_phase = footprint_pages
    while True:
        order = rng.permutation(footprint_pages)
        emitted = 0
        for page_index in order:
            yield from _flurry(page_index, line_stride, write_fraction, instructions, rng)
            emitted += 1
            if emitted >= pages_per_phase:
                break


def stencil_sweep(
    rng: DeterministicRng,
    footprint_pages: int,
    arrays: int = 4,
    row_pages: int = 8,
    line_stride: int = 1,
    write_fraction: float = 0.3,
    instructions: int = 45,
    neighbour_probability: float = 0.2,
) -> Iterator[MemoryOp]:
    """Structured-grid sweeps with occasional neighbour-row touches.

    Models LULESH / oceanCon / miniFE / leslie3d: the main sweep produces
    stable, dense flurries (these kernels are bandwidth-bound streams at
    page granularity), and a minority of positions also touch a page
    ``row_pages`` away — the grid's other spatial dimension.
    """
    arrays = max(1, min(arrays, footprint_pages))
    pages_per_array = footprint_pages // arrays
    bases = [a * pages_per_array for a in range(arrays)]
    while True:
        for position in range(pages_per_array):
            for base in bases:
                page_index = base + position
                yield from _flurry(
                    page_index, line_stride, write_fraction, instructions, rng
                )
                if rng.random() < neighbour_probability:
                    direction = row_pages if rng.random() < 0.5 else -row_pages
                    neighbour = position + direction
                    if 0 <= neighbour < pages_per_array:
                        lines = [rng.randint(0, LINES_PER_PAGE - 1)]
                        yield from _flurry(
                            base + neighbour, 1, write_fraction, instructions, rng,
                            lines=lines,
                        )


def random_mix(
    rng: DeterministicRng,
    footprint_pages: int,
    streamed_fraction: float = 0.5,
    line_stride: int = 1,
    write_fraction: float = 0.3,
    instructions: int = 45,
) -> Iterator[MemoryOp]:
    """Interleaved streaming and scattered single-line references.

    Models AMGmk / luNCon / SNAP-style sparse kernels: a structured sweep
    carries the bulk of traffic while random gathers hit arbitrary pages.
    """
    sweep = stream_sweep(
        rng.derive("sweep"), footprint_pages, arrays=2,
        line_stride=line_stride, write_fraction=write_fraction,
        instructions=instructions,
    )
    scatter_rng = rng.derive("scatter")
    while True:
        if scatter_rng.random() < streamed_fraction:
            yield next(sweep)
        else:
            page_index = scatter_rng.randint(0, footprint_pages - 1)
            lines = [scatter_rng.randint(0, LINES_PER_PAGE - 1)]
            yield from _flurry(
                page_index, 1, write_fraction, instructions, scatter_rng, lines=lines
            )


def blocked_sweep(
    rng: DeterministicRng,
    footprint_pages: int,
    block_pages: int = 32,
    passes_per_block: int = 2,
    line_stride: int = 1,
    write_fraction: float = 0.4,
    instructions: int = 35,
) -> Iterator[MemoryOp]:
    """Blocked computation revisiting each block several times.

    Models luCon / fft-style blocked kernels: a block's pages get repeated
    dense flurries (strong swap candidates), then the computation moves on.
    """
    block_pages = max(1, min(block_pages, footprint_pages))
    while True:
        for block_start in range(0, footprint_pages, block_pages):
            block_end = min(block_start + block_pages, footprint_pages)
            for _ in range(passes_per_block):
                for page_index in range(block_start, block_end):
                    yield from _flurry(
                        page_index, line_stride, write_fraction, instructions, rng
                    )


#: Registry used by the suite definitions.
GENERATORS = {
    "stream_sweep": stream_sweep,
    "pointer_chase": pointer_chase,
    "hot_cold": hot_cold,
    "phased_sweep": phased_sweep,
    "stencil_sweep": stencil_sweep,
    "random_mix": random_mix,
    "blocked_sweep": blocked_sweep,
}
