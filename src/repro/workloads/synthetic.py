"""Synthetic memory-access generators (the workload archetypes).

Every archetype is written once, as a *block* generator yielding
struct-of-arrays bursts (see :mod:`repro.workloads.chunks`); the
per-op :class:`repro.sim.cpu.MemoryOp` iterator the scalar engine and
external consumers use is :func:`ops_from_blocks` over the same blocks,
so both views emit the identical op sequence from the identical RNG draw
order.  The runner bounds the number of operations — generators are
infinite.  The archetypes are chosen so that the page-grain behaviours
the paper's mechanisms key off — per-page LLC-miss flurries, stable or
shifting leader/follower page orders, page re-visitation, TLB pressure —
appear with controllable intensity.  All randomness flows from the passed
:class:`repro.common.rng.DeterministicRng`.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, Iterator, Optional, Sequence

from repro.common.addr import CACHE_LINE_BYTES, LINES_PER_PAGE, PAGE_BYTES
from repro.common.rng import DeterministicRng
from repro.sim.cpu import MemoryOp
from repro.workloads.chunks import Block, ops_from_blocks

#: Base of the synthetic heap in each process's virtual space.
HEAP_BASE = 0x1000_0000_0000


def _page_va(page_index: int) -> int:
    return HEAP_BASE + page_index * PAGE_BYTES


#: Memoized block columns.  A flurry's vaddr column is a pure function
#: of ``(page_index, shape)`` and its instructions column of
#: ``(instructions, length)``; workloads revisit the same pages with the
#: same shapes constantly, so the lists are built once and shared.
#: Blocks are read-only downstream — the chunk coalescer and the per-op
#: view copy elements, never mutate — and the write column, the only
#: RNG-dependent one, is always freshly drawn.  The caches are cleared
#: when oversized so pathological sweeps (property tests) stay bounded.
_VADDR_CACHE: Dict = {}
_INSTR_CACHE: Dict = {}
_CACHE_LIMIT = 65536


# repro-hot
def _flurry_block(
    page_index: int,
    line_stride: int,
    write_fraction: float,
    instructions: int,
    rng: DeterministicRng,
    lines: Optional[Sequence[int]] = None,
) -> Block:
    """One burst of references inside one page, as parallel arrays.

    The write draws happen one per line in line order — the exact draw
    sequence the historical per-op generator used, so fast-forward by op
    count lands the RNG in a state that reproduces the same suffix.
    """
    if lines is None:
        key = (page_index, line_stride)
    elif type(lines) is range:
        # 4-tuples cannot collide with the 2-tuple stride keys.
        key = (page_index, lines.start, lines.stop, lines.step)
    else:
        key = None  # rng.sample shapes: unique per call, not cacheable
    vaddrs = _VADDR_CACHE.get(key) if key is not None else None
    if vaddrs is None:
        base = _page_va(page_index)
        indices = (
            lines if lines is not None else range(0, LINES_PER_PAGE, line_stride)
        )
        vaddrs = [base + line_index * CACHE_LINE_BYTES for line_index in indices]
        if key is not None:
            if len(_VADDR_CACHE) >= _CACHE_LIMIT:
                _VADDR_CACHE.clear()
            _VADDR_CACHE[key] = vaddrs
    random = rng.random
    writes = [random() < write_fraction for _ in vaddrs]
    ikey = (instructions, len(vaddrs))
    instr = _INSTR_CACHE.get(ikey)
    if instr is None:
        instr = [instructions] * len(vaddrs)
        if len(_INSTR_CACHE) >= _CACHE_LIMIT:
            _INSTR_CACHE.clear()
        _INSTR_CACHE[ikey] = instr
    return vaddrs, writes, instr


def _flurry(
    page_index: int,
    line_stride: int,
    write_fraction: float,
    instructions: int,
    rng: DeterministicRng,
    lines: Optional[Sequence[int]] = None,
) -> Iterator[MemoryOp]:
    """Per-op view of one :func:`_flurry_block` burst."""
    vaddrs, writes, instr = _flurry_block(
        page_index, line_stride, write_fraction, instructions, rng, lines=lines
    )
    for vaddr, write, instructions_before in zip(vaddrs, writes, instr):
        yield MemoryOp(vaddr, write, instructions_before)


def stream_sweep_blocks(
    rng: DeterministicRng,
    footprint_pages: int,
    arrays: int = 3,
    line_stride: int = 1,
    write_fraction: float = 0.3,
    instructions: int = 40,
) -> Iterator[Block]:
    """Sequential sweeps over several arrays in lockstep.

    Models lbm / STREAM / bwaves / libquantum-style kernels: page flurries
    arrive in a stable order (page ``i`` of array A, then of array B, ...),
    giving the PCT a perfectly learnable leader->follower structure and the
    TLB a steady stream of new pages.
    """
    arrays = max(1, min(arrays, footprint_pages))
    pages_per_array = footprint_pages // arrays
    bases = [a * pages_per_array for a in range(arrays)]
    while True:
        for position in range(pages_per_array):
            for base in bases:
                yield _flurry_block(
                    base + position, line_stride, write_fraction, instructions, rng
                )


def pointer_chase_blocks(
    rng: DeterministicRng,
    footprint_pages: int,
    lines_per_visit: int = 2,
    write_fraction: float = 0.1,
    instructions: int = 55,
) -> Iterator[Block]:
    """A fixed random tour over pages, few lines per visit.

    Models mcf / omnetpp / barnes-style linked-structure traversal: low
    spatial locality within a page and modest per-page miss counts, which
    starves prefetch-swap triggers (these benchmarks sit in Figure 10's
    "few prefetch swaps" group).
    """
    order = rng.permutation(footprint_pages)
    while True:
        for page_index in order:
            lines = rng.sample(range(LINES_PER_PAGE), min(lines_per_visit, LINES_PER_PAGE))
            yield _flurry_block(
                page_index, 1, write_fraction, instructions, rng, lines=lines
            )


def hot_cold_blocks(
    rng: DeterministicRng,
    footprint_pages: int,
    hot_fraction: float = 0.12,
    hot_probability: float = 0.8,
    flurry_lines: int = 20,
    write_fraction: float = 0.25,
    instructions: int = 40,
) -> Iterator[Block]:
    """A small hot set absorbing most flurries, a large cold tail.

    Models milc / MILCmk-style behaviour: hot pages are revisited with
    dense flurries (prefetch-swap material), cold pages are touched
    sparsely.
    """
    hot_pages = max(1, int(footprint_pages * hot_fraction))
    cold_lines = max(2, flurry_lines // 5)
    while True:
        if rng.random() < hot_probability:
            page_index = rng.zipf_index(hot_pages, skew=0.8)
            lines = range(0, min(flurry_lines, LINES_PER_PAGE))
        else:
            page_index = hot_pages + rng.randint(0, max(0, footprint_pages - hot_pages - 1))
            lines = range(0, cold_lines)
        yield _flurry_block(
            page_index, 1, write_fraction, instructions, rng, lines=lines
        )


def phased_sweep_blocks(
    rng: DeterministicRng,
    footprint_pages: int,
    line_stride: int = 1,
    write_fraction: float = 0.35,
    instructions: int = 40,
    pages_per_phase: int = 0,
) -> Iterator[Block]:
    """Sweeps whose page order is reshuffled every phase.

    Models GemsFDTD / fft / radix: pages still see dense flurries, but the
    follower of a page changes between phases, which degrades correlation
    prefetching accuracy (the effect behind GemsFDTD's 28.3% in Figure 9).
    """
    if pages_per_phase <= 0:
        pages_per_phase = footprint_pages
    while True:
        order = rng.permutation(footprint_pages)
        emitted = 0
        for page_index in order:
            yield _flurry_block(page_index, line_stride, write_fraction, instructions, rng)
            emitted += 1
            if emitted >= pages_per_phase:
                break


def stencil_sweep_blocks(
    rng: DeterministicRng,
    footprint_pages: int,
    arrays: int = 4,
    row_pages: int = 8,
    line_stride: int = 1,
    write_fraction: float = 0.3,
    instructions: int = 45,
    neighbour_probability: float = 0.2,
) -> Iterator[Block]:
    """Structured-grid sweeps with occasional neighbour-row touches.

    Models LULESH / oceanCon / miniFE / leslie3d: the main sweep produces
    stable, dense flurries (these kernels are bandwidth-bound streams at
    page granularity), and a minority of positions also touch a page
    ``row_pages`` away — the grid's other spatial dimension.
    """
    arrays = max(1, min(arrays, footprint_pages))
    pages_per_array = footprint_pages // arrays
    bases = [a * pages_per_array for a in range(arrays)]
    while True:
        for position in range(pages_per_array):
            for base in bases:
                page_index = base + position
                yield _flurry_block(
                    page_index, line_stride, write_fraction, instructions, rng
                )
                if rng.random() < neighbour_probability:
                    direction = row_pages if rng.random() < 0.5 else -row_pages
                    neighbour = position + direction
                    if 0 <= neighbour < pages_per_array:
                        lines = [rng.randint(0, LINES_PER_PAGE - 1)]
                        yield _flurry_block(
                            base + neighbour, 1, write_fraction, instructions, rng,
                            lines=lines,
                        )


def random_mix_blocks(
    rng: DeterministicRng,
    footprint_pages: int,
    streamed_fraction: float = 0.5,
    line_stride: int = 1,
    write_fraction: float = 0.3,
    instructions: int = 45,
) -> Iterator[Block]:
    """Interleaved streaming and scattered single-line references.

    Models AMGmk / luNCon / SNAP-style sparse kernels: a structured sweep
    carries the bulk of traffic while random gathers hit arbitrary pages.
    The sweep and the scatter own independent derived RNG streams, so
    pulling whole sweep flurries at once draws the identical per-stream
    sequences the op-at-a-time interleave drew.
    """
    sweep = ops_from_blocks(stream_sweep_blocks(
        rng.derive("sweep"), footprint_pages, arrays=2,
        line_stride=line_stride, write_fraction=write_fraction,
        instructions=instructions,
    ))
    scatter_rng = rng.derive("scatter")
    while True:
        if scatter_rng.random() < streamed_fraction:
            op = next(sweep)
            yield [op.vaddr], [op.is_write], [op.instructions_before]
        else:
            page_index = scatter_rng.randint(0, footprint_pages - 1)
            lines = [scatter_rng.randint(0, LINES_PER_PAGE - 1)]
            yield _flurry_block(
                page_index, 1, write_fraction, instructions, scatter_rng, lines=lines
            )


def blocked_sweep_blocks(
    rng: DeterministicRng,
    footprint_pages: int,
    block_pages: int = 32,
    passes_per_block: int = 2,
    line_stride: int = 1,
    write_fraction: float = 0.4,
    instructions: int = 35,
) -> Iterator[Block]:
    """Blocked computation revisiting each block several times.

    Models luCon / fft-style blocked kernels: a block's pages get repeated
    dense flurries (strong swap candidates), then the computation moves on.
    """
    block_pages = max(1, min(block_pages, footprint_pages))
    while True:
        for block_start in range(0, footprint_pages, block_pages):
            block_end = min(block_start + block_pages, footprint_pages)
            for _ in range(passes_per_block):
                for page_index in range(block_start, block_end):
                    yield _flurry_block(
                        page_index, line_stride, write_fraction, instructions, rng
                    )


def _per_op(block_generator: Callable[..., Iterator[Block]]) -> Callable[..., Iterator[MemoryOp]]:
    """Derive the per-op view of a block generator (one code path)."""

    @functools.wraps(block_generator)
    def per_op_generator(*args, **kwargs) -> Iterator[MemoryOp]:
        return ops_from_blocks(block_generator(*args, **kwargs))

    return per_op_generator


stream_sweep = _per_op(stream_sweep_blocks)
pointer_chase = _per_op(pointer_chase_blocks)
hot_cold = _per_op(hot_cold_blocks)
phased_sweep = _per_op(phased_sweep_blocks)
stencil_sweep = _per_op(stencil_sweep_blocks)
random_mix = _per_op(random_mix_blocks)
blocked_sweep = _per_op(blocked_sweep_blocks)


#: Registry used by the suite definitions (per-op view).
GENERATORS = {
    "stream_sweep": stream_sweep,
    "pointer_chase": pointer_chase,
    "hot_cold": hot_cold,
    "phased_sweep": phased_sweep,
    "stencil_sweep": stencil_sweep,
    "random_mix": random_mix,
    "blocked_sweep": blocked_sweep,
}

#: The block view of the same archetypes.  Generators registered only in
#: ``GENERATORS`` (external plugins) still work: the chunked stream falls
#: back to batching their per-op output (see ``ReplayStream``).
BLOCK_GENERATORS: Dict[str, Callable[..., Iterator[Block]]] = {
    "stream_sweep": stream_sweep_blocks,
    "pointer_chase": pointer_chase_blocks,
    "hot_cold": hot_cold_blocks,
    "phased_sweep": phased_sweep_blocks,
    "stencil_sweep": stencil_sweep_blocks,
    "random_mix": random_mix_blocks,
    "blocked_sweep": blocked_sweep_blocks,
}
