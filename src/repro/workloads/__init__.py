"""Workload synthesis (the Table III benchmarks, synthesised).

SPEC CPU2006, Splash-3, and CORAL binaries cannot run inside a pure-Python
simulator, so each benchmark is replaced by a generator reproducing its
*memory-access archetype* — streaming sweeps, pointer chasing, hot/cold
working sets, phase-changing flurries — with the Table III footprint
(scaled with the system).  See DESIGN.md Section 2 for the substitution
argument and :mod:`repro.workloads.suites` for the per-benchmark mapping.
"""

from repro.workloads.base import WorkloadSpec, footprint_pages_for
from repro.workloads.suites import (
    MIX_WORKLOADS,
    UNIQUE_WORKLOADS,
    all_workloads,
    workload_by_name,
)

__all__ = [
    "WorkloadSpec",
    "footprint_pages_for",
    "MIX_WORKLOADS",
    "UNIQUE_WORKLOADS",
    "all_workloads",
    "workload_by_name",
]
