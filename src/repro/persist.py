"""Hardened durable persistence: atomic writes, checksummed reads.

Before this module, five call sites hand-rolled the same temp + fsync +
``os.replace`` dance (checkpoints, bench documents, sweep results, the
experiment cache, the sweepd manifest) — and every one silently assumed
the filesystem never fails.  This module is the single hardened
implementation they all share:

* :func:`atomic_write_bytes` — the atomic write primitive.  A reader
  sees either the complete previous content or the complete new one,
  never a torn file; a failed write (ENOSPC, EIO, a failed fsync)
  raises :class:`repro.common.errors.PersistWriteError` with the old
  file intact and a remediation hint attached.
* :func:`write_json` / :func:`read_json` — checksummed JSON envelopes.
  The payload is written with an embedded ``__persist__`` stamp (format
  version + SHA-256 over the canonical payload encoding); the reader
  verifies and strips it, so bit-rot and lying-disk torn writes are
  *detected* instead of silently parsed.  Files written before this
  module (no stamp) still read fine and are reported as "legacy" by
  ``repro fsck``.
* storage-fault injection — every write consults the armed
  :class:`repro.faults.storage.StorageFaultInjector` (installed
  directly or via the ``REPRO_STORAGE_FAULTS`` environment hook), which
  deterministically injects ENOSPC/EIO/fsync failures, silently torn
  writes, and post-hoc bit-rot.  With nothing armed the overhead is one
  ``None`` check per write.

The checksum deliberately covers the *canonical* payload encoding
(``sort_keys``, compact separators), not the bytes on disk — so an
indented pretty-printed document (bench files) and a compact one
(manifests) verify through the same code path.
"""

from __future__ import annotations

import errno as errno_module
import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.common.errors import (
    CorruptPayloadError,
    PersistError,  # noqa: F401  (re-exported: callers catch the base)
    PersistWriteError,
)

#: The embedded checksum stamp's key inside persisted JSON objects.
PERSIST_KEY = "__persist__"

#: Bump on any incompatible change to the envelope layout.
PERSIST_FORMAT_VERSION = 1

#: Remediation hint attached to every corrupt-read error.
FSCK_HINT = (
    "run `python -m repro fsck --repair <dir>` to quarantine corrupt "
    "files and promote last-good generations"
)

_ERRNO_HINTS = {
    errno_module.ENOSPC: "free disk space (or point the output at a "
                         "larger volume) and retry",
    errno_module.EDQUOT: "raise the filesystem quota and retry",
    errno_module.EIO: "the device reported an I/O error; check the "
                      "volume's health before retrying",
    errno_module.EROFS: "the filesystem is read-only; remount or pick "
                        "a writable output directory",
    errno_module.EACCES: "fix the directory permissions and retry",
}

# -- storage-fault arming ----------------------------------------------------

#: The armed injector, or the unread-environment sentinel.
_UNRESOLVED = object()
_injector: object = _UNRESOLVED


def install_storage_faults(injector) -> None:
    """Arm *injector* (a StorageFaultInjector) for this process.

    Passing None disarms injection and suppresses the environment hook
    (tests use this to guarantee a clean slate).
    """
    global _injector
    _injector = injector


def reset_storage_faults() -> None:
    """Forget any armed injector and re-read the environment lazily."""
    global _injector
    _injector = _UNRESOLVED


def active_injector():
    """The armed injector, resolving ``REPRO_STORAGE_FAULTS`` on first use."""
    global _injector
    if _injector is _UNRESOLVED:
        from repro.faults.storage import (
            STORAGE_FAULTS_ENV,
            StorageFaultInjector,
            config_from_env,
        )

        value = os.environ.get(STORAGE_FAULTS_ENV, "")
        config = config_from_env(value) if value else None
        _injector = StorageFaultInjector(config) if config is not None else None
    return _injector


# -- the atomic write primitive ---------------------------------------------

def _write_hint(exc: OSError) -> str:
    return _ERRNO_HINTS.get(
        exc.errno or 0,
        "the previous file content is intact; retry once the storage "
        "condition clears",
    )


def _flip_bit(path: Path, bit_index: int) -> None:
    """Post-hoc bit-rot: flip one bit of the (already final) file."""
    byte_index, bit = divmod(bit_index, 8)
    with open(path, "r+b") as handle:
        handle.seek(byte_index)
        current = handle.read(1)
        if not current:
            return
        handle.seek(byte_index)
        handle.write(bytes([current[0] ^ (1 << bit)]))


def atomic_write_bytes(
    path: Union[str, Path],
    data: bytes,
    *,
    site: str = "file",
    fsync: bool = True,
) -> Path:
    """Write *data* to *path* atomically; returns the final path.

    The payload is assembled in a same-directory temp file, fsynced (so
    the rename cannot outrun the data on a crash), and moved into place
    with :func:`os.replace`.  OS-level failures raise
    :class:`PersistWriteError` with the previous content untouched.
    """
    path = Path(path)
    plan = None
    injector = active_injector()
    if injector is not None:
        plan = injector.plan_write(site, path.name, len(data))
        if plan.kind == "enospc":
            raise PersistWriteError(
                f"{site} write to {path} failed: "
                f"[Errno {errno_module.ENOSPC}] No space left on device "
                f"(injected)",
                path=path, site=site, errno=errno_module.ENOSPC,
                hint=_ERRNO_HINTS[errno_module.ENOSPC],
            )
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise PersistWriteError(
            f"{site} write to {path} failed creating its directory: {exc}",
            path=path, site=site, errno=exc.errno, hint=_write_hint(exc),
        ) from exc
    temp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    payload = data
    if plan is not None and plan.kind == "torn":
        # A lying disk: only a prefix persists, yet the caller sees
        # success.  Detection is the reader's (checksum's) job.
        payload = data[: plan.keep_bytes]
    try:
        try:
            with open(temp, "wb") as handle:
                handle.write(payload)
                handle.flush()
                if plan is not None and plan.kind == "eio":
                    raise OSError(
                        errno_module.EIO, "Input/output error (injected)"
                    )
                if fsync:
                    if plan is not None and plan.kind == "fsync":
                        raise OSError(
                            errno_module.EIO, "fsync failed (injected)"
                        )
                    os.fsync(handle.fileno())
            os.replace(temp, path)
        except OSError as exc:
            raise PersistWriteError(
                f"{site} write to {path} failed: {exc}",
                path=path, site=site, errno=exc.errno, hint=_write_hint(exc),
            ) from exc
    finally:
        if temp.exists():
            try:
                temp.unlink()
            except OSError:
                pass
    if plan is not None and plan.kind == "bitrot":
        _flip_bit(path, plan.flip_bit)
    return path


# -- checksummed JSON envelopes ---------------------------------------------

def payload_checksum(payload: Dict[str, object]) -> str:
    """SHA-256 over the canonical encoding of *payload* (stamp excluded)."""
    material = json.dumps(
        {k: v for k, v in payload.items() if k != PERSIST_KEY},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def write_json(
    path: Union[str, Path],
    payload: Dict[str, object],
    *,
    site: str = "json",
    indent: Optional[int] = None,
    backup: bool = False,
) -> Path:
    """Atomically write *payload* with an embedded checksum stamp.

    ``backup=True`` additionally preserves the previous file content as
    ``<name>.bak`` (a hard link where possible, else a copy) before the
    replace — the one-generation fallback manifests use to survive
    bit-rot in their primary.
    """
    path = Path(path)
    if not isinstance(payload, dict):
        raise TypeError(f"persisted payloads are JSON objects, got "
                        f"{type(payload).__name__}")
    envelope = dict(payload)
    envelope[PERSIST_KEY] = {
        "format": PERSIST_FORMAT_VERSION,
        "sha256": payload_checksum(payload),
    }
    if backup and path.exists():
        _keep_backup(path, site)
    data = json.dumps(envelope, indent=indent, sort_keys=True)
    if indent is not None:
        data += "\n"
    return atomic_write_bytes(path, data.encode("utf-8"), site=site)


def backup_path(path: Union[str, Path]) -> Path:
    """Where :func:`write_json` keeps a file's previous generation."""
    path = Path(path)
    return path.with_name(f"{path.name}.bak")


def _keep_backup(path: Path, site: str) -> None:
    target = backup_path(path)
    try:
        target.unlink()
    except FileNotFoundError:
        pass
    except OSError:
        return  # an unwritable backup must not block the primary write
    try:
        os.link(path, target)
    except OSError:
        try:
            target.write_bytes(path.read_bytes())
        except OSError:
            pass  # best-effort: losing the backup loses one fallback, not data


def verify_json_bytes(raw: bytes, path: Path, site: str) -> Dict[str, object]:
    """Validate one envelope's bytes; returns the payload sans stamp."""
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptPayloadError(
            f"{site} file {path} does not parse as JSON ({exc})",
            path=path, site=site, check="parse", hint=FSCK_HINT,
        ) from exc
    if not isinstance(document, dict):
        raise CorruptPayloadError(
            f"{site} file {path} holds a {type(document).__name__}, "
            f"not a JSON object",
            path=path, site=site, check="schema", hint=FSCK_HINT,
        )
    stamp = document.get(PERSIST_KEY)
    if stamp is None:
        # Legacy file from before the persist layer: readable, but there
        # is no integrity evidence.  fsck reports these as "legacy".
        return document
    if not isinstance(stamp, dict) or "sha256" not in stamp:
        raise CorruptPayloadError(
            f"{site} file {path} carries a malformed {PERSIST_KEY} stamp",
            path=path, site=site, check="stamp", hint=FSCK_HINT,
        )
    payload = {k: v for k, v in document.items() if k != PERSIST_KEY}
    digest = payload_checksum(payload)
    if digest != stamp.get("sha256"):
        raise CorruptPayloadError(
            f"{site} file {path} failed its checksum "
            f"(stamp {str(stamp.get('sha256'))[:12]}..., "
            f"content {digest[:12]}...): torn write or bit-rot",
            path=path, site=site, check="checksum", hint=FSCK_HINT,
        )
    return payload


def read_json(path: Union[str, Path], *, site: str = "json") -> Dict[str, object]:
    """Read and verify a checksummed JSON file; returns the bare payload.

    Raises :class:`FileNotFoundError` for a missing file (callers
    routinely probe), :class:`CorruptPayloadError` for anything
    unparseable or checksum-failing, and :class:`PersistError` for other
    OS-level read failures.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise
    except OSError as exc:
        raise PersistError(
            f"cannot read {site} file {path}: {exc}",
            path=path, site=site, hint=_write_hint(exc),
        ) from exc
    return verify_json_bytes(raw, path, site)


def read_json_or_none(
    path: Union[str, Path], *, site: str = "json"
) -> Optional[Dict[str, object]]:
    """Tolerant read: None for a missing, torn, or corrupt file."""
    try:
        return read_json(path, site=site)
    except (FileNotFoundError, PersistError):
        return None


def verify_file(path: Union[str, Path]) -> Tuple[str, str]:
    """Integrity verdict for one persisted JSON file (the fsck probe).

    Returns ``(status, detail)`` with status one of ``"ok"`` (stamped
    and verified), ``"legacy"`` (readable JSON, no stamp to verify),
    ``"corrupt"`` (unreadable, unparseable, or checksum-failing), or
    ``"missing"``.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return ("missing", "no such file")
    except OSError as exc:
        return ("corrupt", f"unreadable: {exc}")
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return ("corrupt", f"does not parse as JSON ({exc})")
    if not isinstance(document, dict):
        return ("corrupt", f"holds a {type(document).__name__}, not an object")
    if PERSIST_KEY not in document:
        return ("legacy", "no checksum stamp (pre-persist file)")
    try:
        verify_json_bytes(raw, path, "fsck")
    except CorruptPayloadError as exc:
        return ("corrupt", f"checksum/stamp failure ({exc.check})")
    return ("ok", "checksum verified")
