"""Deterministic fault injection and graceful degradation (ISSUE 3).

The package has three parts:

* :mod:`repro.faults.injector` — the :class:`FaultInjector`, which decides
  *when* something breaks.  Every decision is drawn from a named
  :class:`repro.common.rng.DeterministicRng` stream seeded by
  ``FaultConfig.fault_seed``, so a fault schedule is a pure function of the
  configuration and the (deterministic) access sequence.
* :mod:`repro.faults.recovery` — the :class:`FaultRecovery` wrapper the HMC
  places around :class:`repro.mem.main_memory.MainMemory`: bounded
  retry-with-backoff for transient faults and degraded (slow but correct)
  service when retries are exhausted or a read is uncorrectable.
* :mod:`repro.faults.profiles` — named :class:`FaultConfig` presets exposed
  on the CLI as ``--faults <profile>``.
* :mod:`repro.faults.chaos` — deterministic chaos hooks for the
  distributed sweep service (dropped/duplicated/reordered/stalled
  protocol messages, scripted worker kills and server restarts); see
  docs/SWEEP_SERVICE.md.

With ``FaultConfig.enabled`` False none of this is constructed and the
simulator's hot path is byte-identical to a build without the package.
"""

from repro.faults.chaos import ChaosConfig, FleetChaos
from repro.faults.injector import FaultInjector
from repro.faults.profiles import FAULT_PROFILES, resolve_profile
from repro.faults.recovery import FaultRecovery

__all__ = [
    "ChaosConfig",
    "FaultInjector",
    "FaultRecovery",
    "FleetChaos",
    "FAULT_PROFILES",
    "resolve_profile",
]
