"""Retry-with-backoff and degraded service around :class:`MainMemory`.

The HMC routes every demand line access through a :class:`FaultRecovery`
(see :meth:`repro.sim.hmc_base.HmcBase.mem_access`).  Transient faults are
retried with exponential backoff — each retry re-issues the access
``retry_backoff_cycles * 2^attempt`` cycles later, which is how injected
"device stalls" inflate latency.  When the retry budget is exhausted, or
the read is uncorrectable, the request is *degraded* instead of dropped:
it completes after ``recovery_read_cycles`` (modelling firmware-level ECC
heroics / a rebuild from redundancy), so the simulated program always makes
progress and page-conservation invariants never see a lost access.

Uncorrectable reads additionally call the ``on_uncorrectable`` hook, which
PageSeer uses to quarantine the failed NVM frame and rescue-swap its data
into DRAM (see ``repro.core.hmc``).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.config import FaultConfig
from repro.common.errors import TransientFaultError, UnrecoverableFaultError
from repro.common.stats import StatsRegistry
from repro.common.timeline import Cycles
from repro.faults.injector import FaultInjector
from repro.mem.device import AccessResult
from repro.mem.main_memory import MainMemory


class FaultRecovery:
    """Bounded retry + degraded-service policy for demand line accesses."""

    def __init__(
        self,
        config: FaultConfig,
        injector: FaultInjector,
        memory: MainMemory,
        stats: StatsRegistry,
    ):
        self.config = config
        self.injector = injector
        self.memory = memory
        self.stats = stats
        #: Hook called as ``on_uncorrectable(now, line_spa)`` when a demand
        #: read hits an uncorrectable error, *before* the degraded result is
        #: returned.  PageSeer installs its quarantine+rescue handler here.
        self.on_uncorrectable: Optional[Callable[[Cycles, int], None]] = None

    def access(
        self, now: Cycles, line_spa: int, is_write: bool, bulk: bool = False
    ) -> AccessResult:
        """Access one line, absorbing any injected fault.

        Never raises: the worst case is a degraded (slow) completion.
        """
        attempt = 0
        issue = now
        while True:
            try:
                result = self.memory.access(issue, line_spa, is_write, bulk)
                if attempt:
                    # The caller's request has been waiting since `now`;
                    # report the full interval, not just the last attempt.
                    result = AccessResult(
                        start=now,
                        finish=result.finish,
                        row_hit=result.row_hit,
                        queue_delay=result.queue_delay,
                    )
                return result
            except TransientFaultError:
                if attempt >= self.config.max_retries:
                    self.stats.add("faults/retries_exhausted")
                    return self._degraded(now, issue)
                backoff = self.config.retry_backoff_cycles << attempt
                self.stats.add("faults/retries")
                self.stats.add("faults/retry_backoff_cycles", backoff)
                issue += backoff
                attempt += 1
            except UnrecoverableFaultError:
                self.stats.add("faults/uncorrectable_services")
                if self.on_uncorrectable is not None:
                    self.on_uncorrectable(issue, line_spa)
                return self._degraded(now, issue)

    def _degraded(self, start: Cycles, issue: Cycles) -> AccessResult:
        """Complete the access slowly but correctly (ECC heroics)."""
        self.stats.add("faults/degraded_services")
        finish = issue + self.config.recovery_read_cycles
        return AccessResult(start=start, finish=finish, row_hit=False, queue_delay=0)
