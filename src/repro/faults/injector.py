"""The fault injector: seed-driven decisions about what breaks, and when.

The injector sits inside the two :class:`repro.mem.device.MemoryDevice`
instances and is consulted once per access / per bulk transfer.  It raises
:class:`repro.common.errors.TransientFaultError` or
:class:`repro.common.errors.UnrecoverableFaultError` at the fault site; the
recovery layers above (``repro.faults.recovery``, the Swap Driver) decide
what happens next.

Determinism: each fault family draws from its own named
:class:`DeterministicRng` stream, so the schedule depends only on
``fault_seed`` and the access sequence — never on wall time, hashing order,
or the simulation seed.  Because the simulator itself is deterministic,
re-running the same configuration injects the identical faults and produces
identical stats.

Addressing note: devices work in *device-local* line numbers (the NVM
device sees lines ``[0, nvm_lines)``), so the injector's bad-page set is in
NVM-local page space.  The recovery layer converts back to system physical
addresses when it quarantines.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.common.addr import LINES_PER_PAGE
from repro.common.config import FaultConfig
from repro.common.errors import TransientFaultError, UnrecoverableFaultError
from repro.common.rng import DeterministicRng
from repro.common.stats import StatsRegistry
from repro.common.timeline import Cycles

#: Literal per-device stats-key tables (auditable by the RL002 lint rule).
_TRANSIENT_KEYS = {
    "dram": "faults/transient_dram",
    "nvm": "faults/transient_nvm",
}
_TRANSFER_KEYS = {
    "dram": "faults/transfer_dram",
    "nvm": "faults/transfer_nvm",
}


class FaultInjector:
    """Decides, deterministically, which accesses and transfers fault."""

    def __init__(self, config: FaultConfig, stats: StatsRegistry):
        self.config = config
        self.stats = stats
        #: Rescue/scrub operations run with injection suppressed (modelling
        #: the controller's firmware-level ECC rebuild path).
        self._suppress_depth = 0
        #: NVM-local pages that have gone bad -> cycle of first failure.
        #: Uncorrectable errors are sticky: once a page fails, every later
        #: unsuppressed read of it fails too.
        self._bad_pages: Dict[int, Cycles] = {}
        self._access_rng = {
            "dram": DeterministicRng("fault/access/dram", config.fault_seed),
            "nvm": DeterministicRng("fault/access/nvm", config.fault_seed),
        }
        self._transfer_rng = {
            "dram": DeterministicRng("fault/transfer/dram", config.fault_seed),
            "nvm": DeterministicRng("fault/transfer/nvm", config.fault_seed),
        }
        self._uncorrectable_rng = DeterministicRng(
            "fault/uncorrectable", config.fault_seed
        )

    # -- suppression ---------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._suppress_depth == 0

    @contextmanager
    def suppressed(self) -> Iterator[None]:
        """Run a block with no injection (recovery's own transfers)."""
        self._suppress_depth += 1
        try:
            yield
        finally:
            self._suppress_depth -= 1

    # -- bad-page bookkeeping ------------------------------------------------
    def mark_bad(self, local_page: int, cycle: Cycles = 0) -> None:
        """Force an NVM-local page bad (recovery tests use this directly)."""
        if local_page not in self._bad_pages:
            self._bad_pages[local_page] = cycle
            self.stats.add("faults/bad_pages")

    def is_bad_page(self, local_page: int) -> bool:
        return local_page in self._bad_pages

    @property
    def bad_pages(self) -> list:
        return sorted(self._bad_pages)

    # -- injection decision points ------------------------------------------
    def check_access(
        self, device: str, now: Cycles, line_number: int, is_write: bool
    ) -> None:
        """Called by the device once per line access; raises on a fault."""
        if self._suppress_depth:
            return
        if device == "nvm" and not is_write:
            page = line_number // LINES_PER_PAGE
            if page in self._bad_pages:
                self.stats.add("faults/uncorrectable_reads")
                raise UnrecoverableFaultError(
                    "NVM uncorrectable read",
                    device=device,
                    line=line_number,
                    cycle=now,
                )
            rate = self.config.nvm_uncorrectable_rate
            if rate > 0.0 and self._uncorrectable_rng.random() < rate:
                self.mark_bad(page, now)
                self.stats.add("faults/uncorrectable_reads")
                raise UnrecoverableFaultError(
                    "NVM uncorrectable read",
                    device=device,
                    line=line_number,
                    cycle=now,
                )
        rate = self.config.transient_rate
        if rate > 0.0 and self._access_rng[device].random() < rate:
            self.stats.add(_TRANSIENT_KEYS[device])
            raise TransientFaultError(
                "transient device fault",
                device=device,
                line=line_number,
                cycle=now,
            )

    def check_transfer(
        self,
        device: str,
        now: Cycles,
        first_line: int,
        line_count: int,
        is_write: bool,
    ) -> Optional[int]:
        """Called by the device once per bulk transfer.

        Raises :class:`UnrecoverableFaultError` when a bulk *read* covers a
        known-bad NVM page (the swap machinery cannot move data it cannot
        read).  Otherwise draws the mid-transfer failure: returns the number
        of lines the device will manage to move before dying, or None for a
        clean transfer.  The device raises the
        :class:`TransientFaultError` itself once that budget is consumed,
        so the partial work still occupies banks and buses.
        """
        if self._suppress_depth:
            return None
        if device == "nvm" and not is_write:
            first_page = first_line // LINES_PER_PAGE
            last_page = (first_line + line_count - 1) // LINES_PER_PAGE
            for page in range(first_page, last_page + 1):
                if page in self._bad_pages:
                    self.stats.add("faults/uncorrectable_reads")
                    raise UnrecoverableFaultError(
                        "bulk read covers an uncorrectable NVM page",
                        device=device,
                        line=page * LINES_PER_PAGE,
                        cycle=now,
                    )
        rate = self.config.transfer_fault_rate
        if rate > 0.0:
            rng = self._transfer_rng[device]
            if rng.random() < rate:
                self.stats.add(_TRANSFER_KEYS[device])
                return int(line_count * rng.random())
        return None
