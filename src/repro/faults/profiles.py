"""Named fault profiles, exposed on the CLI as ``--faults <profile>``.

Rates are chosen so that even ``storm`` leaves a scaled run able to make
progress: the point is to exercise every recovery path (retry, abort,
quarantine, rescue, degraded service, worker retry/salvage), not to stop
the simulated machine.  All profiles keep ``fault_seed`` at 0; the CLI's
``--fault-seed`` rebinds it per run.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.common.config import FaultConfig
from repro.common.errors import ConfigError

FAULT_PROFILES = {
    # Explicitly requesting "off" is the same as not passing --faults.
    "off": FaultConfig(),
    # Occasional transient device glitches: retry/backoff territory.
    "transient": FaultConfig(
        enabled=True,
        transient_rate=0.002,
        transfer_fault_rate=0.02,
    ),
    # NVM wear-out: sticky uncorrectable reads, quarantine + rescue swaps.
    "uncorrectable": FaultConfig(
        enabled=True,
        nvm_uncorrectable_rate=0.0005,
    ),
    # Everything at once, plus flaky sweep workers.
    "storm": FaultConfig(
        enabled=True,
        nvm_uncorrectable_rate=0.0005,
        transient_rate=0.005,
        transfer_fault_rate=0.05,
        worker_crash_rate=0.4,
        worker_stall_rate=0.2,
        worker_stall_seconds=0.05,
    ),
}


def resolve_profile(name: str, fault_seed: int = 0) -> Optional[FaultConfig]:
    """Return the named profile rebased on *fault_seed*; None for "off"."""
    try:
        profile = FAULT_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_PROFILES))
        raise ConfigError(f"unknown fault profile {name!r}; pick from {known}")
    if not profile.enabled:
        return None
    return replace(profile, fault_seed=fault_seed)
