"""Deterministic storage-fault injection for the persistence layer.

PRs 3 and 8 hardened two of the three failure legs — device faults and
process/worker crashes.  This module is the third: the *filesystem* as a
failure domain.  Every durable write this project makes goes through
:mod:`repro.persist`, and the injector plugs in underneath it, modelling
the five storage failures that actually happen in production:

* ``enospc`` — the write fails with ``ENOSPC`` (disk full) before any
  byte lands.  The atomic discipline keeps the previous file intact.
* ``eio`` — the write fails with ``EIO`` (device error) mid-stream.
* ``fsync`` — the data is written but the ``fsync`` fails: the caller
  learns durability was NOT achieved and must treat the write as failed.
* ``torn`` — the nasty one: the write *appears* to succeed but only a
  prefix of the payload actually persisted (a lying disk, or a crash
  after the rename persisted but before the data did).  Readers see a
  truncated file with no error at write time — exactly what checksums
  and generational fallback exist to catch.
* ``bitrot`` — post-hoc corruption: one bit of the final file flips
  silently after a successful write (media decay, a row-hammered page
  cache).  Again only detectable at read time.

Every decision is drawn from a named :class:`DeterministicRng` stream
seeded by ``storage_seed`` and keyed by the persistence *site* and a
per-site write counter, so a fault schedule is a pure function of the
configuration and the write sequence — rerunning a chaos sweep replays
the identical storm.

Arming mirrors the device-fault profiles of PR 3: ``--storage-faults
<profile>`` on the CLI, or the ``REPRO_STORAGE_FAULTS=<profile>:<seed>``
environment hook that forked sweep workers inherit (see
:func:`config_from_env`).  With no injector armed, :mod:`repro.persist`
costs one ``None`` check per write.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng

#: Environment hook: ``<profile>`` or ``<profile>:<seed>``.  Read once
#: per process by :mod:`repro.persist`; forked pool/fleet workers
#: inherit it, which is how a chaos sweep storms every process.
STORAGE_FAULTS_ENV = "REPRO_STORAGE_FAULTS"

#: Injected fault kinds, in the order the per-write draws consume them.
FAULT_KINDS = ("enospc", "eio", "fsync", "torn", "bitrot")


@dataclasses.dataclass(frozen=True)
class StorageFaultConfig:
    """What breaks in the storage layer, and how often.

    All rates are per-write probabilities.  ``torn`` and ``bitrot`` are
    *silent* (the writer sees success); ``enospc``/``eio``/``fsync``
    raise :class:`repro.common.errors.PersistWriteError` at the write
    site.  ``torn_keep_fraction_max`` bounds how much of a torn payload
    survives: the persisted prefix length is drawn uniformly from
    ``[0, max_fraction * len(payload)]``.
    """

    enabled: bool = False
    #: Seed for every storage-fault RNG stream (independent of both the
    #: simulation seed and the device-fault seed).
    storage_seed: int = 0
    enospc_rate: float = 0.0
    eio_rate: float = 0.0
    fsync_fail_rate: float = 0.0
    torn_write_rate: float = 0.0
    bitrot_rate: float = 0.0
    torn_keep_fraction_max: float = 0.9

    def __post_init__(self) -> None:
        for label, rate in (
            ("enospc_rate", self.enospc_rate),
            ("eio_rate", self.eio_rate),
            ("fsync_fail_rate", self.fsync_fail_rate),
            ("torn_write_rate", self.torn_write_rate),
            ("bitrot_rate", self.bitrot_rate),
            ("torn_keep_fraction_max", self.torn_keep_fraction_max),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{label} must be within [0, 1], got {rate}")

    @property
    def active(self) -> bool:
        return self.enabled and any(
            rate > 0.0
            for rate in (
                self.enospc_rate, self.eio_rate, self.fsync_fail_rate,
                self.torn_write_rate, self.bitrot_rate,
            )
        )


STORAGE_PROFILES: Dict[str, StorageFaultConfig] = {
    # Explicitly requesting "off" is the same as not passing the flag.
    "off": StorageFaultConfig(),
    # Disk-full territory: writes fail cleanly, old state stays intact.
    "enospc": StorageFaultConfig(enabled=True, enospc_rate=0.25),
    # Flaky device: hard I/O errors plus failed fsyncs.
    "eio": StorageFaultConfig(
        enabled=True, eio_rate=0.15, fsync_fail_rate=0.1,
    ),
    # Lying disks: silently truncated payloads that checksums must catch.
    "torn": StorageFaultConfig(enabled=True, torn_write_rate=0.25),
    # Media decay: single flipped bits in files that were written fine.
    "bitrot": StorageFaultConfig(enabled=True, bitrot_rate=0.25),
    # Everything at once; rates tuned so a checkpointed sweep still
    # makes forward progress (the point is to exercise every recovery
    # path, not to wedge the machine).
    "storm": StorageFaultConfig(
        enabled=True,
        enospc_rate=0.1,
        eio_rate=0.05,
        fsync_fail_rate=0.05,
        torn_write_rate=0.1,
        bitrot_rate=0.1,
    ),
}


def resolve_storage_profile(
    name: str, storage_seed: int = 0
) -> Optional[StorageFaultConfig]:
    """Return the named profile rebased on *storage_seed*; None for "off"."""
    try:
        profile = STORAGE_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(STORAGE_PROFILES))
        raise ConfigError(
            f"unknown storage-fault profile {name!r}; pick from {known}"
        )
    if not profile.enabled:
        return None
    return dataclasses.replace(profile, storage_seed=storage_seed)


def config_to_env(faults: Optional[StorageFaultConfig], profile: str) -> str:
    """The ``REPRO_STORAGE_FAULTS`` value arming *profile* in children."""
    if faults is None:
        return "off"
    return f"{profile}:{faults.storage_seed}"


def config_from_env(value: str) -> Optional[StorageFaultConfig]:
    """Parse a ``REPRO_STORAGE_FAULTS`` value (``profile[:seed]``)."""
    value = value.strip()
    if not value:
        return None
    profile, _, seed_text = value.partition(":")
    seed = 0
    if seed_text:
        try:
            seed = int(seed_text)
        except ValueError:
            raise ConfigError(
                f"{STORAGE_FAULTS_ENV}={value!r}: seed {seed_text!r} is not "
                f"an integer (expected <profile> or <profile>:<seed>)"
            )
    return resolve_storage_profile(profile, storage_seed=seed)


@dataclasses.dataclass(frozen=True)
class WritePlan:
    """One write's injected fate, decided before any byte lands.

    ``kind`` is None (healthy) or one of :data:`FAULT_KINDS`.  For
    ``torn``, ``keep_bytes`` is how much of the payload persists; for
    ``bitrot``, ``flip_bit`` is the absolute bit index to flip in the
    final file.
    """

    kind: Optional[str] = None
    keep_bytes: int = 0
    flip_bit: int = 0


class StorageFaultInjector:
    """Draws a deterministic :class:`WritePlan` for every persist write.

    One injector serves one process; the per-``site`` write counters
    make the schedule a function of each site's write *sequence*, so two
    processes writing different sites never perturb each other's draws.
    """

    def __init__(self, faults: StorageFaultConfig):
        self.config = faults
        #: site -> writes planned so far (the RNG stream discriminator).
        self._counts: Dict[str, int] = {}
        #: Every injected fault: (site, file name, kind) in plan order.
        self.injected: List[Tuple[str, str, str]] = []

    def counters(self) -> Dict[str, int]:
        """Injected-fault totals by kind (observability, test asserts)."""
        out = {kind: 0 for kind in FAULT_KINDS}
        for _, _, kind in self.injected:
            out[kind] += 1
        return out

    def plan_write(self, site: str, name: str, nbytes: int) -> WritePlan:
        """Decide this write's fate; advances the site's schedule."""
        faults = self.config
        if not faults.active:
            return WritePlan()
        sequence = self._counts.get(site, 0)
        self._counts[site] = sequence + 1
        rng = DeterministicRng(
            f"storage/{site}/{sequence}", faults.storage_seed
        )
        # One draw per fault class, always consumed in FAULT_KINDS order
        # so a profile change re-rates without re-shuffling the schedule.
        draws = {kind: rng.random() for kind in FAULT_KINDS}
        plan = WritePlan()
        if draws["enospc"] < faults.enospc_rate:
            plan = WritePlan(kind="enospc")
        elif draws["eio"] < faults.eio_rate:
            plan = WritePlan(kind="eio")
        elif draws["fsync"] < faults.fsync_fail_rate:
            plan = WritePlan(kind="fsync")
        elif draws["torn"] < faults.torn_write_rate:
            keep_max = max(0, int(nbytes * faults.torn_keep_fraction_max))
            plan = WritePlan(kind="torn", keep_bytes=rng.randint(0, keep_max))
        elif draws["bitrot"] < faults.bitrot_rate and nbytes > 0:
            plan = WritePlan(
                kind="bitrot", flip_bit=rng.randint(0, nbytes * 8 - 1)
            )
        if plan.kind is not None:
            self.injected.append((site, name, plan.kind))
        return plan
