"""Deterministic chaos hooks for the distributed sweep service.

Extends the PR-3 fault-injection philosophy — *every failure is a pure
function of a seed* — from the simulated machine to the sweep
infrastructure itself.  Two layers:

* :class:`ChaosConfig` — message-level chaos applied inside the
  ``sweepd`` server's protocol endpoint: frames are dropped, duplicated,
  reordered, or preceded by a stall, each decision drawn from a named
  :class:`repro.common.rng.DeterministicRng` stream seeded by
  ``chaos_seed``.  The *schedule* of injected trouble is reproducible
  given the same message sequence; the service's correctness contract is
  that aggregated results are bit-identical regardless.
* :class:`FleetChaos` — a process-level script executed by the local
  fleet driver (``repro sweep --distributed``): SIGKILL worker *i* the
  moment it is observed simulating past a step threshold (guaranteeing a
  mid-job kill with a checkpoint behind it), and/or SIGKILL + relaunch
  the server itself once N results have been aggregated.

Neither layer can change simulation output: chaos shakes the transport
and the processes, and the exactly-once aggregation discipline
(deterministic job ids, idempotent handlers, digest-checked result
dedupe) is what the chaos test matrix pins.  See docs/SWEEP_SERVICE.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class ChaosConfig:
    """Message-level chaos knobs for the ``sweepd`` protocol endpoint."""

    enabled: bool = False
    #: Seed for every chaos RNG stream (independent of simulation and
    #: fault seeds so chaos schedules can be varied per run).
    chaos_seed: int = 0
    #: Probability a frame is silently dropped (the peer's retry/timeout
    #: machinery must recover it).
    drop_rate: float = 0.0
    #: Probability a frame is delivered twice (handlers must be
    #: idempotent; duplicate results must be discarded, not re-stored).
    duplicate_rate: float = 0.0
    #: Probability two adjacent frames in a batch swap order.
    reorder_rate: float = 0.0
    #: Probability a batch is preceded by a ``stall_seconds`` sleep,
    #: emulating a stalled socket (clients see RPC timeouts and retry).
    stall_rate: float = 0.0
    stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        for label, rate in (
            ("drop_rate", self.drop_rate),
            ("duplicate_rate", self.duplicate_rate),
            ("reorder_rate", self.reorder_rate),
            ("stall_rate", self.stall_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{label} must be within [0, 1], got {rate}")
        if self.stall_seconds < 0:
            raise ConfigError("stall_seconds must be non-negative")

    @property
    def active(self) -> bool:
        return self.enabled and (
            self.drop_rate > 0.0
            or self.duplicate_rate > 0.0
            or self.reorder_rate > 0.0
            or self.stall_rate > 0.0
        )


@dataclass(frozen=True)
class FleetChaos:
    """Scripted process-level chaos for the local fleet driver.

    ``kill_worker_mid_job`` maps a worker *index* to a simulated-step
    threshold: the fleet SIGKILLs that worker the first time a status
    poll shows it heartbeating a job at or past the threshold — i.e.
    provably mid-simulation, after at least one heartbeat.  Each entry
    fires once; the supervision loop then relaunches a replacement, and
    the orphaned lease expires and is reclaimed.

    ``restart_server_after_results`` SIGKILLs the server process (no
    shutdown courtesy) once that many results have been aggregated, then
    starts a fresh server on the same root and address.  The restarted
    server must resume from its persisted manifest with zero lost and
    zero duplicated results.
    """

    kill_worker_mid_job: Dict[int, int] = field(default_factory=dict)
    restart_server_after_results: Optional[int] = None

    @property
    def active(self) -> bool:
        return bool(self.kill_worker_mid_job) or (
            self.restart_server_after_results is not None
        )
