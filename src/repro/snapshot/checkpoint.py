"""Checkpoint files: atomic, versioned, checksummed system snapshots.

File layout (all little pieces are validated on load, in order)::

    REPRO-CKPT v1\\n                  magic + format version, ASCII
    {json header}\\n                  one line of metadata
    <zlib-compressed pickle payload>  the System object graph

The header records the format version again (the magic is for ``file``,
the header for programs), a SHA-256 checksum and byte count of the
compressed payload, and enough run context (scheme, workload, scale,
seed, phase, progress) for ``repro resume`` to describe what it is about
to continue without unpickling anything.

Writes are crash-safe: the file goes through
:func:`repro.persist.atomic_write_bytes` (same-directory temp, fsync,
:func:`os.replace`), so a reader either sees the complete old checkpoint
or the complete new one — never a torn file.  Any validation failure on
load raises :class:`repro.common.errors.CorruptCheckpointError` naming
the file, the failed check (magic/version/header/truncation/checksum/
payload), and the ``repro fsck`` remediation.

Rolling checkpoints are *generational*: before ``latest.ckpt`` is
replaced, its previous content is preserved as ``gen-<n>.ckpt`` (last N
kept).  :func:`load_checkpoint_with_fallback` walks latest-then-newest-
generation and restores the first file that verifies, so one corrupted
``latest.ckpt`` (bit-rot, a lying disk) costs a few thousand re-executed
ops — not the run.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro import persist
from repro.common.errors import CheckpointError, CorruptCheckpointError
from repro.snapshot import codec

#: Bump on any incompatible change to the payload encoding or header.
CHECKPOINT_FORMAT_VERSION = 1

MAGIC = b"REPRO-CKPT v1\n"

#: Conventional file name for the rolling checkpoint of one run.
LATEST_NAME = "latest.ckpt"

#: Preserved previous generations of ``latest.ckpt`` (newest = highest n).
GENERATION_RE = re.compile(r"^gen-(\d{8})\.ckpt$")

#: Generations of ``latest.ckpt`` preserved by default (beyond latest).
DEFAULT_KEEP_GENERATIONS = 2


@contextmanager
def quiesced(system) -> Iterator[None]:
    """Detach the system's process-local hooks for the pickle window.

    The sanitizer wraps ``hmc.handle_request`` (and HPT event listeners)
    in closures, and an armed :class:`repro.snapshot.hooks.Checkpointer`
    holds signal state and open deadlines — none of which belong in a
    checkpoint.  Both are detached around serialization and restored
    before the simulation takes another step.
    """
    checker = system.checker
    checkpointer = system.checkpointer
    system.checkpointer = None
    if checker is not None:
        checker.snapshot_detach()
    try:
        yield
    finally:
        if checker is not None:
            checker.snapshot_reattach()
        system.checkpointer = checkpointer


def _header_for(system, payload: bytes) -> Dict[str, object]:
    progress = system.progress
    return {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "checksum_sha256": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
        "scheme": system.scheme,
        "workload": system.workload.name,
        "scale": system.scale,
        "seed": system.config.seed,
        "cores": len(system.cores),
        "steps_total": system.steps_total,
        "phase": None if progress is None else progress.phase,
        "ops_executed": [core.ops_executed for core in system.cores],
        "check_level": system.config.check.level,
        "faults_enabled": system.config.faults.enabled,
    }


def save_checkpoint(
    system,
    path: Union[str, Path],
    *,
    keep_generations: int = 0,
) -> Path:
    """Serialize *system* to *path* atomically; returns the final path.

    ``keep_generations > 0`` first preserves the existing file content
    as the next ``gen-<n>.ckpt`` (pruned to the newest N), so a later
    corruption of *path* can fall back to a verified older state.
    Storage failures surface as
    :class:`repro.common.errors.PersistWriteError`; the previous file
    content is intact when they do.
    """
    with quiesced(system):
        payload = zlib.compress(codec.dumps(system), 6)
    header = _header_for(system, payload)
    path = Path(path)
    if keep_generations > 0:
        rotate_generations(path, keep_generations)
    blob = (
        MAGIC
        + json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
        + b"\n"
        + payload
    )
    return persist.atomic_write_bytes(path, blob, site="checkpoint")


def rotate_generations(path: Path, keep: int) -> Optional[Path]:
    """Preserve *path*'s current content as the next generation file.

    Best-effort by design: rotation failure (quota, permissions) must
    never block the new checkpoint — it only narrows the fallback
    window.  Returns the generation path written, or None.
    """
    path = Path(path)
    if keep <= 0 or not path.exists():
        return None
    existing = generation_files(path.parent)
    next_number = 1
    if existing:
        next_number = (
            int(GENERATION_RE.match(existing[-1].name).group(1)) + 1
        )
    target = path.parent / f"gen-{next_number:08d}.ckpt"
    try:
        os.link(path, target)
    except OSError:
        # Cross-device fallback: the source bytes are an already-stamped
        # checkpoint, and a torn copy only disqualifies this generation.
        try:
            target.write_bytes(path.read_bytes())  # repro-lint: disable=RL007
        except OSError:
            return None
    # Prune: the newest ``keep`` generations survive (plus latest itself).
    for stale in generation_files(path.parent)[:-keep]:
        try:
            stale.unlink()
        except OSError:
            pass
    return target


def generation_files(directory: Union[str, Path]) -> List[Path]:
    """The preserved generations under *directory*, oldest first."""
    directory = Path(directory)
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    return [
        directory / name for name in sorted(names) if GENERATION_RE.match(name)
    ]


def _split(raw: bytes, path: Path):
    if not raw.startswith(MAGIC[: len(b"REPRO-CKPT")]):
        raise CorruptCheckpointError(
            f"{path}: not a repro checkpoint (bad magic)",
            path=path, check="magic",
        )
    if not raw.startswith(MAGIC):
        found = raw.split(b"\n", 1)[0].decode("ascii", "replace")
        raise CorruptCheckpointError(
            f"{path}: unsupported checkpoint format {found!r} "
            f"(this build reads {MAGIC.decode().strip()!r})",
            path=path, check="version",
            hint="run the build that wrote this checkpoint, or restart "
                 "the run fresh",
        )
    rest = raw[len(MAGIC):]
    newline = rest.find(b"\n")
    if newline < 0:
        raise CorruptCheckpointError(
            f"{path}: truncated checkpoint (no header line)",
            path=path, check="truncation",
        )
    try:
        header = json.loads(rest[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptCheckpointError(
            f"{path}: unreadable header ({exc})", path=path, check="header"
        ) from exc
    if not isinstance(header, dict):
        raise CorruptCheckpointError(
            f"{path}: header holds a {type(header).__name__}, not an object",
            path=path, check="header",
        )
    return header, rest[newline + 1:]


def read_checkpoint_header(path: Union[str, Path]) -> Dict[str, object]:
    """Return the validated metadata header without unpickling the state."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    header, payload = _split(raw, path)
    _validate(header, payload, path)
    return header


def _validate(header: Dict[str, object], payload: bytes, path: Path) -> None:
    version = header.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CorruptCheckpointError(
            f"{path}: checkpoint format version {version} is not supported "
            f"(this build reads version {CHECKPOINT_FORMAT_VERSION})",
            path=path, check="version",
            hint="run the build that wrote this checkpoint, or restart "
                 "the run fresh",
        )
    expected_bytes = header.get("payload_bytes")
    if expected_bytes != len(payload):
        raise CorruptCheckpointError(
            f"{path}: truncated checkpoint "
            f"(header promises {expected_bytes} payload bytes, found {len(payload)})",
            path=path, check="truncation",
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("checksum_sha256"):
        raise CorruptCheckpointError(
            f"{path}: checksum mismatch (file corrupt or edited): "
            f"header {header.get('checksum_sha256')}, payload {digest}",
            path=path, check="checksum",
        )


def load_checkpoint(path: Union[str, Path]):
    """Restore a :class:`repro.sim.system.System` from *path*.

    The restored system has its sanitizer hooks re-attached and no
    checkpointer armed; call :meth:`System.resume_run` to continue the
    interrupted run to completion.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    header, payload = _split(raw, path)
    _validate(header, payload, path)
    try:
        blob = zlib.decompress(payload)
    except zlib.error as exc:
        raise CorruptCheckpointError(
            f"{path}: payload does not decompress ({exc})",
            path=path, check="payload",
        ) from exc
    try:
        system = codec.loads(blob)
    except Exception as exc:  # unpickling raises anything the payload says
        raise CorruptCheckpointError(
            f"{path}: payload does not unpickle ({type(exc).__name__}: {exc})",
            path=path, check="payload",
        ) from exc

    from repro.sim.system import System

    if not isinstance(system, System):
        raise CorruptCheckpointError(
            f"{path}: payload is a {type(system).__name__}, not a System",
            path=path, check="payload",
        )
    system.checkpointer = None
    if system.checker is not None:
        system.checker.snapshot_reattach()
    return system


def verify_checkpoint(path: Union[str, Path]) -> Tuple[str, str]:
    """Integrity-probe one checkpoint file without unpickling anything.

    Returns ``(status, detail)`` where status is ``"ok"``, ``"corrupt"``,
    or ``"missing"`` — the checkpoint leg of ``repro fsck``.  The probe
    validates magic, header, payload length, checksum, and that the
    payload decompresses; it deliberately never calls ``codec.loads``
    (fsck must be safe to run on untrusted directories).
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return "missing", "no such file"
    except OSError as exc:
        return "missing", f"unreadable: {exc}"
    try:
        header, payload = _split(raw, path)
        _validate(header, payload, path)
        zlib.decompress(payload)
    except CorruptCheckpointError as exc:
        return "corrupt", f"failed check: {exc.check}"
    except zlib.error as exc:
        return "corrupt", f"failed check: payload ({exc})"
    return "ok", f"{len(raw)} bytes, step {sum(header.get('ops_executed') or [])}"


def load_checkpoint_with_fallback(directory: Union[str, Path]):
    """Restore the newest verifiable checkpoint under *directory*.

    Tries ``latest.ckpt`` first, then each preserved generation newest
    first.  Returns ``(system, loaded_path, skipped)`` where *skipped*
    lists ``(path, error)`` pairs for every corrupt candidate passed
    over, or ``(None, None, skipped)`` when nothing under *directory*
    verifies.
    """
    directory = Path(directory)
    candidates: List[Path] = []
    latest = directory / LATEST_NAME
    if latest.exists():
        candidates.append(latest)
    candidates.extend(reversed(generation_files(directory)))
    skipped: List[Tuple[Path, CheckpointError]] = []
    for candidate in candidates:
        try:
            system = load_checkpoint(candidate)
        except CheckpointError as exc:
            skipped.append((candidate, exc))
            continue
        return system, candidate, skipped
    return None, None, skipped
