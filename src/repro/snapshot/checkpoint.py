"""Checkpoint files: atomic, versioned, checksummed system snapshots.

File layout (all little pieces are validated on load, in order)::

    REPRO-CKPT v1\\n                  magic + format version, ASCII
    {json header}\\n                  one line of metadata
    <zlib-compressed pickle payload>  the System object graph

The header records the format version again (the magic is for ``file``,
the header for programs), a SHA-256 checksum and byte count of the
compressed payload, and enough run context (scheme, workload, scale,
seed, phase, progress) for ``repro resume`` to describe what it is about
to continue without unpickling anything.

Writes are crash-safe: the file is assembled in a same-directory temp
file, fsynced, and moved into place with :func:`os.replace`, so a reader
either sees the complete old checkpoint or the complete new one — never
a torn file.  Any validation failure on load raises
:class:`repro.common.errors.CheckpointError` with a message naming what
was wrong (bad magic, version skew, checksum mismatch, truncation).
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, Union

from repro.common.errors import CheckpointError
from repro.snapshot import codec

#: Bump on any incompatible change to the payload encoding or header.
CHECKPOINT_FORMAT_VERSION = 1

MAGIC = b"REPRO-CKPT v1\n"

#: Conventional file name for the rolling checkpoint of one run.
LATEST_NAME = "latest.ckpt"


@contextmanager
def quiesced(system) -> Iterator[None]:
    """Detach the system's process-local hooks for the pickle window.

    The sanitizer wraps ``hmc.handle_request`` (and HPT event listeners)
    in closures, and an armed :class:`repro.snapshot.hooks.Checkpointer`
    holds signal state and open deadlines — none of which belong in a
    checkpoint.  Both are detached around serialization and restored
    before the simulation takes another step.
    """
    checker = system.checker
    checkpointer = system.checkpointer
    system.checkpointer = None
    if checker is not None:
        checker.snapshot_detach()
    try:
        yield
    finally:
        if checker is not None:
            checker.snapshot_reattach()
        system.checkpointer = checkpointer


def _header_for(system, payload: bytes) -> Dict[str, object]:
    progress = system.progress
    return {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "checksum_sha256": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
        "scheme": system.scheme,
        "workload": system.workload.name,
        "scale": system.scale,
        "seed": system.config.seed,
        "cores": len(system.cores),
        "steps_total": system.steps_total,
        "phase": None if progress is None else progress.phase,
        "ops_executed": [core.ops_executed for core in system.cores],
        "check_level": system.config.check.level,
        "faults_enabled": system.config.faults.enabled,
    }


def save_checkpoint(system, path: Union[str, Path]) -> Path:
    """Serialize *system* to *path* atomically; returns the final path."""
    with quiesced(system):
        payload = zlib.compress(codec.dumps(system), 6)
    header = _header_for(system, payload)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(temp, "wb") as handle:
            handle.write(MAGIC)
            handle.write(
                json.dumps(header, sort_keys=True, separators=(",", ":")).encode()
            )
            handle.write(b"\n")
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
    finally:
        if temp.exists():
            temp.unlink()
    return path


def _split(raw: bytes, path: Path):
    if not raw.startswith(MAGIC[: len(b"REPRO-CKPT")]):
        raise CheckpointError(f"{path}: not a repro checkpoint (bad magic)")
    if not raw.startswith(MAGIC):
        found = raw.split(b"\n", 1)[0].decode("ascii", "replace")
        raise CheckpointError(
            f"{path}: unsupported checkpoint format {found!r} "
            f"(this build reads {MAGIC.decode().strip()!r})"
        )
    rest = raw[len(MAGIC):]
    newline = rest.find(b"\n")
    if newline < 0:
        raise CheckpointError(f"{path}: truncated checkpoint (no header)")
    try:
        header = json.loads(rest[:newline].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: unreadable header ({exc})") from exc
    return header, rest[newline + 1:]


def read_checkpoint_header(path: Union[str, Path]) -> Dict[str, object]:
    """Return the validated metadata header without unpickling the state."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    header, payload = _split(raw, path)
    _validate(header, payload, path)
    return header


def _validate(header: Dict[str, object], payload: bytes, path: Path) -> None:
    version = header.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint format version {version} is not supported "
            f"(this build reads version {CHECKPOINT_FORMAT_VERSION})"
        )
    expected_bytes = header.get("payload_bytes")
    if expected_bytes != len(payload):
        raise CheckpointError(
            f"{path}: truncated checkpoint "
            f"(header promises {expected_bytes} payload bytes, found {len(payload)})"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("checksum_sha256"):
        raise CheckpointError(
            f"{path}: checksum mismatch (file corrupt or edited): "
            f"header {header.get('checksum_sha256')}, payload {digest}"
        )


def load_checkpoint(path: Union[str, Path]):
    """Restore a :class:`repro.sim.system.System` from *path*.

    The restored system has its sanitizer hooks re-attached and no
    checkpointer armed; call :meth:`System.resume_run` to continue the
    interrupted run to completion.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    header, payload = _split(raw, path)
    _validate(header, payload, path)
    try:
        blob = zlib.decompress(payload)
    except zlib.error as exc:
        raise CheckpointError(f"{path}: payload does not decompress ({exc})") from exc
    system = codec.loads(blob)

    from repro.sim.system import System

    if not isinstance(system, System):
        raise CheckpointError(
            f"{path}: payload is a {type(system).__name__}, not a System"
        )
    system.checkpointer = None
    if system.checker is not None:
        system.checker.snapshot_reattach()
    return system
