"""Serialization codecs for live simulator state.

A running :class:`repro.sim.system.System` is *almost* a plain-data object
graph: configs are frozen dataclasses, tables are dicts, timelines are
``__slots__`` records, and RNG streams wrap :class:`random.Random` (which
pickles its Mersenne state exactly).  Two kinds of members are not
picklable, and this module supplies deterministic stand-ins for them:

* **Bound stats handles** — the closures returned by
  :meth:`repro.common.stats.StatsRegistry.counter` / ``observer``.  Each
  handle carries its key and its owning registry as attributes, so the
  pickler reduces it to ``(rebind, (registry, name))``; the registry
  travels through pickle's memo, which guarantees the restored handle
  records into the *same* restored registry every other component shares.
* **Registered codecs** — any class can register an ``encode/decode`` pair
  with :func:`register_codec` instead of implementing ``__getstate__``
  (the route the RL006 lint rule checks for).

Anything else that is unpicklable (a stray lambda, an open file, a
generator that slipped past :class:`repro.snapshot.stream.ReplayStream`)
fails loudly with a :class:`repro.common.errors.CheckpointError` naming
the offending object, instead of pickle's anonymous ``Can't pickle``.

Restoring is restricted: :class:`SnapshotUnpickler` only resolves classes
from this package's allowlist of module prefixes, so a tampered
checkpoint cannot smuggle in arbitrary constructors.
"""

from __future__ import annotations

import io
import pickle
import sys
import types
from typing import Any, Callable, Dict, Tuple

from repro.common.errors import CheckpointError
from repro.common.stats import StatsRegistry

#: Pinned pickle protocol: part of the checkpoint format, never implicit.
PICKLE_PROTOCOL = 4

#: Module prefixes the unpickler will resolve classes from.  Everything a
#: System graph legitimately contains lives under these.
SAFE_MODULE_PREFIXES = (
    "repro.",
    "builtins",
    "collections",
    "random",
    "enum",
    "copyreg",
    "functools",
    "pathlib",
    "dataclasses",
    # numpy struct-of-arrays state (DenseVpnCache, SoaBankedTimeline)
    # pickles through numpy's own reconstructors.
    "numpy",
)

#: type -> (encode, decode).  ``encode(obj)`` must return a picklable
#: value; ``decode(value)`` rebuilds the live object.  Registration is the
#: alternative to ``__getstate__`` recognised by the RL006 lint rule.
_CODECS: Dict[type, Tuple[Callable[[Any], Any], Callable[[Any], Any]]] = {}


def register_codec(
    cls: type, encode: Callable[[Any], Any], decode: Callable[[Any], Any]
) -> None:
    """Register an encode/decode pair for *cls* (exact-type match)."""
    _CODECS[cls] = (encode, decode)


def _decode_registered(qualname: str, module: str, value: Any) -> Any:
    """Unpickle-side half of a registered codec."""
    for cls, (_, decode) in _CODECS.items():
        if cls.__module__ == module and cls.__qualname__ == qualname:
            return decode(value)
    raise CheckpointError(
        f"checkpoint references codec for {module}.{qualname}, "
        f"which is not registered in this process"
    )


def _importable(func: types.FunctionType) -> bool:
    """True when *func* is reachable as ``module.qualname`` (pickles by ref)."""
    if "<locals>" in func.__qualname__ or "<lambda>" in func.__qualname__:
        return False
    target = sys.modules.get(func.__module__)
    for part in func.__qualname__.split("."):
        target = getattr(target, part, None)
        if target is None:
            return False
    return target is func


def _rebind_counter(registry: StatsRegistry, name: str):
    return registry.counter(name)


def _rebind_observer(registry: StatsRegistry, name: str):
    return registry.observer(name)


class SnapshotPickler(pickle.Pickler):
    """A pickler that understands the simulator's live-object idioms."""

    def reducer_override(self, obj):  # noqa: C901 - dispatch ladder
        if isinstance(obj, types.FunctionType):
            counter_name = getattr(obj, "counter_name", None)
            if counter_name is not None:
                return (_rebind_counter, (obj.registry, counter_name))
            observer_name = getattr(obj, "observer_name", None)
            if observer_name is not None:
                return (_rebind_observer, (obj.registry, observer_name))
            if _importable(obj):
                # Module-level functions pickle by reference; only
                # closures and lambdas have no stable name to restore by.
                return NotImplemented
            raise CheckpointError(
                f"cannot checkpoint function {obj.__qualname__!r}: plain "
                f"functions/closures in simulator state need a registered "
                f"codec or a snapshot_detach hook (see docs/CHECKPOINTS.md)"
            )
        if isinstance(obj, types.GeneratorType):
            raise CheckpointError(
                f"cannot checkpoint live generator {obj.__name__!r}: wrap "
                f"the stream in repro.snapshot.stream.ReplayStream so it "
                f"can be rebuilt and fast-forwarded deterministically"
            )
        codec = _CODECS.get(type(obj))
        if codec is not None:
            encode, _ = codec
            cls = type(obj)
            return (
                _decode_registered,
                (cls.__qualname__, cls.__module__, encode(obj)),
            )
        return NotImplemented


class SnapshotUnpickler(pickle.Unpickler):
    """An unpickler restricted to the simulator's own modules."""

    def find_class(self, module: str, name: str):
        if not any(
            module == prefix or module.startswith(prefix)
            for prefix in SAFE_MODULE_PREFIXES
        ):
            raise CheckpointError(
                f"checkpoint references disallowed class {module}.{name}"
            )
        return super().find_class(module, name)


def dumps(obj: Any) -> bytes:
    """Serialize *obj* with the snapshot codecs; raises CheckpointError."""
    buffer = io.BytesIO()
    try:
        SnapshotPickler(buffer, protocol=PICKLE_PROTOCOL).dump(obj)
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            f"state graph is not serializable: {type(exc).__name__}: {exc}"
        ) from exc
    return buffer.getvalue()


def loads(payload: bytes) -> Any:
    """Deserialize a :func:`dumps` payload; raises CheckpointError."""
    try:
        return SnapshotUnpickler(io.BytesIO(payload)).load()
    except CheckpointError:
        raise
    except Exception as exc:
        raise CheckpointError(
            f"checkpoint payload is corrupt: {type(exc).__name__}: {exc}"
        ) from exc
