"""Run-time checkpoint triggers.

A :class:`Checkpointer` is armed on a :class:`repro.sim.system.System`
before ``run``/``resume_run`` and is polled once per executed operation
(``system.steps_total``) from inside the scheduler loop — *after* the
core has stepped and been re-queued, which is the one point where the
entire state graph is between operations and the heap can be rebuilt
bit-identically on restore.  It fires on three conditions:

* **cut points** — an explicit, sorted list of absolute step counts;
  each writes a separate ``cut_<steps>.ckpt`` (golden bit-identity tests
  restore from these),
* **periodic** — every N steps, refreshing the rolling ``latest.ckpt``,
* **pending signal** — the :class:`repro.snapshot.signals.SignalGuard`
  flag; writes one final ``latest.ckpt`` and raises
  :class:`repro.common.errors.CheckpointInterrupt` to unwind the run.

It also touches a heartbeat file (mtime = liveness) at most once per
``heartbeat_seconds`` so the sweep watchdog can tell "slow" from "hung".
A ``heartbeat_hook`` callback, when given, is invoked with the current
step count on the same cadence — the distributed sweep worker uses it to
stream heartbeats to the ``sweepd`` server over its socket (the hook
must swallow its own I/O errors; a flaky network must not kill the
simulation).  Wall-clock use is fine here: this package is deliberately
outside the simulator packages the RL001 determinism lint patrols, and
nothing the heartbeat does feeds back into simulated state.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.common.errors import CheckpointInterrupt, PersistError
from repro.snapshot.checkpoint import (
    DEFAULT_KEEP_GENERATIONS,
    LATEST_NAME,
    save_checkpoint,
)
from repro.snapshot.signals import SignalGuard

#: Steps between heartbeat wall-clock reads (a time() syscall per step
#: would be measurable on the hot path; one per mask window is not).
_HEARTBEAT_MASK = 0xFF

HEARTBEAT_NAME = "heartbeat"


class Checkpointer:
    """Writes checkpoints for one run into one directory."""

    def __init__(
        self,
        directory: Union[str, Path],
        every_ops: int = 0,
        cut_points: Sequence[int] = (),
        heartbeat_seconds: float = 0.0,
        signals: Optional[SignalGuard] = None,
        heartbeat_hook: Optional[Callable[[int], None]] = None,
        keep_generations: int = DEFAULT_KEEP_GENERATIONS,
    ):
        self.directory = Path(directory)
        self.every_ops = int(every_ops)
        self.cut_points: List[int] = sorted(int(c) for c in cut_points)
        self.heartbeat_seconds = float(heartbeat_seconds)
        self.heartbeat_hook = heartbeat_hook
        self.signals = signals
        self.keep_generations = int(keep_generations)
        self.latest_path = self.directory / LATEST_NAME
        self.heartbeat_path = self.directory / HEARTBEAT_NAME
        #: Paths written, in order (cut files and latest refreshes).
        self.written: List[Path] = []
        #: Writes that failed at the storage layer: (path, PersistError).
        #: A failed periodic refresh loses durability of the newest state,
        #: not correctness — the run continues and the next refresh (or a
        #: preserved generation) covers recovery.
        self.write_failures: List[tuple] = []
        self._next_due: Optional[int] = None
        self._next_heartbeat = 0.0
        self._finalized = False

    def arm(self, system) -> None:
        """Attach to *system* and schedule the first periodic write."""
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.every_ops > 0:
            self._next_due = system.steps_total + self.every_ops
        if self.heartbeat_seconds > 0:
            self._touch_heartbeat(system.steps_total)
        system.checkpointer = self

    def _touch_heartbeat(self, steps: int) -> None:
        try:
            self.heartbeat_path.touch()
        except OSError:
            pass  # a full disk must not kill the run; mtime just goes stale
        self._next_heartbeat = time.monotonic() + self.heartbeat_seconds
        if self.heartbeat_hook is not None:
            self.heartbeat_hook(steps)

    def _write(self, system, path: Path) -> Optional[Path]:
        rotate = self.keep_generations if path == self.latest_path else 0
        try:
            final = save_checkpoint(system, path, keep_generations=rotate)
        except PersistError as exc:
            # Storage said no (ENOSPC, EIO, failed fsync).  The previous
            # file is intact; losing one refresh must not kill the run.
            self.write_failures.append((path, exc))
            return None
        self.written.append(final)
        return final

    def next_trigger_step(self) -> Optional[int]:
        """The next *deterministic* step count at which :meth:`on_step`
        would write a checkpoint, or None when no cut point or periodic
        write is scheduled.

        The batched engine plans its drains around this: it runs at full
        speed up to the returned step, flushes core-local state, and
        polls :meth:`on_step` exactly there — so cut files and periodic
        ``latest.ckpt`` refreshes land on the identical steps the scalar
        engine's per-step polling produces.  (Signal polling has no
        deterministic step; the engine bounds its latency with a fixed
        poll interval instead.)
        """
        cut = self.cut_points[0] if self.cut_points else None
        due = self._next_due
        if cut is None:
            return due
        if due is None:
            return cut
        return min(cut, due)

    def on_step(self, system) -> None:
        """Poll triggers; called once per executed op at the safe point."""
        steps = system.steps_total
        signals = self.signals
        if signals is not None and signals.pending:
            self._finalize(system, signals.signum)
        while self.cut_points and steps >= self.cut_points[0]:
            cut = self.cut_points.pop(0)
            self._write(system, self.directory / f"cut_{cut}.ckpt")
        if self._next_due is not None and steps >= self._next_due:
            self._next_due = steps + self.every_ops
            self._write(system, self.latest_path)
        if self.heartbeat_seconds > 0 and steps & _HEARTBEAT_MASK == 0:
            if time.monotonic() >= self._next_heartbeat:
                self._touch_heartbeat(steps)

    def _finalize(self, system, signum) -> None:
        if self._finalized:  # second poll after an already-handled signal
            raise CheckpointInterrupt(path=self.latest_path, signum=signum)
        self._finalized = True
        path = self._write(system, self.latest_path)
        # path is None when the final write failed at the storage layer;
        # CheckpointInterrupt documents that contract.
        raise CheckpointInterrupt(path=path, signum=signum)

    def finalize_now(self, system) -> Optional[Path]:
        """Write a final ``latest.ckpt`` outside the step loop (no raise).

        Returns None when the write failed at the storage layer (the
        failure is recorded in :attr:`write_failures`).
        """
        self._finalized = True
        return self._write(system, self.latest_path)
