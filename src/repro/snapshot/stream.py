"""Checkpointable workload streams.

Workload generators are infinite Python generators and cannot be pickled.
They are, however, *deterministic*: a stream is fully described by its
:class:`repro.workloads.base.WorkloadSpec`, core id, seed, and scale, plus
how many operations have been consumed.  :class:`ReplayStream` wraps the
live generator, counts consumption, and serializes as that description;
on restore it rebuilds the generator and fast-forwards it by the recorded
count, which replays the generator's internal RNG draws exactly and lands
it in the identical state.

Fast-forward cost is linear in ops consumed so far — microseconds per
thousand ops, paid once per restore, never on the simulation hot path.
"""

from __future__ import annotations

from typing import Iterator

from repro.sim.cpu import MemoryOp
from repro.workloads.base import WorkloadSpec


class ReplayStream:
    """An op stream that can be pickled and rebuilt mid-flight."""

    __slots__ = ("workload", "core_id", "seed", "scale", "consumed", "_gen")

    def __init__(self, workload: WorkloadSpec, core_id: int, seed: int, scale: int):
        self.workload = workload
        self.core_id = core_id
        self.seed = seed
        self.scale = scale
        #: Operations handed out so far (== the fast-forward distance).
        self.consumed = 0
        self._gen: Iterator[MemoryOp] = workload.make_stream(core_id, seed, scale)

    def __iter__(self) -> "ReplayStream":
        return self

    # repro-hot
    def __next__(self) -> MemoryOp:
        op = next(self._gen)
        self.consumed += 1
        return op

    # -- pickling ----------------------------------------------------------
    def __getstate__(self):
        return (self.workload, self.core_id, self.seed, self.scale, self.consumed)

    def __setstate__(self, state) -> None:
        workload, core_id, seed, scale, consumed = state
        self.workload = workload
        self.core_id = core_id
        self.seed = seed
        self.scale = scale
        self.consumed = consumed
        self._gen = workload.make_stream(core_id, seed, scale)
        gen = self._gen
        for _ in range(consumed):
            next(gen)

    def __repr__(self) -> str:
        return (
            f"ReplayStream({self.workload.name}, core={self.core_id}, "
            f"seed={self.seed}, scale={self.scale}, consumed={self.consumed})"
        )
