"""Checkpointable workload streams.

Workload generators are infinite Python generators and cannot be pickled.
They are, however, *deterministic*: a stream is fully described by its
:class:`repro.workloads.base.WorkloadSpec`, core id, seed, scale, and
stream mode, plus how many operations have been consumed.
:class:`ReplayStream` buffers the generator's output one
:class:`repro.workloads.chunks.OpChunk` at a time, counts consumption,
and serializes as that description; on restore it rebuilds the chunk
iterator and fast-forwards it by the recorded count — whole chunks are
skipped (their RNG draws replay exactly), and the final partial chunk is
re-entered at the recorded mid-chunk offset.

Consumption has exactly one counter and two consumers of the same code
path: the scalar engine's per-op :meth:`ReplayStream.__next__` and the
batched engine's chunk-aware :meth:`peek_chunk` / :meth:`advance` pair
both move ``consumed``, which is also the fast-forward distance.  The
engine never reaches into private generator state.

Fast-forward cost is linear in ops consumed so far — microseconds per
thousand ops, paid once per restore, never on the simulation hot path.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.sim.cpu import MemoryOp
from repro.workloads.base import WorkloadSpec
from repro.workloads.chunks import OpChunk, chunks_from_blocks, chunks_from_ops

#: Recognized stream modes: ``chunked`` runs the block-native emitters
#: (struct-of-arrays fast path), ``perop`` batches the historical per-op
#: generators into the same chunk shape (the CI equivalence matrix).
STREAM_MODES = ("chunked", "perop")


class ReplayStream:
    """An op stream that can be pickled and rebuilt mid-flight."""

    __slots__ = (
        "workload", "core_id", "seed", "scale", "consumed", "mode",
        "_chunks", "_chunk", "_pos",
    )

    def __init__(
        self,
        workload: WorkloadSpec,
        core_id: int,
        seed: int,
        scale: int,
        mode: str = "chunked",
    ):
        if mode not in STREAM_MODES:
            raise ValueError(f"unknown stream mode {mode!r}; pick from {STREAM_MODES}")
        self.workload = workload
        self.core_id = core_id
        self.seed = seed
        self.scale = scale
        #: Operations handed out so far (== the fast-forward distance).
        self.consumed = 0
        self.mode = mode
        self._chunks: Iterator[OpChunk] = self._make_chunks()
        #: The buffered chunk and the offset of its next unconsumed op.
        self._chunk: Optional[OpChunk] = None
        self._pos = 0

    def _make_chunks(self) -> Iterator[OpChunk]:
        if self.mode == "chunked":
            blocks = self.workload.make_blocks(self.core_id, self.seed, self.scale)
            if blocks is not None:
                return chunks_from_blocks(blocks)
        # ``perop`` mode, or a generator registered without a block view:
        # identical op sequence, batched from the per-op generator.
        return chunks_from_ops(
            self.workload.make_stream(self.core_id, self.seed, self.scale)
        )

    # -- chunk-aware consumption (the batched engine's protocol) -----------
    def peek_chunk(self) -> Optional[Tuple[OpChunk, int]]:
        """The buffered chunk and the offset of its next unconsumed op.

        Pulls the next chunk from the generator when the buffer is empty;
        returns None when the stream is exhausted.  Peeking consumes
        nothing — only :meth:`advance` (or :meth:`__next__`) moves
        ``consumed``, so a fetched-but-unexecuted op is never counted.
        """
        chunk = self._chunk
        if chunk is None:
            chunk = next(self._chunks, None)
            if chunk is None:
                return None
            self._chunk = chunk
            self._pos = 0
        return chunk, self._pos

    # repro-hot
    def advance(self, count: int) -> None:
        """Mark *count* ops of the buffered chunk as consumed."""
        chunk = self._chunk
        pos = self._pos + count
        if chunk is not None and 0 < count and pos <= chunk.length:
            self.consumed += count
            if pos == chunk.length:
                self._chunk = None
                self._pos = 0
            else:
                self._pos = pos
            return
        if count == 0:
            return
        raise ValueError(
            f"advance({count}) outside the buffered chunk "
            f"(pos={self._pos}, chunk={chunk!r})"
        )

    # -- per-op view (the scalar engine's protocol) ------------------------
    def __iter__(self) -> "ReplayStream":
        return self

    # repro-hot
    def __next__(self) -> MemoryOp:
        peeked = self.peek_chunk()
        if peeked is None:
            raise StopIteration
        chunk, pos = peeked
        op = MemoryOp(chunk.vaddrs[pos], chunk.writes[pos], chunk.instr[pos])
        self.advance(1)
        return op

    # -- pickling ----------------------------------------------------------
    def __getstate__(self):
        return (
            self.workload, self.core_id, self.seed, self.scale,
            self.consumed, self.mode,
        )

    def __setstate__(self, state) -> None:
        if len(state) == 5:
            # Legacy (pre-chunk) checkpoints carry no mode field.
            workload, core_id, seed, scale, consumed = state
            mode = "chunked"
        else:
            workload, core_id, seed, scale, consumed, mode = state
        self.workload = workload
        self.core_id = core_id
        self.seed = seed
        self.scale = scale
        self.consumed = consumed
        self.mode = mode
        self._chunks = self._make_chunks()
        self._chunk = None
        self._pos = 0
        remaining = consumed
        while remaining > 0:
            chunk = next(self._chunks)
            if remaining < len(chunk):
                self._chunk = chunk
                self._pos = remaining
                break
            remaining -= len(chunk)

    def __repr__(self) -> str:
        return (
            f"ReplayStream({self.workload.name}, core={self.core_id}, "
            f"seed={self.seed}, scale={self.scale}, mode={self.mode}, "
            f"consumed={self.consumed})"
        )
