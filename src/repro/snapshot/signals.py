"""Cooperative signal handling for checkpointed runs.

:class:`SignalGuard` converts the first SIGINT/SIGTERM into a flag the
simulation loop polls at its next safe point (between operations), where
the :class:`repro.snapshot.hooks.Checkpointer` writes exactly one final
checkpoint and unwinds with
:class:`repro.common.errors.CheckpointInterrupt`.  A second signal means
the user is done waiting: the process force-quits immediately with the
conventional ``128 + signum`` code, skipping all cleanup.

The guard is a context manager and restores the previous handlers on
exit, so nested non-checkpointed work (e.g. report generation after a
run) keeps default signal behaviour.  Outside the main thread — where
CPython forbids installing handlers — the guard degrades to an inert
flag holder rather than failing, because supervised sweep workers get
their lifecycle managed by the watchdog instead.
"""

from __future__ import annotations

import os
import signal
from typing import Callable, Dict, Optional, Tuple

#: Exit code for "run interrupted, state checkpointed, resume to finish".
#: Distinct from 1 (error) and from 128+signum (killed without checkpoint);
#: 75 is EX_TEMPFAIL, the closest sysexits.h has to "try again later".
EXIT_CHECKPOINTED = 75

DEFAULT_SIGNALS: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM)


def _default_force_exit(code: int) -> None:
    # os._exit, not sys.exit: a second signal must not run atexit hooks
    # or get swallowed by an except clause mid-checkpoint.
    os._exit(code)


class SignalGuard:
    """Flag-setting SIGINT/SIGTERM handler with second-signal force-quit."""

    def __init__(
        self,
        signals: Tuple[int, ...] = DEFAULT_SIGNALS,
        force_exit: Callable[[int], None] = _default_force_exit,
    ):
        self.signals = tuple(signals)
        self.pending = False
        self.signum: Optional[int] = None
        self._force_exit = force_exit
        self._previous: Dict[int, object] = {}
        self.installed = False

    def _handle(self, signum, frame) -> None:
        if self.pending:
            self._force_exit(128 + signum)
            return  # only reachable with an injected force_exit (tests)
        self.pending = True
        self.signum = signum

    def __enter__(self) -> "SignalGuard":
        try:
            for signum in self.signals:
                self._previous[signum] = signal.signal(signum, self._handle)
            self.installed = True
        except ValueError:
            # Not the main thread: leave handlers alone, stay inert.
            for signum, previous in self._previous.items():
                signal.signal(signum, previous)
            self._previous.clear()
        return self

    def __exit__(self, *exc_info) -> None:
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        self._previous.clear()
        self.installed = False
