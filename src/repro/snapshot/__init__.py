"""Crash-safe checkpoint/restore for live simulations.

See ``docs/CHECKPOINTS.md`` for the file format, the determinism
guarantee (restore is bit-identical to an uninterrupted run), and the
sweep watchdog built on top of this package.
"""

from repro.common.errors import (
    CheckpointError,
    CheckpointInterrupt,
    CorruptCheckpointError,
)
from repro.snapshot.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    DEFAULT_KEEP_GENERATIONS,
    LATEST_NAME,
    generation_files,
    load_checkpoint,
    load_checkpoint_with_fallback,
    read_checkpoint_header,
    save_checkpoint,
    verify_checkpoint,
)
from repro.snapshot.codec import register_codec
from repro.snapshot.hooks import HEARTBEAT_NAME, Checkpointer
from repro.snapshot.signals import EXIT_CHECKPOINTED, SignalGuard
from repro.snapshot.stream import ReplayStream

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointInterrupt",
    "Checkpointer",
    "CorruptCheckpointError",
    "DEFAULT_KEEP_GENERATIONS",
    "EXIT_CHECKPOINTED",
    "HEARTBEAT_NAME",
    "LATEST_NAME",
    "ReplayStream",
    "SignalGuard",
    "generation_files",
    "load_checkpoint",
    "load_checkpoint_with_fallback",
    "read_checkpoint_header",
    "register_codec",
    "save_checkpoint",
    "verify_checkpoint",
]
