"""The batched execution engine (``SystemConfig.engine = "batched"``).

The scalar scheduler in :meth:`repro.sim.system.System._run_to_targets`
pays the full Python dispatch chain — op fetch, ``ensure_mapped``, MMU
translate, hierarchy access, per-op result objects — for *every*
operation, even though most of them are pure L1-TLB + L1/L2-cache hits
that mutate nothing outside one core.  This engine consumes the stream
chunk-wise: a vectorized prep kernel lifts each
:class:`repro.workloads.chunks.OpChunk` into flat per-op columns (VPN,
line number, set indices, tags, clock advance) in a handful of numpy
ops, then a slim per-op loop drains the *pure prefix* of the chunk
against the struct-of-arrays TLB/cache models
(:class:`repro.vm.tlb.SoaTlb`, :class:`repro.cache.cache.SoaCache`).
Shared ops run at their exact global order: cache-miss shapes (dirty
L2-hit victims, L1+L2 misses reaching the L3 or memory) replay the
scalar path's mutations inline from the prepped columns, and only
*translation* events (TLB-miss walks, first-touch pages) escape to the
unmodified scalar path (:meth:`repro.sim.cpu.Core.execute`).

Equivalence contract (enforced by the pinned goldens and by
tests/integration/test_engine_equivalence.py):

1. **Op classification.**  An op is *pure* when it hits the L1 TLB and
   then either hits the L1 cache, or hits the L2 cache with a clean (or
   absent) L1 victim.  A pure op touches only the owning core's state —
   its TLB/L1/L2 LRU ages, dirty bits, clock, and op counts — plus
   global stats counters.  Every other op is *shared*: it reaches the
   walker, the shared L3, or the memory controller.  The prep kernel
   resolves VPN→PPN through the page table's dense cache *at prep
   time*; an op whose page is unmapped at that point is classified
   shared conservatively (pure ops commute, and the scalar path it
   escapes to is the source of truth — first-touch is a walk anyway).
2. **Ordering.**  Pure ops of one core commute with every op of every
   other core: disjoint mutable state, and the counters they touch are
   pure event counts (each update is ``+= 1.0``, and the engine's
   deferred ``+= float(k)`` flush equals k unit increments exactly for
   integer-valued floats below 2^53).  Shared ops are the only ops
   whose relative order matters, and the scalar heap executes them
   exactly in sorted ``(clock-at-op, core_id)`` order (a k-way merge of
   per-core increasing key sequences).  The engine therefore lets each
   core free-run through pure ops and parks it in a heap, keyed by its
   pending shared op, so shared ops replay the scalar order
   bit-for-bit.  Per-core clock evolution — and hence every shared-op
   key — depends only on the outcomes of earlier shared ops, which are
   identical by induction.
3. **Hit and miss semantics.**  The inline paths replicate the scalar
   paths' mutations exactly, in kind and in floating-point order: LRU
   touches are stores of the same strictly-increasing age counters the
   SoA models' methods use, clock advances are the same float adds in
   the same sequence (work advance, then the stall division), and the
   L3's ``OrderedDict`` operations (``move_to_end``, LRU-first
   ``popitem``) are performed verbatim at the op's global turn.
   Classification probes (way-dict ``get``, age ``argmin``, victim
   dirty-bit peek) are non-mutating, and a core's private TLB/L1/L2
   membership cannot change while it is parked (only its own walks and
   fills mutate them), so drain-time classifications stay valid at the
   ordered turn.  ``ensure_mapped`` is skipped on TLB hits: a VPN can
   only enter a TLB via a walk, walks only happen for mapped VPNs, and
   mappings are never removed.
4. **Checkpoints.**  Core-local state (clock, instructions, op counts)
   is flushed from locals to the object graph before every checkpointer
   poll, and stream consumption moves through the one public
   :meth:`repro.snapshot.stream.ReplayStream.advance` path — the pure
   prefix advances when it drains, an executed shared op advances right
   after it runs, and a fetched-but-unexecuted shared op is *never*
   advanced — so a checkpoint written mid-chunk is a consistent
   between-ops frontier that resumes to the identical final digest (the
   per-phase op *sets* are fixed by the absolute targets, and shared
   order is preserved, so the end state cannot depend on where the cut
   landed).  Deterministic triggers (cut points, periodic writes) fire
   at exactly their configured step counts via
   :meth:`repro.snapshot.hooks.Checkpointer.next_trigger_step`; signal
   polls (wall-clock, inherently nondeterministic) happen every
   :data:`_POLL_STEPS` steps, aligned to the heartbeat mask so liveness
   heartbeats keep their cadence.

See docs/PERFORMANCE.md ("Array-native streams") for the measured
speedups and docs/TESTING.md for the differential-harness workflow.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from repro.common.addr import LINE_SHIFT, PAGE_BYTES, PAGE_SHIFT
from repro.sim.cpu import _STORE_STALL_FRACTION
from repro.sim.hmc_base import RequestKind
from repro.snapshot.stream import ReplayStream
from repro.workloads.chunks import OpChunk, chunks_from_ops

try:  # numpy backs the chunk prep kernel; a scalar fallback covers its absence
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain image bakes numpy in
    _np = None

_DEMAND = RequestKind.DEMAND
_WRITEBACK = RequestKind.WRITEBACK

_PAGE_MASK = PAGE_BYTES - 1

#: Steps between checkpointer polls when no cut point or periodic write
#: is due sooner.  Poll steps are multiples of this value so the scalar
#: engine's ``steps & 0xFF == 0`` heartbeat condition still fires.
_POLL_STEPS = 256


class _BareStream:
    """Chunk-protocol adapter over a bare op iterable (unit-test rigs).

    Mirrors :class:`ReplayStream`'s ``peek_chunk``/``advance`` surface
    with no consumption counter to maintain (bare iterators are not
    checkpointable).
    """

    __slots__ = ("_chunks", "_chunk", "_pos")

    def __init__(self, ops):
        self._chunks = chunks_from_ops(iter(ops))
        self._chunk: Optional[OpChunk] = None
        self._pos = 0

    def peek_chunk(self) -> Optional[Tuple[OpChunk, int]]:
        chunk = self._chunk
        if chunk is None:
            chunk = next(self._chunks, None)
            if chunk is None:
                return None
            self._chunk = chunk
            self._pos = 0
        return chunk, self._pos

    def advance(self, count: int) -> None:
        pos = self._pos + count
        if pos == self._chunk.length:
            self._chunk = None
            self._pos = 0
        else:
            self._pos = pos


def _prep_chunk(chunk, vpn_cache, base_cpi, l1_nsets, l2_nsets, l3_nsets) -> Tuple:
    """Lift one chunk into flat per-op columns (the vectorized kernel).

    Everything the drain loop indexes per op is computed here in a few
    whole-chunk vector ops and materialized back to Python lists (list
    indexing beats numpy scalar extraction in the per-op loop, and
    ``tolist`` yields exact ``int``/``float`` elements).  The last
    column is the (almost always empty) sorted list of op indices whose
    pages were unmapped at prep time; their line/set/tag entries are
    ``-1``-derived junk until the drain loop re-resolves them when it
    *reaches* them (an earlier escape may have mapped the page by then)
    — precomputing the escape indices keeps the mapped-ness check off
    the per-op fast path.  A genuine first touch escapes to the scalar
    path, whose walk maps the page.

    The VPN→PPN resolution is against the page table's *immutable*
    mapping (entries are only ever added), so prepping ahead of
    execution cannot observe stale translations — only absent ones,
    which the unmapped index list handles conservatively.
    """
    if _np is not None and hasattr(vpn_cache, "lookup_many"):
        va = chunk.vaddr_array()
        vpns = va >> PAGE_SHIFT
        ppns = vpn_cache.lookup_many(vpns)
        lines = ((ppns << PAGE_SHIFT) | (va & _PAGE_MASK)) >> LINE_SHIFT
        if (ppns < 0).any():
            lines = _np.where(ppns >= 0, lines, -1)
            unmapped = _np.nonzero(ppns < 0)[0].tolist()
        else:
            unmapped = ()
        works = _np.array(chunk.instr, dtype=_np.int64) + 1
        # Exclusive prefix sum of per-op work: the drain loop charges a
        # whole segment with cumw[end] - cumw[start] (integer adds
        # regroup exactly, unlike the per-op float clock advances).
        cumw = _np.zeros(works.shape[0] + 1, dtype=_np.int64)
        _np.cumsum(works, out=cumw[1:])
        return (
            vpns.tolist(),
            lines.tolist(),
            (lines % l1_nsets).tolist(),
            (lines // l1_nsets).tolist(),
            (lines % l2_nsets).tolist(),
            (lines // l2_nsets).tolist(),
            (lines % l3_nsets).tolist(),
            (lines // l3_nsets).tolist(),
            cumw.tolist(),
            (works * base_cpi).tolist(),
            unmapped,
        )
    # Scalar fallback: no numpy, or a plain-dict VPN cache.
    get = vpn_cache.get
    vpns = [vaddr >> PAGE_SHIFT for vaddr in chunk.vaddrs]
    lines = []
    unmapped = []
    for index, (vaddr, vpn) in enumerate(zip(chunk.vaddrs, vpns)):
        ppn = get(vpn)
        if ppn is None:
            lines.append(-1)
            unmapped.append(index)
        else:
            lines.append(((ppn << PAGE_SHIFT) | (vaddr & _PAGE_MASK)) >> LINE_SHIFT)
    works = [instructions + 1 for instructions in chunk.instr]
    cumw = [0]
    total = 0
    for work in works:
        total += work
        cumw.append(total)
    return (
        vpns,
        lines,
        [line % l1_nsets for line in lines],
        [line // l1_nsets for line in lines],
        [line % l2_nsets for line in lines],
        [line // l2_nsets for line in lines],
        [line % l3_nsets for line in lines],
        [line // l3_nsets for line in lines],
        cumw,
        [work * base_cpi for work in works],
        unmapped,
    )


def _core_context(core) -> Tuple:
    """Hoist one core's fast-path invariants into a flat tuple.

    Everything here is fixed for the core's lifetime (the same
    invariants ``Core.__init__`` hoists for the scalar path): the SoA
    TLB/cache internals the drain loop reads and writes directly, the
    shared L3's per-set ``OrderedDict`` list for the inline miss path,
    and the chunk-protocol stream.  ``hmc.handle_request`` is
    deliberately *not* here: the sanitizer rebinds it on the instance,
    so the engine re-reads it around controller calls.
    """
    l1_tlb = core.mmu.l1_tlb
    hierarchy = core.hierarchy
    l1 = hierarchy.l1[core.core_id]
    l2 = hierarchy.l2[core.core_id]
    l3 = hierarchy.l3
    stream = core.ops
    if not isinstance(stream, ReplayStream):
        stream = _BareStream(stream)
    # The scalar L2-hit stall is outcome.latency_cycles / mlp where
    # latency_cycles == l1_latency + l2_latency: same ints, same single
    # float division, so the precomputed value is bit-identical.  The
    # L3-hit stall and the LLC-miss lookup latency follow the same
    # argument with l3_latency added.
    lat12 = hierarchy._l1_latency + hierarchy._l2_latency
    lat123 = lat12 + hierarchy._l3_latency
    mlp = core._mlp
    return (
        stream,
        core._page_table._vpn_cache,
        l1_tlb._way_of,
        l1_tlb._ages,
        l1_tlb._age,
        l1_tlb.num_sets,
        l1._way_of,
        l1._tags,
        l1._dirty,
        l1._ages,
        l1._age,
        l1.num_sets,
        l1.ways,
        l2._way_of,
        l2._tags,
        l2._dirty,
        l2._ages,
        l2._age,
        l2.num_sets,
        l2.ways,
        l3._sets,
        l3.num_sets,
        l3.ways,
        core._pid,
        core._base_cpi,
        lat12 / mlp,
        lat123 / mlp,
        lat123,
        mlp,
    )


def _next_stop(ckpt, steps: int) -> int:
    """First step count at which the engine must pause for the checkpointer."""
    stop = (steps // _POLL_STEPS + 1) * _POLL_STEPS
    trigger = ckpt.next_trigger_step()
    if trigger is not None and trigger < stop:
        # A trigger at or below the current step fires at the next poll
        # opportunity (scalar fires such stale cuts on its next step too).
        stop = trigger if trigger > steps else steps
    return stop


def _core_runner(system, core, target, heap, counters, ckpt, steps_cell, stop_cell):
    """One core's free-run coroutine (see :func:`run_to_targets`).

    All of the core's hot state — the object-graph mirrors (clock,
    instruction and op counts), the prepared chunk columns, and the
    in-flight shared-op descriptor — lives in this generator's locals
    across parks, so a park/resume cycle costs one ``yield`` instead of
    re-hoisting a 30-element context and re-unpacking the chunk columns
    per segment.  The runner yields its clock when a shared op must
    wait for the global ``(clock, core_id)`` turn; the driver resumes
    it when it reaches the heap front.  Core attributes are flushed
    before every yield, poll, and controller call, so anything that
    observes the object graph mid-run (checkpointer, sanitizer) sees a
    consistent between-ops frontier.  The global step count and the
    next planned stop live in shared one-element cells: every runner
    advances them, and whichever runner crosses the poll boundary
    re-plans the stop for all.
    """
    (
        stream,
        vpn_cache,
        t_way_of,
        t_ages,
        t_age_cell,
        tlb_nsets,
        l1_way_of,
        l1_tags,
        l1_dirty,
        l1_ages,
        l1_age_cell,
        l1_nsets,
        l1_ways,
        l2_way_of,
        l2_tags,
        l2_dirty,
        l2_ages,
        l2_age_cell,
        l2_nsets,
        l2_ways,
        l3_sets,
        l3_nsets,
        l3_ways,
        pid,
        base_cpi,
        l2_stall,
        l3_stall,
        lat123,
        mlp,
    ) = _core_context(core)
    core_id = core.core_id
    clock = core.clock
    instructions = core.instructions
    ops_executed = core.ops_executed
    #: In-flight shared-op kind: 0 = none, 1 = full scalar escape
    #: (walks, first touches), 2 = dirty-victim L2 hit, 3 = L1+L2 miss
    #: (L3 hit or memory).  Kinds 2 and 3 carry the op's chunk-column
    #: index in ``idx``; kind 1 carries the materialized MemoryOp.
    kind = 0
    op = None
    idx = 0
    cur_chunk = None
    try:
        while True:
            if steps_cell[0] == stop_cell[0]:
                # Checkpoint boundary (or signal poll): flush locals so
                # the serialized graph is a consistent between-ops
                # frontier, poll, re-plan.
                core.clock = clock
                core.instructions = instructions
                core.ops_executed = ops_executed
                system.steps_total = steps_cell[0]
                ckpt.on_step(system)
                stop_cell[0] = _next_stop(ckpt, steps_cell[0])
            if kind == 2:
                # Dirty-victim L2 hit at its global turn: the
                # classification probes are still valid (only other
                # cores ran in between, and they cannot touch this
                # core's TLB/L1/L2), so replicate the scalar path
                # inline from the prepped columns — work advance, TLB
                # L1 hit, L2 hit, L1 fill evicting the dirty victim —
                # and send the one shared effect, the victim
                # write-back, to the controller.
                instructions += cumw[idx + 1] - cumw[idx]
                clock += advs[idx]
                vpn = vpns[idx]
                tidx = vpn % tlb_nsets
                tway = t_way_of[tidx][(pid, vpn)]
                t_ages[tidx][tway] = t_age_cell[0]
                t_age_cell[0] += 1
                counters["tlb/l1_hits"] += 1.0
                is_write = writes[idx]
                set2 = l2sets[idx]
                way2 = l2_way_of[set2][l2tags[idx]]
                l2_ages[set2][way2] = l2_age_cell[0]
                l2_age_cell[0] += 1
                if is_write:
                    l2_dirty[set2][way2] = True
                counters["cache/l2_hits"] += 1.0
                set1 = l1sets[idx]
                ages1 = l1_ages[set1]
                vway = ages1.index(min(ages1))
                tags1 = l1_tags[set1]
                victim_tag = tags1[vway]
                ways1 = l1_way_of[set1]
                del ways1[victim_tag]
                tag1 = l1tags[idx]
                ways1[tag1] = vway
                tags1[vway] = tag1
                l1_dirty[set1][vway] = is_write
                ages1[vway] = l1_age_cell[0]
                l1_age_cell[0] += 1
                clock += l2_stall
                # Flush before the controller call: the sanitizer may
                # wrap handle_request and read system state (scalar
                # order: clock is updated before write-backs drain).
                core.clock = clock
                core.instructions = instructions
                core.ops_executed = ops_executed
                core.hmc.handle_request(
                    int(clock),
                    victim_tag * l1_nsets + set1,
                    True,
                    pid,
                    _WRITEBACK,
                )
                ops_executed += 1
                stream.advance(1)
                kind = 0
                steps_cell[0] += 1
            elif kind == 3:
                # L1+L2 miss at its global turn: the private miss
                # probes are still valid (see kind 2), so replicate the
                # scalar path inline — work advance, TLB L1 hit, the
                # shared L3 probe at exactly this point in global
                # order, the L2/L1 fills, the demand request on an LLC
                # miss, and the victim write-backs.
                instructions += cumw[idx + 1] - cumw[idx]
                # Scalar visibility during the controller call:
                # instructions are committed at op start, the clock not
                # until the stall is known.
                core.instructions = instructions
                core.clock = clock
                core.ops_executed = ops_executed
                clock += advs[idx]
                now = int(clock)
                vpn = vpns[idx]
                tidx = vpn % tlb_nsets
                tway = t_way_of[tidx][(pid, vpn)]
                t_ages[tidx][tway] = t_age_cell[0]
                t_age_cell[0] += 1
                counters["tlb/l1_hits"] += 1.0
                line = lines[idx]
                is_write = writes[idx]
                set3 = l3sets[idx]
                entries3 = l3_sets[set3]
                tag3 = l3tags[idx]
                wb_l3 = wb_l2 = wb_l1 = -1
                if tag3 in entries3:
                    entries3.move_to_end(tag3)
                    if is_write:
                        entries3[tag3] = True
                    counters["cache/l3_hits"] += 1.0
                    llc_miss = False
                else:
                    counters["cache/llc_misses"] += 1.0
                    if len(entries3) >= l3_ways:
                        vtag3, vdirty3 = entries3.popitem(last=False)
                        if vdirty3:
                            wb_l3 = vtag3 * l3_nsets + set3
                    entries3[tag3] = False
                    llc_miss = True
                # L2 fill (clean), then L1 fill (dirty on writes) — the
                # scalar fill order.
                set2 = l2sets[idx]
                tag2 = l2tags[idx]
                ways2 = l2_way_of[set2]
                ages2 = l2_ages[set2]
                tags2 = l2_tags[set2]
                dirty2 = l2_dirty[set2]
                if len(ways2) >= l2_ways:
                    vway = ages2.index(min(ages2))
                    vtag = tags2[vway]
                    if dirty2[vway]:
                        wb_l2 = vtag * l2_nsets + set2
                    del ways2[vtag]
                else:
                    vway = tags2.index(-1)
                ways2[tag2] = vway
                tags2[vway] = tag2
                dirty2[vway] = False
                ages2[vway] = l2_age_cell[0]
                l2_age_cell[0] += 1
                set1 = l1sets[idx]
                tag1 = l1tags[idx]
                ways1 = l1_way_of[set1]
                ages1 = l1_ages[set1]
                tags1 = l1_tags[set1]
                dirty1 = l1_dirty[set1]
                if len(ways1) >= l1_ways:
                    vway = ages1.index(min(ages1))
                    vtag = tags1[vway]
                    if dirty1[vway]:
                        wb_l1 = vtag * l1_nsets + set1
                    del ways1[vtag]
                else:
                    vway = tags1.index(-1)
                ways1[tag1] = vway
                tags1[vway] = tag1
                dirty1[vway] = is_write
                ages1[vway] = l1_age_cell[0]
                l1_age_cell[0] += 1
                hmc = core.hmc
                if llc_miss:
                    finish = hmc.handle_request(
                        now + lat123, line, is_write, pid, _DEMAND
                    )
                    memory_latency = finish - now
                    if is_write:
                        clock += memory_latency * _STORE_STALL_FRACTION / mlp
                    else:
                        clock += memory_latency / mlp
                else:
                    clock += l3_stall
                core.clock = clock
                if wb_l3 >= 0 or wb_l2 >= 0 or wb_l1 >= 0:
                    wb_now = int(clock)
                    handle = hmc.handle_request
                    if wb_l3 >= 0:
                        handle(wb_now, wb_l3, True, pid, _WRITEBACK)
                    if wb_l2 >= 0:
                        handle(wb_now, wb_l2, True, pid, _WRITEBACK)
                    if wb_l1 >= 0:
                        handle(wb_now, wb_l1, True, pid, _WRITEBACK)
                ops_executed += 1
                stream.advance(1)
                kind = 0
                steps_cell[0] += 1
            elif kind == 1:
                # A translation event (walk or first touch) at its
                # global turn: run the full scalar path on the flushed
                # core.
                core.clock = clock
                core.instructions = instructions
                core.ops_executed = ops_executed
                core.execute(op)
                stream.advance(1)
                op = None
                clock = core.clock
                instructions = core.instructions
                ops_executed = core.ops_executed
                kind = 0
                steps_cell[0] += 1
            # Free-run through pure (core-local) ops, one chunk prefix
            # at a time.
            while ops_executed < target:
                steps = steps_cell[0]
                stop_steps = stop_cell[0]
                if steps == stop_steps:
                    break
                peeked = stream.peek_chunk()
                if peeked is None:
                    core.done = True
                    break
                chunk, pos = peeked
                if chunk is not cur_chunk:
                    cur_chunk = chunk
                    (
                        vpns,
                        lines,
                        l1sets,
                        l1tags,
                        l2sets,
                        l2tags,
                        l3sets,
                        l3tags,
                        cumw,
                        advs,
                        unmapped,
                    ) = _prep_chunk(
                        chunk, vpn_cache, base_cpi, l1_nsets, l2_nsets, l3_nsets
                    )
                    writes = chunk.writes
                    vaddrs = chunk.vaddrs
                limit = pos + (target - ops_executed)
                if stop_steps >= 0 and stop_steps - steps < limit - pos:
                    limit = pos + (stop_steps - steps)
                if limit > chunk.length:
                    limit = chunk.length
                # Segment-local mirrors of the age counters and
                # deferred stats (written back at segment end, before
                # any escape can observe them).
                t_age = t_age_cell[0]
                l1_age = l1_age_cell[0]
                l2_age = l2_age_cell[0]
                n_l1 = n_l2 = 0
                run_vpn = -1
                run_ages = None
                run_way = -1
                i = pos
                # The next op index whose page was unmapped at prep
                # time (``limit`` when none remain ahead): hoists the
                # mapped-ness check out of the per-op loop.
                nxt_un = limit
                if unmapped:
                    for u in unmapped:
                        if u >= i:
                            if u < limit:
                                nxt_un = u
                            break
                while i < limit:
                    if i == nxt_un:
                        # Unmapped at prep time — re-resolve: an
                        # earlier escape may have walked the page in
                        # by now (mappings are only added, so a hit
                        # here can never be stale).
                        ppn = vpn_cache.get(vpns[i])
                        if ppn is None:
                            kind = 1  # first touch: walk
                            break
                        line = (
                            (ppn << PAGE_SHIFT) | (vaddrs[i] & _PAGE_MASK)
                        ) >> LINE_SHIFT
                        lines[i] = line
                        l1sets[i] = line % l1_nsets
                        l1tags[i] = line // l1_nsets
                        l2sets[i] = line % l2_nsets
                        l2tags[i] = line // l2_nsets
                        l3sets[i] = line % l3_nsets
                        l3tags[i] = line // l3_nsets
                        nxt_un = limit
                        for u in unmapped:
                            if u > i:
                                if u < limit:
                                    nxt_un = u
                                break
                    vpn = vpns[i]
                    if vpn != run_vpn:
                        # New page run: one TLB probe covers the whole
                        # run (no invalidations exist, and pure ops
                        # never mutate TLB membership).
                        tidx = vpn % tlb_nsets
                        tway = t_way_of[tidx].get((pid, vpn))
                        if tway is None:
                            kind = 1  # translation event: walk
                            break
                        run_vpn = vpn
                        run_ages = t_ages[tidx]
                        run_way = tway
                    set1 = l1sets[i]
                    tag1 = l1tags[i]
                    ways1 = l1_way_of[set1]
                    way1 = ways1.get(tag1)
                    if way1 is not None:
                        # TLB-L1 + cache-L1 double hit: the scalar
                        # path's only mutations are two LRU touches,
                        # the dirty bit, two counters, and the base-CPI
                        # clock advance (stall is 0.0).
                        run_ages[run_way] = t_age
                        t_age += 1
                        l1_ages[set1][way1] = l1_age
                        l1_age += 1
                        if writes[i]:
                            l1_dirty[set1][way1] = True
                        n_l1 += 1
                        clock += advs[i]
                        i += 1
                        continue
                    way2 = l2_way_of[l2sets[i]].get(l2tags[i])
                    if way2 is None:
                        kind = 3  # L3 or memory traffic
                        break
                    ages1 = l1_ages[set1]
                    full = len(ways1) >= l1_ways
                    if full:
                        vway = ages1.index(min(ages1))
                        if l1_dirty[set1][vway]:
                            # The L1 fill would evict a dirty victim
                            # whose write-back reaches the controller:
                            # shared, but with a known shape — mark it
                            # for the inline ordered-turn path.  (The
                            # argmin and the dirty peek are
                            # non-mutating.)
                            kind = 2
                            break
                    # TLB-L1 hit + clean-victim cache-L2 hit: replicate
                    # translate's L1 hit, the L2 lookup hit, the L1
                    # fill, and the stalled advance.
                    run_ages[run_way] = t_age
                    t_age += 1
                    set2 = l2sets[i]
                    l2_ages[set2][way2] = l2_age
                    l2_age += 1
                    is_write = writes[i]
                    if is_write:
                        l2_dirty[set2][way2] = True
                    n_l2 += 1
                    tags1 = l1_tags[set1]
                    if full:
                        del ways1[tags1[vway]]
                    else:
                        vway = tags1.index(-1)
                    ways1[tag1] = vway
                    tags1[vway] = tag1
                    l1_dirty[set1][vway] = is_write
                    ages1[vway] = l1_age
                    l1_age += 1
                    clock += advs[i]
                    clock += l2_stall
                    i += 1
                # Segment end: write back age counters, flush deferred
                # counters (+= float(k) == k unit increments for
                # integer-valued floats; every pure op touches the TLB
                # exactly once, so its count is n_l1 + n_l2), advance
                # the drained pure prefix through the stream's one
                # consumption path.
                t_age_cell[0] = t_age
                l1_age_cell[0] = l1_age
                l2_age_cell[0] = l2_age
                if n_l1 or n_l2:
                    counters["tlb/l1_hits"] += float(n_l1 + n_l2)
                if n_l1:
                    counters["cache/l1_hits"] += float(n_l1)
                if n_l2:
                    counters["cache/l2_hits"] += float(n_l2)
                drained = i - pos
                if drained:
                    ops_executed += drained
                    steps_cell[0] = steps + drained
                    instructions += cumw[i] - cumw[pos]
                    stream.advance(drained)
                if kind:
                    idx = i
                    if kind == 1:
                        op = chunk.op_at(i)
                    break
            if kind == 0:
                # Target reached, stream done, or checkpoint boundary
                # with nothing in flight.
                if steps_cell[0] == stop_cell[0] and not core.done and (
                    ops_executed < target
                ):
                    continue  # poll at the loop head, keep going
                return
            # A shared op is in flight: it may only run once this core
            # holds the global minimum (clock, core_id) key.  Otherwise
            # park — flush and yield; the driver resumes this runner at
            # its turn, and the loop head re-checks the poll boundary
            # exactly as an in-place continuation does.
            if heap:
                head = heap[0]
                if clock > head[0] or (clock == head[0] and core_id > head[1]):
                    core.clock = clock
                    core.instructions = instructions
                    core.ops_executed = ops_executed
                    yield clock
    finally:
        # Every exit — target reached, park unwind (GeneratorExit), or
        # an exception mid-op — leaves the object graph at the last
        # consistent frontier.  An op fetched but not executed was
        # never advanced, so restores re-fetch it.
        core.clock = clock
        core.instructions = instructions
        core.ops_executed = ops_executed


# repro-hot
def run_to_targets(system, targets: Sequence[int]) -> None:
    """Batched equivalent of ``System._run_to_targets`` (see module doc).

    The driver owns the park heap: one entry per live core, keyed by
    ``(clock, core_id)``, carrying that core's suspended
    :func:`_core_runner` coroutine.  Popping the minimum and resuming
    it replays shared ops in exactly the scalar engine's global order;
    a runner that yields again goes back in keyed by its new clock, and
    a runner that returns (target reached or stream exhausted) drops
    out.
    """
    ckpt = system.checkpointer
    steps_cell = [system.steps_total]
    stop_cell = [_next_stop(ckpt, steps_cell[0]) if ckpt is not None else -1]
    counters = system.stats._counters
    heap: List[Tuple] = []
    runners = []
    for core in system.cores:
        if core.done or core.ops_executed >= targets[core.core_id]:
            continue
        runner = _core_runner(
            system, core, targets[core.core_id], heap, counters, ckpt,
            steps_cell, stop_cell,
        )
        runners.append(runner)
        heap.append((core.clock, core.core_id, runner))
    heapq.heapify(heap)
    heappush = heapq.heappush
    heappop = heapq.heappop
    try:
        while heap:
            entry = heappop(heap)
            parked = next(entry[2], None)
            if parked is not None:
                heappush(heap, (parked, entry[1], entry[2]))
    finally:
        # Deterministic unwind on any exit: close every runner (each
        # one's ``finally`` re-flushes its core; suspended runners were
        # already flushed before yielding, so this is idempotent).
        for runner in runners:
            runner.close()
        system.steps_total = steps_cell[0]
    if ckpt is not None and steps_cell[0] == stop_cell[0]:
        # The run ended exactly on a planned boundary (e.g. a cut point
        # equal to the final step count): scalar polls after its last
        # step, so fire the trailing poll on the fully flushed state.
        ckpt.on_step(system)
