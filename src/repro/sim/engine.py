"""The batched execution engine (``SystemConfig.engine = "batched"``).

The scalar scheduler in :meth:`repro.sim.system.System._run_to_targets`
pays the full Python dispatch chain — op fetch, ``ensure_mapped``, MMU
translate, hierarchy access, per-op result objects — for *every*
operation, even though most of them are pure L1-TLB + L1/L2-cache hits
that mutate nothing outside one core.  This engine drains those ops in
bulk and hands everything else to the unmodified scalar path
(:meth:`repro.sim.cpu.Core.execute`) in the exact global order the
scalar engine would use.

Equivalence contract (enforced by the pinned goldens and by
tests/integration/test_engine_equivalence.py):

1. **Op classification.**  An op is *pure* when it hits the L1 TLB and
   then either hits the L1 cache, or hits the L2 cache with a clean (or
   absent) L1 victim.  A pure op touches only the owning core's state —
   its TLB/L1/L2 LRU orders, dirty bits, clock, and op counts — plus
   global stats counters.  Every other op is *shared*: it reaches the
   walker, the shared L3, or the memory controller.
2. **Ordering.**  Pure ops of one core commute with every op of every
   other core: disjoint mutable state, and the counters they touch are
   pure event counts (each update is ``+= 1.0``, so any interleaving of
   the same increments yields the identical float).  Shared ops are the
   only ops whose relative order matters, and the scalar heap executes
   them exactly in sorted ``(clock-at-op, core_id)`` order (a k-way
   merge of per-core increasing key sequences).  The engine therefore
   lets each core free-run through pure ops and parks it in a heap,
   keyed by its pending shared op, so shared ops replay the scalar
   order bit-for-bit.  Per-core clock evolution — and hence every
   shared-op key — depends only on the outcomes of earlier shared ops,
   which are identical by induction.
3. **Hit semantics.**  The pure fast paths replicate the scalar hit
   paths' mutations exactly, in kind and in floating-point order.  The
   probes used to classify an op (``OrderedDict.get``, ``in``, peeking
   the LRU victim's dirty bit) are non-mutating, so escaping to
   ``Core.execute`` after a failed probe re-runs the full scalar path
   with zero double-mutation.  ``ensure_mapped`` is skipped on TLB
   hits: a VPN can only enter a TLB via a walk, walks only happen for
   mapped VPNs, and mappings are never removed.
4. **Checkpoints.**  Core-local state (clock, instructions, op counts,
   stream consumption) is flushed from locals to the object graph
   before every checkpointer poll, and a fetched-but-unexecuted shared
   op is *not* counted as consumed — so a checkpoint written mid-batch
   is a consistent between-ops frontier that resumes to the identical
   final digest (the per-phase op *sets* are fixed by the absolute
   targets, and shared order is preserved, so the end state cannot
   depend on where the cut landed).  Deterministic triggers (cut
   points, periodic writes) fire at exactly their configured step
   counts via :meth:`repro.snapshot.hooks.Checkpointer.next_trigger_step`;
   signal polls (wall-clock, inherently nondeterministic) happen every
   :data:`_POLL_STEPS` steps, aligned to the heartbeat mask so liveness
   heartbeats keep their cadence.

See docs/PERFORMANCE.md ("Batched engine") for the measured speedups
and docs/TESTING.md for the differential-harness workflow.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple

from repro.common.addr import LINE_SHIFT, PAGE_BYTES, PAGE_SHIFT
from repro.sim.hmc_base import RequestKind
from repro.snapshot.stream import ReplayStream

_WRITEBACK = RequestKind.WRITEBACK

_PAGE_MASK = PAGE_BYTES - 1

#: Steps between checkpointer polls when no cut point or periodic write
#: is due sooner.  Poll steps are multiples of this value so the scalar
#: engine's ``steps & 0xFF == 0`` heartbeat condition still fires.
_POLL_STEPS = 256


def _core_context(core) -> Tuple:
    """Hoist one core's fast-path invariants into a flat tuple.

    Everything here is fixed for the core's lifetime (the same
    invariants ``Core.__init__`` hoists for the scalar path), so the
    engine unpacks one tuple per scheduling turn instead of chasing
    attribute chains per op.  ``hmc.handle_request`` is deliberately
    *not* here: the sanitizer rebinds it on the instance, so the engine
    re-reads it around checkpoint writes.
    """
    l1_tlb = core.mmu.l1_tlb
    hierarchy = core.hierarchy
    l1 = hierarchy.l1[core.core_id]
    l2 = hierarchy.l2[core.core_id]
    stream = core.ops
    if isinstance(stream, ReplayStream):
        gen = stream._gen
    else:
        # Bare iterators (unit-test rigs) have no consumption counter to
        # maintain; drain them directly.
        gen = iter(stream)
        stream = None
    # The scalar L2-hit stall is outcome.latency_cycles / mlp where
    # latency_cycles == l1_latency + l2_latency: same ints, same single
    # float division, so the precomputed value is bit-identical.
    l2_stall = (hierarchy._l1_latency + hierarchy._l2_latency) / core._mlp
    return (
        gen,
        stream,
        l1_tlb._sets,
        l1_tlb.num_sets,
        l1._sets,
        l1.num_sets,
        l1.ways,
        l2._sets,
        l2.num_sets,
        core._pid,
        core._base_cpi,
        l2_stall,
    )


def _next_stop(ckpt, steps: int) -> int:
    """First step count at which the engine must pause for the checkpointer."""
    stop = (steps // _POLL_STEPS + 1) * _POLL_STEPS
    trigger = ckpt.next_trigger_step()
    if trigger is not None and trigger < stop:
        # A trigger at or below the current step fires at the next poll
        # opportunity (scalar fires such stale cuts on its next step too).
        stop = trigger if trigger > steps else steps
    return stop


# repro-hot
def run_to_targets(system, targets: Sequence[int]) -> None:
    """Batched equivalent of ``System._run_to_targets`` (see module doc)."""
    cores = system.cores
    ckpt = system.checkpointer
    steps = system.steps_total
    counters = system.stats._counters

    contexts: List[Tuple] = [_core_context(core) for core in cores]
    #: A fetched shared op per core, waiting for its global turn.
    pending: List[Optional[object]] = [None] * len(cores)
    #: True when the matching pending op is a dirty-victim L2 hit, whose
    #: only shared effect is the victim's write-back: at its turn the
    #: engine runs it inline instead of escaping to ``Core.execute``.
    pending_dirty: List[bool] = [False] * len(cores)
    heap = [
        (core.clock, core.core_id, core)
        for core in cores
        if not core.done and core.ops_executed < targets[core.core_id]
    ]
    heapq.heapify(heap)
    heappush = heapq.heappush
    heappop = heapq.heappop
    stop_steps = _next_stop(ckpt, steps) if ckpt is not None else -1

    try:
        while heap:
            _, core_id, core = heappop(heap)
            target = targets[core_id]
            (
                gen,
                stream,
                tlb_sets,
                tlb_nsets,
                l1_sets,
                l1_nsets,
                l1_ways,
                l2_sets,
                l2_nsets,
                pid,
                base_cpi,
                l2_stall,
            ) = contexts[core_id]
            clock = core.clock
            instructions = core.instructions
            ops_executed = core.ops_executed
            drained = 0
            op = pending[core_id]
            op_dirty = pending_dirty[core_id]
            pending[core_id] = None
            try:
                while True:
                    if steps == stop_steps:
                        # Checkpoint boundary (or signal poll): flush
                        # locals so the serialized graph is a consistent
                        # between-ops frontier, poll, re-plan.
                        core.clock = clock
                        core.instructions = instructions
                        core.ops_executed = ops_executed
                        if stream is not None:
                            stream.consumed += drained
                            drained = 0
                        system.steps_total = steps
                        ckpt.on_step(system)
                        stop_steps = _next_stop(ckpt, steps)
                    if op is not None:
                        if op_dirty:
                            # Dirty-victim L2 hit at its global turn: the
                            # classification probes are still valid (only
                            # other cores ran in between, and they cannot
                            # touch this core's TLB/L1/L2), so replicate
                            # the scalar path inline — work advance, TLB
                            # L1 hit, L2 hit, L1 fill evicting the dirty
                            # victim — and send the one shared effect,
                            # the victim write-back, to the controller.
                            work = op.instructions_before + 1
                            instructions += work
                            clock += work * base_cpi
                            vaddr = op.vaddr
                            vpn = vaddr >> PAGE_SHIFT
                            tkey = (pid, vpn)
                            tset = tlb_sets[vpn % tlb_nsets]
                            ppn = tset[tkey]
                            tset.move_to_end(tkey)
                            counters["tlb/l1_hits"] += 1.0
                            line = (
                                (ppn << PAGE_SHIFT) | (vaddr & _PAGE_MASK)
                            ) >> LINE_SHIFT
                            is_write = op.is_write
                            l2set = l2_sets[line % l2_nsets]
                            l2set.move_to_end(line // l2_nsets)
                            if is_write:
                                l2set[line // l2_nsets] = True
                            counters["cache/l2_hits"] += 1.0
                            set_index = line % l1_nsets
                            cset = l1_sets[set_index]
                            victim_tag, _ = cset.popitem(last=False)
                            cset[line // l1_nsets] = is_write
                            clock += l2_stall
                            # Flush before the controller call: the
                            # sanitizer may wrap handle_request and read
                            # system state (scalar order: clock is
                            # updated before write-backs drain).
                            core.clock = clock
                            core.instructions = instructions
                            core.ops_executed = ops_executed
                            core.hmc.handle_request(
                                int(clock),
                                victim_tag * l1_nsets + set_index,
                                True,
                                pid,
                                _WRITEBACK,
                            )
                            ops_executed += 1
                            op = None
                            op_dirty = False
                            drained += 1
                            steps += 1
                        else:
                            # The core's shared op, now at its global
                            # turn: run the full scalar path on the
                            # flushed core.
                            core.clock = clock
                            core.instructions = instructions
                            core.ops_executed = ops_executed
                            core.execute(op)
                            op = None
                            clock = core.clock
                            instructions = core.instructions
                            ops_executed = core.ops_executed
                            drained += 1
                            steps += 1
                    # Free-run through pure (core-local) ops.
                    while ops_executed < target:
                        if steps == stop_steps:
                            break
                        op = next(gen, None)
                        if op is None:
                            core.done = True
                            break
                        vaddr = op.vaddr
                        vpn = vaddr >> PAGE_SHIFT
                        tset = tlb_sets[vpn % tlb_nsets]
                        tkey = (pid, vpn)
                        ppn = tset.get(tkey)
                        if ppn is None:
                            op_dirty = False
                            break  # translation event: shared
                        line = (
                            (ppn << PAGE_SHIFT) | (vaddr & _PAGE_MASK)
                        ) >> LINE_SHIFT
                        set_index = line % l1_nsets
                        cset = l1_sets[set_index]
                        tag = line // l1_nsets
                        work = op.instructions_before + 1
                        if tag in cset:
                            # TLB-L1 + cache-L1 double hit: the scalar
                            # path's only mutations are two LRU touches,
                            # the dirty bit, two counters, and the
                            # base-CPI clock advance (stall is 0.0).
                            tset.move_to_end(tkey)
                            counters["tlb/l1_hits"] += 1.0
                            cset.move_to_end(tag)
                            if op.is_write:
                                cset[tag] = True
                            counters["cache/l1_hits"] += 1.0
                            instructions += work
                            clock += work * base_cpi
                            ops_executed += 1
                            drained += 1
                            steps += 1
                            op = None
                            continue
                        l2set = l2_sets[line % l2_nsets]
                        tag2 = line // l2_nsets
                        if tag2 not in l2set:
                            op_dirty = False
                            break  # L3 or memory traffic: shared
                        evict = len(cset) >= l1_ways
                        if evict and next(iter(cset.values())):
                            # The L1 fill would evict a dirty victim
                            # whose write-back reaches the controller:
                            # shared, but with a known shape — mark it
                            # for the inline ordered-turn path.  (Peeking
                            # the LRU-first value is non-mutating.)
                            op_dirty = True
                            break
                        # TLB-L1 hit + clean-victim cache-L2 hit:
                        # replicate translate's L1 hit, the L2 lookup
                        # hit, the L1 fill, and the stalled advance.
                        is_write = op.is_write
                        tset.move_to_end(tkey)
                        counters["tlb/l1_hits"] += 1.0
                        l2set.move_to_end(tag2)
                        if is_write:
                            l2set[tag2] = True
                        counters["cache/l2_hits"] += 1.0
                        if evict:
                            cset.popitem(last=False)
                        cset[tag] = is_write
                        instructions += work
                        clock += work * base_cpi
                        clock += l2_stall
                        ops_executed += 1
                        drained += 1
                        steps += 1
                        op = None
                    if op is None:
                        # Target reached, stream done, or checkpoint
                        # boundary with nothing in flight.
                        if steps == stop_steps and not core.done and (
                            ops_executed < target
                        ):
                            continue  # poll at the loop head, keep going
                        break
                    # A shared op is in flight: it may only run once this
                    # core holds the global minimum (clock, core_id) key.
                    if heap:
                        head = heap[0]
                        if clock > head[0] or (
                            clock == head[0] and core_id > head[1]
                        ):
                            pending[core_id] = op
                            pending_dirty[core_id] = op_dirty
                            op = None
                            heappush(heap, (clock, core_id, core))
                            break
                    # This core is the global minimum: execute in place.
            finally:
                if op is not None:
                    # An exception unwound between fetch and execution:
                    # the op was never consumed (restores re-fetch it).
                    pending[core_id] = op
                    pending_dirty[core_id] = op_dirty
                core.clock = clock
                core.instructions = instructions
                core.ops_executed = ops_executed
                if stream is not None:
                    stream.consumed += drained
    finally:
        system.steps_total = steps
    if ckpt is not None and steps == stop_steps:
        # The run ended exactly on a planned boundary (e.g. a cut point
        # equal to the final step count): scalar polls after its last
        # step, so fire the trailing poll on the fully flushed state.
        ckpt.on_step(system)
