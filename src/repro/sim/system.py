"""Full-system assembly and the simulation loop.

:func:`build_system` wires a complete machine — OS, caches, TLBs/walkers,
one memory-controller scheme, and one core per workload part — and
:meth:`System.run` drives it: cores execute in global time order (always
the core with the smallest local clock steps next), a warm-up window
populates caches/TLBs/history tables, then statistics are reset and the
measured window produces a :class:`repro.sim.metrics.RunMetrics`.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Type

from repro.baselines.cameo import CameoHmc
from repro.baselines.mempod import MemPodHmc
from repro.baselines.pom import PomHmc
from repro.common.config import CheckConfig, FaultConfig, SystemConfig
from repro.common.errors import ConfigError, SimulationError
from repro.common.stats import StatsRegistry
from repro.cache.hierarchy import CacheHierarchy
from repro.core.hmc import PageSeerHmc
from repro.sim import engine as batched_engine
from repro.sim.cpu import Core
from repro.sim.hmc_base import HmcBase, NoSwapHmc, RequestKind
from repro.sim.metrics import RunMetrics, collect_metrics
from repro.snapshot.stream import ReplayStream
from repro.vm.mmu import Mmu
from repro.vm.os_model import OsModel
from repro.vm.walker import PageWalkCache, PageWalker
from repro.workloads.base import WorkloadSpec

SCHEMES: Dict[str, Type[HmcBase]] = {
    "pageseer": PageSeerHmc,
    "pom": PomHmc,
    "mempod": MemPodHmc,
    "cameo": CameoHmc,
    "noswap": NoSwapHmc,
}


class RunProgress:
    """Where a :meth:`System.run` call is in its phase sequence.

    Persisted inside checkpoints so a restored system can finish the
    interrupted ``run()`` with identical semantics: ``targets`` are
    *absolute* per-core op counts for the current phase (warm-up or
    measure), and the measurement baselines are captured once at the
    warm-up/measure boundary, exactly as the uninterrupted path does.
    """

    __slots__ = (
        "measure_ops",
        "warmup_ops",
        "phase",
        "targets",
        "baseline_instr",
        "baseline_clock",
    )

    def __init__(self, measure_ops: int, warmup_ops: int):
        self.measure_ops = measure_ops
        self.warmup_ops = warmup_ops
        #: "warmup" -> "measure" -> "done".
        self.phase = "warmup"
        self.targets: List[int] = []
        self.baseline_instr: List[int] = []
        self.baseline_clock: List[float] = []

    def __repr__(self) -> str:
        return (
            f"RunProgress(phase={self.phase!r}, measure={self.measure_ops}, "
            f"warmup={self.warmup_ops}, targets={self.targets})"
        )


class System:
    """One simulated machine bound to one workload."""

    def __init__(self, config: SystemConfig, scheme: str, workload: WorkloadSpec, scale: int):
        if scheme not in SCHEMES:
            raise ConfigError(f"unknown scheme {scheme!r}; pick from {sorted(SCHEMES)}")
        self.config = config
        self.scheme = scheme
        self.workload = workload
        self.scale = scale
        self.stats = StatsRegistry()
        #: Which simulation-loop engine drives :meth:`_run_to_targets`.
        #: ``batched`` and ``scalar`` are bit-identical by contract (the
        #: differential equivalence suite and the goldens enforce it).
        self.engine = config.engine
        self.os_model = OsModel(config.memory)
        self.hmc: HmcBase = SCHEMES[scheme](config, self.os_model, self.stats)
        self.hierarchy = CacheHierarchy(config, self.stats)
        self.cores: List[Core] = []
        self._build_cores()
        #: Operations executed across all cores since construction; the
        #: checkpoint machinery uses it as a deterministic position marker.
        self.steps_total = 0
        #: The phase machine of an in-flight :meth:`run`, or None outside
        #: one.  Travels inside checkpoints so ``resume_run`` can finish.
        self.progress: Optional[RunProgress] = None
        #: An armed :class:`repro.snapshot.hooks.Checkpointer`, or None.
        #: Never serialized (detached around every checkpoint write).
        self.checkpointer = None
        #: The runtime sanitizer (``repro.check``), or None at level "off".
        #: None means *nothing* was wrapped: the hot path is untouched.
        self.checker = None
        if config.check.enabled:
            from repro.check import CheckManager

            self.checker = CheckManager(config.check)
            self.checker.attach(self)

    def _build_cores(self) -> None:
        use_hints = self.scheme == "pageseer"
        for core_id in range(self.config.cores):
            process = self.os_model.create_process(pid=core_id + 1)
            pwc = PageWalkCache(self.config.pwc_entries_per_level)
            walker = PageWalker(
                core_id,
                self.hierarchy,
                pwc,
                self.config.pwc_latency_cycles,
                self.stats,
                memory_fetch=self._walker_memory_fetch,
                mmu_hint=self.hmc.mmu_hint if use_hints else None,
            )
            mmu = Mmu(core_id, self.config, walker, self.stats)
            stream = ReplayStream(
                self.workload, core_id, self.config.seed, self.scale,
                mode=self.config.stream,
            )
            self.cores.append(
                Core(
                    core_id,
                    self.config,
                    mmu,
                    self.hierarchy,
                    self.hmc,
                    process,
                    stream,
                    self.stats,
                )
            )

    def _walker_memory_fetch(
        self,
        now: int,
        line_spa: int,
        is_write: bool,
        is_pte: bool,
        target_ppn: Optional[int],
        pid: int,
    ) -> int:
        if is_pte:
            return self.hmc.handle_pte_fetch(now, line_spa, target_ppn, pid)
        kind = RequestKind.WRITEBACK if is_write else RequestKind.PTE
        return self.hmc.handle_request(now, line_spa, is_write, pid, kind)

    # -- driving --------------------------------------------------------------
    # repro-hot
    def _run_to_targets(self, targets: Sequence[int]) -> None:
        """Advance cores in time order until each hits its absolute target.

        Scheduling is a heap keyed on ``(clock, core_id)``: the core with
        the smallest local clock steps next, and equal clocks are broken
        by core id — explicitly, so the interleaving is deterministic and
        independent of how the ready set happens to be ordered in memory.

        The heap is a pure function of (cores, targets): every live core
        below its target is in it, keyed by unique ``(clock, core_id)``.
        That is what makes mid-loop checkpoints bit-identical on resume —
        the restored process rebuilds the heap from the restored cores and
        pops in exactly the order this process would have.  The
        checkpointer is therefore polled at the one safe point per step,
        after the core stepped and was re-queued.

        This scalar loop is the reference implementation; under
        ``engine: batched`` the call dispatches to
        :func:`repro.sim.engine.run_to_targets`, which executes the
        identical op order with bulk fast paths (see that module's
        equivalence contract).
        """
        if self.engine == "batched":
            batched_engine.run_to_targets(self, targets)
            return
        heap = [
            (core.clock, core.core_id, core)
            for core in self.cores
            if not core.done and core.ops_executed < targets[core.core_id]
        ]
        heapq.heapify(heap)
        heappush = heapq.heappush
        heappop = heapq.heappop
        ckpt = self.checkpointer
        steps = self.steps_total
        while heap:
            _, core_id, core = heappop(heap)
            core.step()
            steps += 1
            if not core.done and core.ops_executed < targets[core_id]:
                heappush(heap, (core.clock, core_id, core))
            if ckpt is not None:
                self.steps_total = steps
                ckpt.on_step(self)
        self.steps_total = steps

    def run_ops(self, ops_per_core: int) -> None:
        """Advance every core by *ops_per_core* operations in time order.

        This window is not resumable on its own: checkpoints taken here
        restore mid-window, but only :meth:`run` records enough phase
        state (:class:`RunProgress`) for :meth:`resume_run` to finish a
        full warm-up/measure sequence.
        """
        self._run_to_targets([core.ops_executed + ops_per_core for core in self.cores])

    def _enter_measure(self) -> None:
        """Cross the warm-up/measure boundary: reset stats, take baselines."""
        progress = self.progress
        self.stats.reset()
        progress.baseline_instr = [core.instructions for core in self.cores]
        progress.baseline_clock = [core.clock for core in self.cores]
        progress.targets = [
            core.ops_executed + progress.measure_ops for core in self.cores
        ]
        progress.phase = "measure"

    def _advance(self) -> RunMetrics:
        """Drive the :class:`RunProgress` phase machine to completion."""
        progress = self.progress
        if progress.phase == "warmup":
            self._run_to_targets(progress.targets)
            self._enter_measure()
        if progress.phase == "measure":
            self._run_to_targets(progress.targets)
            progress.phase = "done"

        end_time = max(core.now for core in self.cores)
        self.hmc.finalize(end_time)
        if self.checker is not None:
            self.checker.finalize(end_time)

        instructions = [
            core.instructions - base
            for core, base in zip(self.cores, progress.baseline_instr)
        ]
        cycles = [
            core.clock - base
            for core, base in zip(self.cores, progress.baseline_clock)
        ]
        return collect_metrics(
            self, instructions_per_core=instructions, cycles_per_core=cycles
        )

    def run(self, measure_ops: int, warmup_ops: int = 0) -> RunMetrics:
        """Warm up, reset statistics, run the measured window, and report."""
        progress = RunProgress(measure_ops=measure_ops, warmup_ops=warmup_ops)
        self.progress = progress
        if warmup_ops > 0:
            progress.targets = [
                core.ops_executed + warmup_ops for core in self.cores
            ]
        else:
            self._enter_measure()
        return self._advance()

    def resume_run(self) -> RunMetrics:
        """Finish a :meth:`run` restored from a checkpoint.

        Produces the metrics the interrupted process would have: the
        remaining warm-up and/or measured ops execute in the identical
        order (see :meth:`_run_to_targets`), against the restored stats
        and baselines.
        """
        if self.progress is None:
            raise SimulationError(
                "nothing to resume: this system has no run in progress"
            )
        if self.progress.phase == "done":
            raise SimulationError(
                "nothing to resume: the checkpointed run already completed"
            )
        return self._advance()


def build_system(
    scheme: str,
    workload: WorkloadSpec,
    scale: int = 256,
    seed: int = 0,
    model_contention: bool = True,
    config_mutator: Optional[Callable[[SystemConfig], SystemConfig]] = None,
    check: Optional[CheckConfig] = None,
    faults: Optional[FaultConfig] = None,
    engine: Optional[str] = None,
) -> System:
    """Build a ready-to-run system for one scheme and one workload.

    ``config_mutator`` lets callers adjust the scaled config (ablations:
    disable correlation, disable the bandwidth heuristic, ...).
    ``check`` overrides the sanitizer configuration after the mutator ran
    (convenience for the CLI's ``--check`` flags and for tests),
    ``faults`` does the same for fault injection (``--faults``), and
    ``engine`` picks the simulation-loop engine (``--engine``).
    """
    import dataclasses

    from repro.common.config import default_system_config

    config = default_system_config(
        scale=scale,
        cores=workload.cores,
        seed=seed,
        model_contention=model_contention,
    )
    if config_mutator is not None:
        config = config_mutator(config)
    if check is not None:
        config = dataclasses.replace(config, check=check)
    if faults is not None:
        config = dataclasses.replace(config, faults=faults)
    if engine is not None:
        config = dataclasses.replace(config, engine=engine)

    # Fail early with a clear message if the workload cannot fit: data
    # pages plus page tables plus controller metadata must fit the scaled
    # physical memory, or first-touch allocation dies mid-run.
    data_pages = workload.footprint_pages(scale)
    overhead_estimate = workload.cores * 8 + 64  # page tables + metadata
    if data_pages + overhead_estimate > config.memory.total_pages:
        raise ConfigError(
            f"workload {workload.name} needs ~{data_pages} data pages but the "
            f"scale-1/{scale} memory has only {config.memory.total_pages}; "
            f"use a smaller scale"
        )
    return System(config, scheme, workload, scale)
