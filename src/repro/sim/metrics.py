"""Run metrics: the quantities the paper's figures are drawn from."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class RunMetrics:
    """Everything a single (scheme, workload) run produces."""

    scheme: str
    workload: str
    suite: str
    instructions: int
    #: Mean CPU cycles across cores in the measured window.
    cycles: float
    #: Mean of per-core IPCs.
    ipc: float
    #: Average main-memory access time (controller arrival -> data back).
    ammat: float
    #: Requests serviced by each memory module (Figure 7).
    serviced_dram: int
    serviced_nvm: int
    serviced_buffer: int
    #: Swap-effectiveness classification (Figure 8).
    positive_accesses: int
    negative_accesses: int
    neutral_accesses: int
    #: Swap activity (Figures 10, 11).
    swaps_total: int
    swaps_mmu: int
    swaps_pct: int
    swaps_regular: int
    #: Prefetch-swap accuracy (Figure 9).
    prefetch_accurate: int
    prefetch_inaccurate: int
    #: Page-walk behaviour (Figure 12).
    tlb_misses: int
    pte_llc_misses: int
    mmu_driver_hit_rate: float
    #: Remap-table stall time (Figure 13).
    remap_wait_cycles: float
    remap_misses: int
    #: Fault injection & graceful degradation (``repro.faults``); all zero
    #: when injection is off.
    faults_injected: int = 0
    fault_retries: int = 0
    swap_aborts: int = 0
    quarantined_pages: int = 0
    degraded_services: int = 0
    raw: Dict[str, float] = field(default_factory=dict, repr=False)

    # -- derived quantities ----------------------------------------------------
    @property
    def total_serviced(self) -> int:
        return self.serviced_dram + self.serviced_nvm + self.serviced_buffer

    @property
    def dram_share(self) -> float:
        return self.serviced_dram / self.total_serviced if self.total_serviced else 0.0

    @property
    def nvm_share(self) -> float:
        return self.serviced_nvm / self.total_serviced if self.total_serviced else 0.0

    @property
    def buffer_share(self) -> float:
        return self.serviced_buffer / self.total_serviced if self.total_serviced else 0.0

    @property
    def positive_share(self) -> float:
        total = self.positive_accesses + self.negative_accesses + self.neutral_accesses
        return self.positive_accesses / total if total else 0.0

    @property
    def negative_share(self) -> float:
        total = self.positive_accesses + self.negative_accesses + self.neutral_accesses
        return self.negative_accesses / total if total else 0.0

    @property
    def neutral_share(self) -> float:
        total = self.positive_accesses + self.negative_accesses + self.neutral_accesses
        return self.neutral_accesses / total if total else 0.0

    @property
    def swaps_per_kilo_instruction(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.swaps_total / self.instructions

    @property
    def prefetch_swaps(self) -> int:
        return self.swaps_mmu + self.swaps_pct

    @property
    def prefetch_swap_share(self) -> float:
        return self.prefetch_swaps / self.swaps_total if self.swaps_total else 0.0

    @property
    def mmu_swap_share(self) -> float:
        return self.swaps_mmu / self.swaps_total if self.swaps_total else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        total = self.prefetch_accurate + self.prefetch_inaccurate
        return self.prefetch_accurate / total if total else 0.0

    @property
    def pte_cache_miss_rate(self) -> float:
        """Fraction of TLB-miss PTE requests that missed L2+L3 (Figure 12)."""
        return self.pte_llc_misses / self.tlb_misses if self.tlb_misses else 0.0


def collect_metrics(
    system,
    instructions_per_core: List[int],
    cycles_per_core: List[float],
) -> RunMetrics:
    """Distil a finished measured window into a :class:`RunMetrics`."""
    stats = system.stats
    scheme = system.scheme

    if scheme == "pageseer":
        swaps_mmu = int(stats.get("swap_driver/swaps_mmu"))
        swaps_pct = int(stats.get("swap_driver/swaps_pct"))
        swaps_regular = int(stats.get("swap_driver/swaps_regular"))
        swaps_total = int(stats.get("swap_driver/swaps"))
    elif scheme == "pom":
        swaps_mmu = swaps_pct = 0
        swaps_regular = swaps_total = int(stats.get("pom/swaps"))
    elif scheme == "mempod":
        swaps_mmu = swaps_pct = 0
        swaps_regular = swaps_total = int(stats.get("mempod/migrations"))
    elif scheme == "cameo":
        swaps_mmu = swaps_pct = 0
        swaps_regular = swaps_total = int(stats.get("cameo/swaps"))
    else:
        swaps_mmu = swaps_pct = swaps_regular = swaps_total = 0

    ipcs = [
        instr / cycles
        for instr, cycles in zip(instructions_per_core, cycles_per_core)
        if cycles > 0
    ]
    mean_ipc = sum(ipcs) / len(ipcs) if ipcs else 0.0
    mean_cycles = (
        sum(cycles_per_core) / len(cycles_per_core) if cycles_per_core else 0.0
    )

    driver = getattr(system.hmc, "mmu_driver", None)
    mmu_driver_hit_rate = driver.intercept_hit_rate if driver is not None else 0.0

    faults_injected = int(
        stats.get("faults/transient_dram")
        + stats.get("faults/transient_nvm")
        + stats.get("faults/transfer_dram")
        + stats.get("faults/transfer_nvm")
        + stats.get("faults/uncorrectable_reads")
    )
    fault_retries = int(
        stats.get("faults/retries") + stats.get("swap_driver/swap_retries")
    )
    swap_aborts = int(
        stats.get("swap_driver/aborted_swaps")
        + stats.get("pom/aborted_swaps")
        + stats.get("mempod/aborted_migrations")
        + stats.get("cameo/aborted_swaps")
    )
    degraded_services = int(stats.get("faults/degraded_services"))

    return RunMetrics(
        scheme=scheme,
        workload=system.workload.name,
        suite=system.workload.suite,
        instructions=sum(instructions_per_core),
        cycles=mean_cycles,
        ipc=mean_ipc,
        ammat=stats.mean("hmc/ammat"),
        serviced_dram=int(stats.get("hmc/serviced_dram")),
        serviced_nvm=int(stats.get("hmc/serviced_nvm")),
        serviced_buffer=int(stats.get("hmc/serviced_buffer")),
        positive_accesses=int(stats.get("hmc/positive_accesses")),
        negative_accesses=int(stats.get("hmc/negative_accesses")),
        neutral_accesses=int(stats.get("hmc/neutral_accesses")),
        swaps_total=swaps_total,
        swaps_mmu=swaps_mmu,
        swaps_pct=swaps_pct,
        swaps_regular=swaps_regular,
        prefetch_accurate=int(stats.get("hmc/prefetch_swaps_accurate")),
        prefetch_inaccurate=int(stats.get("hmc/prefetch_swaps_inaccurate")),
        tlb_misses=int(stats.get("tlb/misses")),
        pte_llc_misses=int(stats.get("walk/pte_llc_misses")),
        mmu_driver_hit_rate=mmu_driver_hit_rate,
        remap_wait_cycles=stats.get("hmc/remap_wait_cycles"),
        remap_misses=int(stats.get("hmc/remap_misses")),
        faults_injected=faults_injected,
        fault_retries=fault_retries,
        swap_aborts=swap_aborts,
        quarantined_pages=int(stats.get("faults/quarantined_pages")),
        degraded_services=degraded_services,
        raw=stats.as_dict(),
    )
