"""System assembly: cores, MMUs, caches, and a pluggable memory controller.

:class:`repro.sim.system.System` wires one complete machine for a chosen
hybrid-memory scheme ("pageseer", "pom", "mempod", "noswap") and runs
workloads on it; :mod:`repro.sim.metrics` distils the statistics the
paper's figures are built from.
"""

from repro.sim.hmc_base import HmcBase, NoSwapHmc, RequestKind
from repro.sim.cpu import Core, MemoryOp
from repro.sim.system import System, build_system
from repro.sim.metrics import RunMetrics

__all__ = [
    "HmcBase",
    "NoSwapHmc",
    "RequestKind",
    "Core",
    "MemoryOp",
    "System",
    "build_system",
    "RunMetrics",
]
