"""The memory-controller interface every hybrid-memory scheme implements.

The base class owns the things all schemes share: the two memory devices,
a reserved DRAM region for in-memory controller metadata, and the
accounting that the paper's figures are built from —

* where each request was serviced (DRAM / NVM / swap buffer), Figure 7;
* positive / negative / neutral classification against the page's *home*
  location, Figure 8 (an access is positive when a swap let it hit DRAM
  although its home is NVM, negative when a swap pushed it to NVM although
  its home is DRAM);
* AMMAT — the time from arrival at the controller until the data returns
  (Figure 14, bottom);
* remap-table waiting time (Figure 13).
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.common.addr import LINES_PER_PAGE
from repro.common.config import SystemConfig
from repro.common.stats import StatsRegistry
from repro.faults.injector import FaultInjector
from repro.faults.recovery import FaultRecovery
from repro.mem.device import AccessResult
from repro.mem.main_memory import MainMemory
from repro.vm.os_model import OsModel


class RequestKind(enum.Enum):
    """Why a request reached the memory controller."""

    DEMAND = "demand"
    WRITEBACK = "writeback"
    PTE = "pte"


#: Literal stats-key tables: these run once per serviced request, and the
#: closed key set keeps the namespace auditable by the RL002 lint rule.
_SERVICED_KEYS = {
    "dram": "hmc/serviced_dram",
    "nvm": "hmc/serviced_nvm",
    "buffer": "hmc/serviced_buffer",
}
_REQUEST_KIND_KEYS = {
    RequestKind.DEMAND: "hmc/requests_demand",
    RequestKind.WRITEBACK: "hmc/requests_writeback",
    RequestKind.PTE: "hmc/requests_pte",
}


class _RecoveringFinish:
    """Finish-time adapter over the fault-recovery access path.

    A module-level class (not a closure) so a controller with recovery
    armed still pickles: the held bound method travels through the
    snapshot memo to the restored recovery object.
    """

    __slots__ = ("_access",)

    def __init__(self, access: Callable[..., AccessResult]):
        self._access = access

    def __call__(
        self, now: int, line: int, is_write: bool, bulk: bool = False
    ) -> int:
        return self._access(now, line, is_write, bulk).finish


class HmcBase:
    """Common machinery for all memory-controller schemes."""

    scheme_name = "base"

    def __init__(self, config: SystemConfig, os_model: OsModel, stats: StatsRegistry):
        self.config = config
        self.os_model = os_model
        self.stats = stats
        self.memory = MainMemory(config.memory, stats, config.model_contention)
        #: Fault recovery (``repro.faults``): None unless injection is on,
        #: so the no-faults request path is exactly one branch wider.
        self.fault_recovery: Optional[FaultRecovery] = None
        if config.faults.enabled:
            injector = FaultInjector(config.faults, stats)
            self.memory.attach_injector(injector)
            self.fault_recovery = FaultRecovery(
                config.faults, injector, self.memory, stats
            )
        #: The per-line access entry point, resolved once at construction:
        #: bound straight to the device path when faults are off, so the
        #: common case pays no per-access "is recovery armed?" branch.
        self.mem_access = (
            self.memory.access
            if self.fault_recovery is None
            else self.fault_recovery.access
        )
        #: Finish-time-only twin of ``mem_access`` for the demand hot path:
        #: bound straight to :meth:`MainMemory.access_finish` when faults
        #: are off (no AccessResult allocation); with recovery armed it
        #: falls back to the full recovery path and drops the result.
        if self.fault_recovery is None:
            self.mem_access_finish = self.memory.access_finish
        else:
            self.mem_access_finish = _RecoveringFinish(self.fault_recovery.access)
        self.dram_pages = config.memory.dram_pages
        self.total_pages = config.memory.total_pages
        # With no fault recovery armed, request paths pick the device
        # themselves (one range compare the MainMemory router would
        # repeat) and call its access_finish directly.
        self._fast_mem = self.fault_recovery is None
        self._dram_dev = self.memory.dram
        self._nvm_dev = self.memory.nvm
        self._nvm_line_base = config.memory.dram_pages * LINES_PER_PAGE
        self._dram_serviced = 0
        self._total_serviced = 0
        self._metadata_lines: list = []
        # Pre-resolved stats handles for the per-request accounting path.
        self._count_serviced = {
            source: stats.counter(_SERVICED_KEYS[source]) for source in _SERVICED_KEYS
        }
        self._count_kind = {
            kind: stats.counter(_REQUEST_KIND_KEYS[kind]) for kind in _REQUEST_KIND_KEYS
        }
        self._observe_ammat = stats.observer("hmc/ammat")
        self._count_positive = stats.counter("hmc/positive_accesses")
        self._count_negative = stats.counter("hmc/negative_accesses")
        self._count_neutral = stats.counter("hmc/neutral_accesses")
        self._count_metadata = stats.counter("hmc/metadata_accesses")

    # -- metadata region ------------------------------------------------------
    def reserve_metadata(self, pages: int) -> None:
        """Claim DRAM pages for in-memory tables (PRT/PCT live in DRAM)."""
        ppn_list = self.os_model.reserve_dram_pages(pages)
        self._metadata_lines = [
            ppn * LINES_PER_PAGE + offset
            for ppn in ppn_list
            for offset in range(LINES_PER_PAGE)
        ]

    # repro-hot
    def metadata_access(self, now: int, key: int, is_write: bool = False) -> int:
        """Access the DRAM-resident metadata line for *key*; returns finish."""
        if not self._metadata_lines:
            raise RuntimeError("reserve_metadata was never called")
        line = self._metadata_lines[key % len(self._metadata_lines)]
        finish = self.mem_access_finish(now, line, is_write)
        self._count_metadata()
        return finish

    # -- the fault-aware access path --------------------------------------------
    #: ``mem_access(now, line_spa, is_write, bulk=False) -> AccessResult``
    #: accesses one line, absorbing injected faults when injection is on.
    #: Every scheme's demand/PTE/metadata line accesses go through it.
    #: It is bound once in ``__init__``: with faults disabled it *is*
    #: :meth:`MainMemory.access` (zero per-access recovery branch); with
    #: faults enabled it is :meth:`FaultRecovery.access`, which retries
    #: transient faults with exponential backoff and degrades (never
    #: drops) the rest, so callers always get a finish time back.
    mem_access: Callable[..., AccessResult]

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        """The armed injector, or None in normal runs."""
        return None if self.fault_recovery is None else self.fault_recovery.injector

    # -- the request interface (schemes override handle_request) ---------------
    def handle_request(
        self,
        now: int,
        line_spa: int,
        is_write: bool,
        pid: int,
        kind: RequestKind = RequestKind.DEMAND,
    ) -> int:
        """Service one LLC-miss line request; returns the finish time."""
        raise NotImplementedError

    def handle_pte_fetch(
        self, now: int, line_spa: int, target_ppn: Optional[int], pid: int
    ) -> int:
        """Service an LLC miss for a line holding a PTE entry.

        Baselines treat it as a normal read; PageSeer intercepts it in the
        MMU Driver (Section III-C4).
        """
        return self.handle_request(now, line_spa, False, pid, RequestKind.PTE)

    def mmu_hint(
        self, now: int, pte_line_spa: int, pid: int, vpn: int, target_ppn: int
    ) -> None:
        """Receive the MMU's fourth-level signal; baselines ignore it."""

    def finalize(self, now: int) -> None:
        """Called once when the measured run ends (close open bookkeeping)."""

    # -- shared accounting -------------------------------------------------------
    def home_is_dram(self, page_spa: int) -> bool:
        """True if the OS placed this page in DRAM (its home location)."""
        return page_spa < self.dram_pages

    # repro-hot
    def account_service(
        self,
        now: int,
        finish: int,
        page_spa: int,
        serviced_from: str,
        kind: RequestKind,
    ) -> None:
        """Record one serviced request for Figures 7, 8, and 14."""
        self._total_serviced += 1
        if serviced_from == "dram":
            self._dram_serviced += 1
        self._count_serviced[serviced_from]()
        self._count_kind[kind]()
        if kind is not RequestKind.WRITEBACK:
            # AMMAT covers processor-visible requests; background
            # write-backs drain asynchronously and would distort it.
            self._observe_ammat(finish - now)

        home_dram = page_spa < self.dram_pages
        if not home_dram and serviced_from != "nvm":
            self._count_positive()
        elif home_dram and serviced_from == "nvm":
            self._count_negative()
        else:
            self._count_neutral()

    # repro-hot
    def record_remap_wait(self, cycles: int) -> None:
        """Record time a request waited for a remap-table fill (Figure 13)."""
        if cycles > 0:
            self.stats.add("hmc/remap_wait_cycles", cycles)
            self.stats.add("hmc/remap_misses")

    #: Requests that must have been observed before the bandwidth
    #: heuristic may act; with fewer samples the DRAM share is noise.
    bandwidth_heuristic_min_samples = 1000

    @property
    def dram_service_share(self) -> float:
        """Fraction of requests serviced by DRAM so far (Swap Driver heuristic).

        Reported as 0 until enough requests were seen for the share to be
        meaningful, so the Swap Driver's 95% rule cannot trip on startup
        noise.
        """
        if self._total_serviced < self.bandwidth_heuristic_min_samples:
            return 0.0
        return self._dram_serviced / self._total_serviced


class NoSwapHmc(HmcBase):
    """The reference controller: pages stay at their home location forever.

    Used both as the Figure 8 reference semantics and as a sanity baseline.
    """

    scheme_name = "noswap"

    # repro-hot
    def handle_request(
        self,
        now: int,
        line_spa: int,
        is_write: bool,
        pid: int,
        kind: RequestKind = RequestKind.DEMAND,
    ) -> int:
        """Service one LLC-miss line request; returns the finish time.

        The Figure 2 pipeline degenerates to one device access here, so
        the whole path — routing plus serviced-request accounting — is
        inlined against the pre-bound device handles and the live stats
        dicts, the same flattening the PageSeer controller's request
        path uses (the goldens pin the result).  With pages pinned to
        their home location, serviced-from always equals home, so every
        access is neutral for the Figure 8 classification.
        """
        bulk = kind is RequestKind.WRITEBACK
        dram = line_spa < self._nvm_line_base
        if self._fast_mem:
            if dram:
                finish = self._dram_dev.access_finish(now, line_spa, is_write, bulk)
            else:
                finish = self._nvm_dev.access_finish(
                    now, line_spa - self._nvm_line_base, is_write, bulk
                )
        else:
            finish = self.mem_access_finish(now, line_spa, is_write, bulk)
        stats = self.stats
        counters = stats._counters
        self._total_serviced += 1
        if dram:
            self._dram_serviced += 1
            counters["hmc/serviced_dram"] += 1.0
        else:
            counters["hmc/serviced_nvm"] += 1.0
        if kind is RequestKind.DEMAND:
            counters["hmc/requests_demand"] += 1.0
        elif bulk:
            counters["hmc/requests_writeback"] += 1.0
        else:
            counters["hmc/requests_pte"] += 1.0
        if not bulk:
            # AMMAT covers processor-visible requests; background
            # write-backs drain asynchronously and would distort it.
            ammat = finish - now
            stats._sums["hmc/ammat"] += ammat
            stats._counts["hmc/ammat"] += 1
            previous = stats._maxima.get("hmc/ammat")
            if previous is None or ammat > previous:
                stats._maxima["hmc/ammat"] = ammat
        counters["hmc/neutral_accesses"] += 1.0
        return finish

    def handle_pte_fetch(
        self, now: int, line_spa: int, target_ppn: Optional[int], pid: int
    ) -> int:
        return self.handle_request(now, line_spa, False, pid, RequestKind.PTE)
