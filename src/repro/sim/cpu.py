"""The analytic core model (see DESIGN.md Section 2, core substitution).

A core consumes a stream of :class:`MemoryOp` items produced by a workload
generator.  Non-memory work advances the clock by ``base_cpi`` cycles per
instruction; address translation and cache/memory latencies add stall
cycles, divided by an MLP factor that stands in for the out-of-order
window's ability to overlap misses.  IPC differences between schemes are
then driven by main-memory access time — exactly the coupling the paper's
Figure 14 relies on.
"""

from __future__ import annotations

from typing import Iterator

from repro.common.addr import LINE_SHIFT, PAGE_BYTES, PAGE_SHIFT
from repro.common.config import SystemConfig
from repro.common.stats import StatsRegistry
from repro.cache.hierarchy import CacheHierarchy
from repro.sim.hmc_base import HmcBase, RequestKind
from repro.vm.mmu import Mmu
from repro.vm.os_model import Process


class MemoryOp:
    """One memory reference emitted by a workload generator.

    A plain ``__slots__`` class rather than a (frozen) dataclass: workload
    generators construct one of these per reference on the hot path, and
    dataclass ``__init__``/``__setattr__`` machinery costs measurably more
    than direct slot stores.  Equality and hashing match the old dataclass
    semantics (trace round-trip tests compare op lists).
    """

    __slots__ = ("vaddr", "is_write", "instructions_before")

    def __init__(self, vaddr: int, is_write: bool, instructions_before: int = 4):
        self.vaddr = vaddr
        self.is_write = is_write
        #: Non-memory instructions executed since the previous reference.
        self.instructions_before = instructions_before

    def __repr__(self) -> str:
        return (
            f"MemoryOp(vaddr={self.vaddr:#x}, is_write={self.is_write}, "
            f"instructions_before={self.instructions_before})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MemoryOp):
            return NotImplemented
        return (
            self.vaddr == other.vaddr
            and self.is_write == other.is_write
            and self.instructions_before == other.instructions_before
        )

    def __hash__(self) -> int:
        return hash((self.vaddr, self.is_write, self.instructions_before))


#: Store misses stall the core less than load misses (store buffers drain
#: in the background); this factor scales their contribution.
_STORE_STALL_FRACTION = 0.25

_PAGE_MASK = PAGE_BYTES - 1


class Core:
    """One simulated core bound to a process and an op stream."""

    __slots__ = (
        "core_id",
        "config",
        "mmu",
        "hierarchy",
        "hmc",
        "process",
        "ops",
        "stats",
        "clock",
        "instructions",
        "ops_executed",
        "done",
        "_base_cpi",
        "_mlp",
        "_pid",
        "_page_table",
        "_ensure_mapped",
        "_translate",
        "_access",
    )

    def __init__(
        self,
        core_id: int,
        config: SystemConfig,
        mmu: Mmu,
        hierarchy: CacheHierarchy,
        hmc: HmcBase,
        process: Process,
        ops: Iterator[MemoryOp],
        stats: StatsRegistry,
    ):
        self.core_id = core_id
        self.config = config
        self.mmu = mmu
        self.hierarchy = hierarchy
        self.hmc = hmc
        self.process = process
        self.ops = ops
        self.stats = stats
        self.clock = 0.0
        self.instructions = 0
        self.ops_executed = 0
        self.done = False
        # Invariant lookups hoisted out of step(): config and process are
        # fixed for the core's lifetime, and translate/access are never
        # wrapped after construction (unlike hmc.handle_request, which the
        # sanitizer and analysis layers rebind on the instance — step()
        # must keep reading that attribute dynamically).
        self._base_cpi = config.core.base_cpi
        self._mlp = config.core.memory_level_parallelism
        self._pid = process.pid
        self._page_table = process.page_table
        self._ensure_mapped = process.page_table.ensure_mapped
        self._translate = mmu.translate
        self._access = hierarchy.access

    @property
    def now(self) -> int:
        return int(self.clock)

    # repro-hot
    def step(self) -> bool:
        """Execute one memory operation; returns False when the stream ends."""
        op = next(self.ops, None)
        if op is None:
            self.done = True
            return False
        self.execute(op)
        return True

    # repro-hot
    def execute(self, op: MemoryOp) -> None:
        """Execute one already-fetched operation (the full scalar path).

        Split out of :meth:`step` so the batched engine can escape to it:
        the engine fetches ops itself, services pure TLB/cache hits
        inline, and hands everything else here.  The body is the one
        source of truth for per-op semantics — both engines run exactly
        this code on every non-hit operation.
        """
        work = op.instructions_before + 1
        self.instructions += work
        clock = self.clock + work * self._base_cpi
        now = int(clock)

        # Address translation (first touch allocates the frame, as the OS
        # would on a minor fault).
        vaddr = op.vaddr
        self._ensure_mapped(vaddr >> PAGE_SHIFT)
        translation = self._translate(now, self._page_table, vaddr)
        if translation.source == "walk":
            # A TLB miss blocks the access; hit latencies are folded into
            # the base CPI.
            clock += translation.latency
            now = int(clock)

        line = ((translation.ppn << PAGE_SHIFT) | (vaddr & _PAGE_MASK)) >> LINE_SHIFT
        is_write = op.is_write
        outcome = self._access(self.core_id, line, is_write)

        stall = 0.0
        hit_level = outcome.hit_level
        if hit_level is None:
            finish = self.hmc.handle_request(
                now + outcome.latency_cycles,
                line,
                is_write,
                self._pid,
                RequestKind.DEMAND,
            )
            memory_latency = finish - now
            if is_write:
                stall = memory_latency * _STORE_STALL_FRACTION / self._mlp
            else:
                stall = memory_latency / self._mlp
        elif hit_level != "l1":
            stall = outcome.latency_cycles / self._mlp
        clock += stall
        self.clock = clock

        # Dirty victims displaced by the fill drain to memory in the
        # background (they consume bandwidth but do not stall the core).
        writebacks = outcome.writebacks
        if writebacks:
            wb_now = int(clock)
            for dirty_line in writebacks:
                self.hmc.handle_request(
                    wb_now, dirty_line, True, self._pid, RequestKind.WRITEBACK
                )

        self.ops_executed += 1

    @property
    def ipc(self) -> float:
        if self.clock <= 0:
            return 0.0
        return self.instructions / self.clock
