"""The analytic core model (see DESIGN.md Section 2, core substitution).

A core consumes a stream of :class:`MemoryOp` items produced by a workload
generator.  Non-memory work advances the clock by ``base_cpi`` cycles per
instruction; address translation and cache/memory latencies add stall
cycles, divided by an MLP factor that stands in for the out-of-order
window's ability to overlap misses.  IPC differences between schemes are
then driven by main-memory access time — exactly the coupling the paper's
Figure 14 relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.common.addr import line_of, page_of, page_offset
from repro.common.config import SystemConfig
from repro.common.stats import StatsRegistry
from repro.cache.hierarchy import CacheHierarchy
from repro.sim.hmc_base import HmcBase, RequestKind
from repro.vm.mmu import Mmu
from repro.vm.os_model import Process


@dataclass(frozen=True)
class MemoryOp:
    """One memory reference emitted by a workload generator."""

    vaddr: int
    is_write: bool
    #: Non-memory instructions executed since the previous reference.
    instructions_before: int = 4


#: Store misses stall the core less than load misses (store buffers drain
#: in the background); this factor scales their contribution.
_STORE_STALL_FRACTION = 0.25


class Core:
    """One simulated core bound to a process and an op stream."""

    def __init__(
        self,
        core_id: int,
        config: SystemConfig,
        mmu: Mmu,
        hierarchy: CacheHierarchy,
        hmc: HmcBase,
        process: Process,
        ops: Iterator[MemoryOp],
        stats: StatsRegistry,
    ):
        self.core_id = core_id
        self.config = config
        self.mmu = mmu
        self.hierarchy = hierarchy
        self.hmc = hmc
        self.process = process
        self.ops = ops
        self.stats = stats
        self.clock = 0.0
        self.instructions = 0
        self.ops_executed = 0
        self.done = False

    @property
    def now(self) -> int:
        return int(self.clock)

    def step(self) -> bool:
        """Execute one memory operation; returns False when the stream ends."""
        op = next(self.ops, None)
        if op is None:
            self.done = True
            return False

        work = op.instructions_before + 1
        self.instructions += work
        self.clock += work * self.config.core.base_cpi
        now = self.now

        # Address translation (first touch allocates the frame, as the OS
        # would on a minor fault).
        vpn = page_of(op.vaddr)
        self.process.page_table.ensure_mapped(vpn)
        translation = self.mmu.translate(now, self.process.page_table, op.vaddr)
        if translation.source == "walk":
            # A TLB miss blocks the access; hit latencies are folded into
            # the base CPI.
            self.clock += translation.latency
            now = self.now

        paddr = (translation.ppn << 12) | page_offset(op.vaddr)
        outcome = self.hierarchy.access(self.core_id, line_of(paddr), op.is_write)

        stall = 0.0
        mlp = self.config.core.memory_level_parallelism
        if outcome.hit_level in ("l2", "l3"):
            stall = outcome.latency_cycles / mlp
        elif outcome.llc_miss:
            finish = self.hmc.handle_request(
                now + outcome.latency_cycles,
                line_of(paddr),
                op.is_write,
                self.process.pid,
                RequestKind.DEMAND,
            )
            memory_latency = finish - now
            if op.is_write:
                stall = memory_latency * _STORE_STALL_FRACTION / mlp
            else:
                stall = memory_latency / mlp
        self.clock += stall

        # Dirty victims displaced by the fill drain to memory in the
        # background (they consume bandwidth but do not stall the core).
        for dirty_line in outcome.writebacks:
            self.hmc.handle_request(
                self.now, dirty_line, True, self.process.pid, RequestKind.WRITEBACK
            )

        self.ops_executed += 1
        return True

    @property
    def ipc(self) -> float:
        if self.clock <= 0:
            return 0.0
        return self.instructions / self.clock
