"""Throughput benchmarking: ``python -m repro bench``.

The bench harness is the measurement infrastructure every performance
change is judged against.  It times the simulator's measured window
(``System.run_ops``) over a scheme × workload grid and writes a
machine-readable ``BENCH_<label>.json`` with ops/sec per configuration,
wall time, and the git revision, so CI can archive the trajectory and
fail on regressions against a committed baseline (``--compare``).

Protocol, per configuration:

1. build the system (not timed — construction cost is not throughput);
2. run a short warm-up window (populates caches/TLBs, not timed);
3. time ``run_ops(measure_ops)`` with ``time.perf_counter``;
4. repeat, keep the *best* repeat (least scheduler noise), and record a
   digest of the final stats so optimization work can be cross-checked
   for behavioural drift right from the bench output.

See docs/PERFORMANCE.md for how to read and refresh baselines.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro import persist
from repro.common.errors import PersistError

#: Default grid: every scheme over one representative workload.  milcx4
#: (hot/cold at four cores) exercises swaps on every scheme without the
#: long tail of the full Table III suite.
DEFAULT_WORKLOADS = ["milcx4"]

#: Sizing used unless overridden; ``--quick`` shrinks the measured
#: window so the whole grid finishes in CI-smoke time.
DEFAULT_SCALE = 1024
DEFAULT_WARMUP_OPS = 500
DEFAULT_MEASURE_OPS = 6000
DEFAULT_REPEATS = 3
QUICK_MEASURE_OPS = 2000
QUICK_REPEATS = 2

#: CI gate: fail when a configuration loses more than this fraction of
#: its baseline ops/sec.  Generous on purpose — runner-to-runner noise
#: is real; genuine hot-path regressions blow well past it.
DEFAULT_MAX_REGRESSION = 0.30

#: Thread-count knobs pinned to 1 before any timing.  The simulator's
#: hot loops are single-threaded Python; a numpy/BLAS runtime that
#: spins up a worker pool only adds scheduler noise to the measured
#: window (and the chunk prep kernel's vectors are far too small to
#: profit from threads).  Pinned with ``setdefault`` so an explicit
#: operator override still wins — the document records what was in
#: effect either way.
THREAD_PIN_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def pin_thread_env() -> Dict[str, str]:
    """Pin the BLAS/numpy thread pools to 1; returns the effective pins.

    Must run before the first timed window (ideally before numpy spins
    up its backend).  Returns the variable -> value mapping actually in
    effect, which :func:`run_bench` embeds in the document so two bench
    documents can be compared knowing their threading was equal.
    """
    return {var: os.environ.setdefault(var, "1") for var in THREAD_PIN_VARS}


def _numpy_version() -> Optional[str]:
    """The numpy version backing the prep kernels (None when absent)."""
    try:
        import numpy
    except ImportError:  # pragma: no cover - the image bakes numpy in
        return None
    return numpy.__version__


def git_revision() -> str:
    """The current git revision, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def stats_digest(system) -> str:
    """A stable digest of the full stats state (drift cross-check)."""
    payload = json.dumps(system.stats.as_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def measure_config(
    scheme: str,
    workload_name: str,
    *,
    scale: int,
    warmup_ops: int,
    measure_ops: int,
    seed: int,
    repeats: int,
    engine: Optional[str] = None,
) -> Dict[str, object]:
    """Time one scheme/workload configuration; returns the result record.

    ``engine`` picks the simulation-loop engine (default: the config
    default, ``batched``).  The record carries the engine and the stats
    digest, so a ``scalar`` and a ``batched`` row of the same
    configuration can be cross-checked for bit-identity straight from
    bench output.
    """
    from repro.sim.system import build_system
    from repro.workloads import workload_by_name

    workload = workload_by_name(workload_name)
    total_ops = measure_ops * workload.cores
    best_elapsed: Optional[float] = None
    wall_total = 0.0
    digest = ""
    for _ in range(max(1, repeats)):
        system = build_system(scheme, workload, scale=scale, seed=seed,
                              engine=engine)
        system.run_ops(warmup_ops)
        start = time.perf_counter()
        system.run_ops(measure_ops)
        elapsed = time.perf_counter() - start
        wall_total += elapsed
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed = elapsed
        digest = stats_digest(system)
    assert best_elapsed is not None
    return {
        "ops_per_sec": round(total_ops / best_elapsed, 1),
        "wall_seconds_best": round(best_elapsed, 4),
        "wall_seconds_total": round(wall_total, 4),
        "ops": total_ops,
        "repeats": max(1, repeats),
        "engine": engine or "batched",
        "stats_digest": digest,
    }


def profile_config(
    scheme: str,
    workload_name: str,
    *,
    scale: int,
    warmup_ops: int,
    measure_ops: int,
    seed: int,
    top: int,
) -> str:
    """cProfile one configuration's measured window; returns the report."""
    import cProfile
    import io
    import pstats

    from repro.sim.system import build_system
    from repro.workloads import workload_by_name

    workload = workload_by_name(workload_name)
    system = build_system(scheme, workload, scale=scale, seed=seed)
    system.run_ops(warmup_ops)
    profiler = cProfile.Profile()
    profiler.enable()
    system.run_ops(measure_ops)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()


def result_key(scheme: str, workload_name: str, engine: str) -> str:
    """The results-dict key for one grid cell.

    The default engine (``batched``) keeps the historical bare
    ``scheme/workload`` key so new documents stay comparable against
    pre-engine baselines; other engines get an ``@engine`` suffix.
    """
    base = f"{scheme}/{workload_name}"
    return base if engine == "batched" else f"{base}@{engine}"


def run_bench(
    schemes: List[str],
    workloads: List[str],
    *,
    scale: int,
    warmup_ops: int,
    measure_ops: int,
    seed: int,
    repeats: int,
    label: str,
    quick: bool,
    engines: Optional[List[str]] = None,
) -> Dict[str, object]:
    """Run the full grid (scheme × workload × engine); returns the document."""
    engines = engines or ["batched"]
    env_pins = pin_thread_env()
    results: Dict[str, Dict[str, object]] = {}
    grid_start = time.perf_counter()
    for workload_name in workloads:
        for scheme in schemes:
            for engine in engines:
                results[result_key(scheme, workload_name, engine)] = (
                    measure_config(
                        scheme,
                        workload_name,
                        scale=scale,
                        warmup_ops=warmup_ops,
                        measure_ops=measure_ops,
                        seed=seed,
                        repeats=repeats,
                        engine=engine,
                    )
                )
    return {
        "label": label,
        "git_rev": git_revision(),
        "quick": quick,
        "params": {
            "scale": scale,
            "warmup_ops": warmup_ops,
            "measure_ops": measure_ops,
            "seed": seed,
            "repeats": repeats,
            "engines": list(engines),
        },
        "env": {
            "thread_pins": env_pins,
            "numpy_version": _numpy_version(),
        },
        "results": results,
        "total_wall_seconds": round(time.perf_counter() - grid_start, 2),
    }


def compare_documents(
    current: Dict[str, object],
    baseline: Dict[str, object],
    max_regression: float,
) -> List[str]:
    """Regressions of *current* vs *baseline* beyond the tolerance.

    Only configurations present in both documents are compared; a missing
    configuration is a grid change, not a regression.
    """
    problems: List[str] = []
    baseline_results = baseline.get("results", {})
    current_results = current.get("results", {})
    for key, entry in sorted(baseline_results.items()):
        now = current_results.get(key)
        if now is None:
            continue
        old_rate = float(entry["ops_per_sec"])
        new_rate = float(now["ops_per_sec"])
        floor = old_rate * (1.0 - max_regression)
        if new_rate < floor:
            problems.append(
                f"{key}: {new_rate:.1f} ops/sec is "
                f"{1.0 - new_rate / old_rate:.0%} below baseline "
                f"{old_rate:.1f} (tolerance {max_regression:.0%})"
            )
    return problems


def trend_table(documents: List[Dict[str, object]]) -> List[str]:
    """A throughput-trajectory table across bench documents.

    One column per document (in the given order — callers pass them
    sorted by file name, so the committed ``BENCH_baseline.json``,
    ``BENCH_pr6.json``, ... sequence reads left to right), one row per
    configuration key, with a trailing ratio of last column to first.
    Configurations missing from a document print ``-`` (grid changes
    are expected across PRs).
    """
    if not documents:
        return ["no bench documents found"]
    labels = [str(doc.get("label", "?")) for doc in documents]
    keys: List[str] = []
    for doc in documents:
        for key in doc.get("results", {}):
            if key not in keys:
                keys.append(key)
    keys.sort()
    if not keys:
        return ["no configurations in any bench document"]
    width = max(12, *(len(label) for label in labels)) + 1
    key_width = max(len(key) for key in keys) + 1
    lines = [
        "".join([f"{'configuration':<{key_width}}"]
                + [f"{label:>{width}}" for label in labels]
                + [f"{'last/first':>12}"])
    ]
    for key in keys:
        cells = []
        rates: List[Optional[float]] = []
        for doc in documents:
            entry = doc.get("results", {}).get(key)
            rate: Optional[float] = None
            if isinstance(entry, dict):
                try:
                    rate = float(entry["ops_per_sec"])  # type: ignore[arg-type]
                except (KeyError, TypeError, ValueError):
                    rate = None  # a half-written row prints as absent
            if rate is None:
                cells.append(f"{'-':>{width}}")
                rates.append(None)
            else:
                cells.append(f"{rate:>{width}.1f}")
                rates.append(rate)
        present = [rate for rate in rates if rate is not None]
        ratio = (
            f"{present[-1] / present[0]:>11.2f}x" if len(present) >= 2 else
            f"{'-':>12}"
        )
        lines.append("".join([f"{key:<{key_width}}"] + cells + [ratio]))
    return lines


def load_trend_documents(bench_dir: Path) -> List[Dict[str, object]]:
    """All readable ``BENCH_*.json`` documents under *bench_dir*, by name.

    Unreadable, corrupt (checksum-failing), or schema-broken documents
    are skipped with a one-line warning — one rotted file must not take
    down the whole trajectory table.
    """
    documents: List[Dict[str, object]] = []
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        try:
            doc = persist.read_json(path, site="bench")
        except (OSError, PersistError) as exc:
            print(f"skipping {path}: {exc}", file=sys.stderr)
            continue
        if not isinstance(doc.get("results"), dict):
            print(f"skipping {path}: not a bench document "
                  f"(no results table)", file=sys.stderr)
            continue
        documents.append(doc)
    return documents


def delta_report(
    current: Dict[str, object], baseline: Dict[str, object]
) -> List[str]:
    """Per-configuration (and therefore per-engine) deltas vs a baseline.

    One line per configuration present in both documents, keyed exactly
    like the results dict — so a grid run with several engines reports
    each engine's delta separately instead of folding them together.
    Purely informational; :func:`compare_documents` owns the gate.
    """
    lines: List[str] = []
    baseline_results = baseline.get("results", {})
    current_results = current.get("results", {})
    for key, entry in sorted(baseline_results.items()):
        now = current_results.get(key)
        if now is None:
            continue
        old_rate = float(entry["ops_per_sec"])
        new_rate = float(now["ops_per_sec"])
        change = new_rate / old_rate - 1.0 if old_rate else 0.0
        lines.append(
            f"{key:30s} {old_rate:>10.1f} -> {new_rate:>10.1f} ops/sec "
            f"({change:+.1%})"
        )
    return lines


# -- CLI glue (wired into repro.cli's subcommand table) ----------------------
def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--schemes", nargs="*", default=None,
                        help="schemes to bench (default: all)")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help=f"workloads to bench (default: {DEFAULT_WORKLOADS})")
    parser.add_argument("--scale", type=int, default=DEFAULT_SCALE,
                        help="system down-scaling factor")
    parser.add_argument("--warmup-ops", type=int, default=DEFAULT_WARMUP_OPS,
                        help="untimed warm-up operations per core")
    parser.add_argument("--ops", type=int, default=None,
                        help="timed operations per core "
                             f"(default {DEFAULT_MEASURE_OPS}, "
                             f"quick {QUICK_MEASURE_OPS})")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed repeats per configuration; best wins "
                             f"(default {DEFAULT_REPEATS}, quick {QUICK_REPEATS})")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--engines", nargs="+", default=None,
                        choices=["scalar", "batched"], metavar="ENGINE",
                        help="engines to bench each configuration under "
                             "(default: batched and scalar); the batched "
                             "rows keep the bare scheme/workload keys, "
                             "scalar rows get an @scalar suffix")
    parser.add_argument("--quick", action="store_true",
                        help="CI-smoke sizing (smaller window, fewer repeats)")
    parser.add_argument("--label", default="local",
                        help="output name: BENCH_<label>.json")
    parser.add_argument("--out-dir", default=".",
                        help="directory for the BENCH_<label>.json output")
    parser.add_argument("--profile", type=int, default=None, metavar="N",
                        help="also cProfile each configuration and print the "
                             "top N functions by cumulative time")
    parser.add_argument("--compare", default=None, metavar="BASELINE_JSON",
                        help="fail if any shared configuration regresses "
                             "beyond --max-regression vs this baseline")
    parser.add_argument("--max-regression", type=float,
                        default=DEFAULT_MAX_REGRESSION,
                        help="tolerated fractional ops/sec loss for --compare")
    parser.add_argument("--trend", action="store_true",
                        help="print the throughput trajectory across the "
                             "committed BENCH_*.json documents instead of "
                             "running the grid")
    parser.add_argument("--bench-dir", default="benchmarks",
                        help="directory scanned by --trend "
                             "(default: benchmarks/)")


def command_bench(args: argparse.Namespace) -> int:
    from repro.sim.system import SCHEMES

    if args.trend:
        bench_dir = Path(args.bench_dir)
        if not bench_dir.is_dir():
            print(f"error: --trend directory {bench_dir} does not exist",
                  file=sys.stderr)
            return 1
        for line in trend_table(load_trend_documents(bench_dir)):
            print(line)
        return 0

    schemes = args.schemes if args.schemes else sorted(SCHEMES)
    for scheme in schemes:
        if scheme not in SCHEMES:
            print(f"unknown scheme {scheme!r}; pick from {sorted(SCHEMES)}")
            return 2
    workloads = args.workloads if args.workloads else list(DEFAULT_WORKLOADS)
    measure_ops = args.ops
    if measure_ops is None:
        measure_ops = QUICK_MEASURE_OPS if args.quick else DEFAULT_MEASURE_OPS
    repeats = args.repeats
    if repeats is None:
        repeats = QUICK_REPEATS if args.quick else DEFAULT_REPEATS

    engines = args.engines if args.engines else ["batched", "scalar"]

    document = run_bench(
        schemes,
        workloads,
        scale=args.scale,
        warmup_ops=args.warmup_ops,
        measure_ops=measure_ops,
        seed=args.seed,
        repeats=repeats,
        label=args.label,
        quick=args.quick,
        engines=engines,
    )
    results = document["results"]
    for key, entry in results.items():  # type: ignore[union-attr]
        print(f"{key:30s} {entry['ops_per_sec']:>10.1f} ops/sec "
              f"(best of {entry['repeats']}, digest {entry['stats_digest']})")

    # Cross-engine bit-identity straight from the bench digests: a scalar
    # and a batched row of the same cell must agree (the equivalence
    # suite owns the real proof; this catches drift in perf runs early).
    identical = True
    for scheme in schemes:
        for workload_name in workloads:
            digests = {
                results[result_key(scheme, workload_name, engine)]["stats_digest"]
                for engine in engines
                if result_key(scheme, workload_name, engine) in results
            }
            if len(digests) > 1:
                identical = False
                print(f"WARNING: engine digest mismatch for "
                      f"{scheme}/{workload_name}: {sorted(digests)}",
                      file=sys.stderr)
    if len(engines) > 1 and identical:
        print(f"engine digests identical across {'/'.join(engines)}")
    print(f"total wall time {document['total_wall_seconds']}s "
          f"at rev {document['git_rev']}")

    out_path = Path(args.out_dir) / f"BENCH_{args.label}.json"
    # Atomic + checksummed: a killed bench run must never leave a torn
    # JSON where the next --compare expects a baseline, and later bit-rot
    # is detected instead of silently compared against.
    try:
        persist.write_json(out_path, document, site="bench", indent=2)
    except PersistError as exc:
        print(f"error: could not write {out_path}: {exc}", file=sys.stderr)
        return 1
    print(f"wrote {out_path}")

    if args.profile is not None:
        for workload_name in workloads:
            for scheme in schemes:
                print(f"\n--- profile: {scheme}/{workload_name} "
                      f"(top {args.profile} by cumulative time) ---")
                print(profile_config(
                    scheme,
                    workload_name,
                    scale=args.scale,
                    warmup_ops=args.warmup_ops,
                    measure_ops=measure_ops,
                    seed=args.seed,
                    top=args.profile,
                ))

    if args.compare is not None:
        try:
            baseline = persist.read_json(args.compare, site="bench")
        except FileNotFoundError:
            print(f"error: baseline {args.compare} does not exist; generate "
                  f"one with `repro bench --label <name>` on the reference "
                  f"revision, or drop --compare", file=sys.stderr)
            return 1
        except (OSError, PersistError) as exc:
            print(f"error: baseline {args.compare} is unreadable "
                  f"({exc}); regenerate it with `repro bench`",
                  file=sys.stderr)
            return 1
        if not isinstance(baseline, dict) or "results" not in baseline:
            print(f"error: baseline {args.compare} is not a bench document "
                  f"(no 'results' key); regenerate it with `repro bench`",
                  file=sys.stderr)
            return 1
        for line in delta_report(document, baseline):
            print(f"  {line}")
        problems = compare_documents(document, baseline, args.max_regression)
        if problems:
            print(f"{len(problems)} throughput regression(s) "
                  f"vs {args.compare}:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"no regressions beyond {args.max_regression:.0%} "
              f"vs {args.compare}")
    return 0
