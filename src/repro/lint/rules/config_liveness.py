"""RL003 — config liveness: every knob must steer something.

A dataclass field in ``common/config.py`` that nothing reads is worse than
dead code: it looks like a tunable (an ablation author will flip it and
re-run a figure) while actually steering nothing.  Conversely, an attribute
read of a field no config class declares is a crash waiting for the first
code path that reaches it — or, with ``getattr`` defaults upstream, a
silently ignored setting.

The rule parses every ``@dataclass`` in ``common/config.py``, then

* marks a field **dead** when its name never appears as an attribute load
  anywhere in the project (the check is name-based and therefore
  conservative: a same-named attribute on any object keeps the knob
  alive);
* tracks variables/attributes whose type is statically known to be a
  config class (``config.pageseer`` chains, ``self.ps = config.pageseer``
  aliases, annotated parameters) and flags reads of **undeclared fields**
  on them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.lint.engine import (
    ProjectContext,
    Rule,
    Severity,
    SourceFile,
    register_rule,
)

#: Names assumed to hold a SystemConfig wherever they appear.
_ROOT_CONFIG_NAMES = ("config", "cfg")

_CONFIG_FILE_SUFFIX = "common/config.py"


@dataclass
class ConfigClass:
    """One ``@dataclass`` parsed out of ``common/config.py``."""

    name: str
    source: SourceFile
    node: ast.ClassDef
    #: field name -> (AnnAssign node, annotation class name or None).
    fields: Dict[str, Tuple[ast.AnnAssign, Optional[str]]] = field(default_factory=dict)
    properties: Set[str] = field(default_factory=set)
    methods: Set[str] = field(default_factory=set)

    def declares(self, attr: str) -> bool:
        return (
            attr in self.fields
            or attr in self.properties
            or attr in self.methods
            or attr.startswith("__")
        )


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _annotation_class(annotation: ast.AST) -> Optional[str]:
    """The class name an annotation refers to, unwrapping Optional/str."""
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.strip("\"'")
    if isinstance(annotation, ast.Subscript):  # Optional[X] / list[X]
        if isinstance(annotation.slice, ast.Tuple) and annotation.slice.elts:
            return _annotation_class(annotation.slice.elts[0])
        return _annotation_class(annotation.slice)
    return None


@register_rule
class ConfigLivenessRule(Rule):
    """RL003: dead config knobs and reads of undeclared config fields."""

    rule_id = "RL003"
    name = "config-liveness"
    default_severity = Severity.WARNING

    def collect(self, source: SourceFile, ctx: ProjectContext) -> None:
        """All work happens in :meth:`finalize` (needs the full file set)."""

    # -- model building ----------------------------------------------------
    def _parse_config_classes(self, source: SourceFile) -> Dict[str, ConfigClass]:
        classes: Dict[str, ConfigClass] = {}
        for node in source.tree.body:
            if not isinstance(node, ast.ClassDef) or not _is_dataclass_decorated(node):
                continue
            info = ConfigClass(name=node.name, source=source, node=node)
            for statement in node.body:
                if isinstance(statement, ast.AnnAssign) and isinstance(
                    statement.target, ast.Name
                ):
                    info.fields[statement.target.id] = (
                        statement,
                        _annotation_class(statement.annotation),
                    )
                elif isinstance(statement, ast.FunctionDef):
                    decorators = {
                        d.id for d in statement.decorator_list if isinstance(d, ast.Name)
                    }
                    if "property" in decorators:
                        info.properties.add(statement.name)
                    else:
                        info.methods.add(statement.name)
            classes[node.name] = info
        return classes

    @staticmethod
    def _global_attribute_loads(ctx: ProjectContext) -> Set[str]:
        loads: Set[str] = set()
        for source in ctx.files:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                    loads.add(node.attr)
        return loads

    # -- typed receiver resolution ----------------------------------------
    def _field_type(
        self, classes: Dict[str, ConfigClass], class_name: str, attr: str
    ) -> Optional[str]:
        info = classes.get(class_name)
        if info is None:
            return None
        entry = info.fields.get(attr)
        if entry is None:
            return None
        annotated = entry[1]
        return annotated if annotated in classes else None

    def _resolve(
        self,
        expr: ast.AST,
        classes: Dict[str, ConfigClass],
        aliases: Dict[str, str],
    ) -> Optional[str]:
        """The config class *expr* statically evaluates to, if known."""
        if isinstance(expr, ast.Name):
            if expr.id in aliases:
                return aliases[expr.id]
            if expr.id in _ROOT_CONFIG_NAMES and "SystemConfig" in classes:
                return "SystemConfig"
            return None
        if isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                return aliases.get(f"self.{expr.attr}")
            base = self._resolve(expr.value, classes, aliases)
            if base is None:
                return None
            return self._field_type(classes, base, expr.attr)
        if isinstance(expr, ast.Call):
            func = expr.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in classes:
                return name
            if name in ("replace",) and expr.args:
                return self._resolve(expr.args[0], classes, aliases)
        return None

    def _build_aliases(
        self, source: SourceFile, classes: Dict[str, ConfigClass]
    ) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in list(node.args.args) + list(node.args.kwonlyargs):
                    if arg.annotation is None:
                        continue
                    annotated = _annotation_class(arg.annotation)
                    if annotated in classes:
                        aliases[arg.arg] = annotated
        # Two passes so `self.ps = config.pageseer` chains resolve even when
        # ast.walk visits uses before definitions.
        for _ in range(2):
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Assign):
                    continue
                resolved = self._resolve(node.value, classes, aliases)
                if resolved is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases[target.id] = resolved
                    elif (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        aliases[f"self.{target.attr}"] = resolved
        return aliases

    # -- the checks --------------------------------------------------------
    def finalize(self, ctx: ProjectContext) -> None:
        config_source = next(
            (s for s in ctx.files if s.relpath.endswith(_CONFIG_FILE_SUFFIX)), None
        )
        if config_source is None:
            return
        classes = self._parse_config_classes(config_source)
        if not classes:
            return

        for source in ctx.files:
            aliases = self._build_aliases(source, classes)
            for node in ast.walk(source.tree):
                if not (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                ):
                    continue
                base = self._resolve(node.value, classes, aliases)
                if base is None:
                    continue
                info = classes[base]
                if not info.declares(node.attr):
                    ctx.emit(
                        self, source, node,
                        f"read of undeclared field {base}.{node.attr}: no "
                        f"such field/property on {base} in common/config.py "
                        "— a typo here crashes (or is silently defaulted) "
                        "at run time",
                    )

        loads = self._global_attribute_loads(ctx)
        for class_name, info in sorted(classes.items()):
            for field_name, (node, _) in sorted(info.fields.items()):
                if field_name in loads:
                    continue
                ctx.emit(
                    self, info.source, node,
                    f"dead config knob {class_name}.{field_name}: declared "
                    "in common/config.py but never read anywhere — wire it "
                    "into the model or delete it",
                )
