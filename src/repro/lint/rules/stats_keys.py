"""RL002 — stats discipline: every figure's counter must be trustworthy.

Every number in the paper's figures flows through
:class:`repro.common.stats.StatsRegistry` under a slash-separated string
key.  A typo'd key silently splits one counter into two; a key recorded
but never consumed is dead weight; a dynamically-built key on the hot path
defeats static auditing (and costs an f-string per event).  This rule:

* collects every key recorded via ``stats.add(...)`` / ``stats.observe(...)``
  — or resolved once into a bound hot-path handle via ``stats.counter(...)``
  / ``stats.observer(...)`` — and every key read via
  ``stats.get/mean/total/count/maximum(...)``;
* flags non-literal keys at record sites inside the simulation-critical
  packages (f-strings with a literal prefix are tracked as *patterns* so
  their expansions still participate in liveness checking).  The blessed
  alternative is a **literal-key table**: a module-level dict/tuple whose
  values are all string literals, indexed at the record site
  (``stats.add(_SERVICED_KEYS[kind])``) — the rule records every table
  value, so the key set stays fully auditable at zero per-event cost.
  Keys precomputed once in ``__init__`` and stored in a ``self._key_*``
  attribute are also accepted;
* flags keys that are **read but never recorded** — the classic typo bug
  that yields a silent zero in a figure — with a did-you-mean suggestion;
* flags **near-duplicate** recorded keys (edit distance 1, ignoring pairs
  that differ only in a digit such as ``l1``/``l2``);
* reports (informational) keys recorded but never read by the metrics,
  analysis, or check layers.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.lint.engine import (
    ProjectContext,
    Rule,
    Severity,
    SourceFile,
    register_rule,
)

#: ``counter``/``observer`` return bound record handles (resolved once at
#: construction time); the key they bind is recorded exactly like an
#: ``add``/``observe`` call site.
_RECORD_METHODS = ("add", "observe", "counter", "observer")
_READ_METHODS = ("get", "mean", "total", "count", "maximum")

#: Receivers treated as a stats registry: bare ``stats`` or any ``*.stats``.
_STATS_NAMES = ("stats",)


def _is_stats_receiver(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _STATS_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _STATS_NAMES
    return False


def _edit_distance(a: str, b: str, limit: int = 3) -> int:
    """Levenshtein distance, capped at *limit* for speed."""
    if abs(len(a) - len(b)) > limit:
        return limit + 1
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            current.append(
                min(
                    previous[j] + 1,
                    current[j - 1] + 1,
                    previous[j - 1] + (ca != cb),
                )
            )
        if min(current) > limit:
            return limit + 1
        previous = current
    return previous[-1]


def _digit_only_difference(a: str, b: str) -> bool:
    """True if *a* and *b* differ in exactly one position, digit vs digit."""
    if len(a) != len(b):
        return False
    diffs = [(ca, cb) for ca, cb in zip(a, b) if ca != cb]
    return len(diffs) == 1 and diffs[0][0].isdigit() and diffs[0][1].isdigit()


@register_rule
class StatsKeyRule(Rule):
    """RL002: static auditing of the stats-key namespace."""

    rule_id = "RL002"
    name = "stats-keys"
    default_severity = Severity.WARNING

    def __init__(self) -> None:
        #: literal key -> first (source, node) that recorded it.
        self.recorded: Dict[str, Tuple[SourceFile, ast.AST]] = {}
        #: static prefixes of f-string record keys (pattern keys).
        self.patterns: List[str] = []
        #: literal key -> first (source, node) that read it.
        self.reads: Dict[str, Tuple[SourceFile, ast.AST]] = {}
        #: literal-key tables of the file currently being collected.
        self._tables: Dict[str, List[str]] = {}

    # -- collection --------------------------------------------------------
    @staticmethod
    def _literal_key_tables(source: SourceFile) -> Dict[str, List[str]]:
        """Module-level names bound to all-literal-string key collections."""
        tables: Dict[str, List[str]] = {}
        for node in source.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if isinstance(value, ast.Dict):
                elements = value.values
            elif isinstance(value, (ast.Tuple, ast.List)):
                elements = value.elts
            else:
                continue
            if elements and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in elements
            ):
                tables[target.id] = [e.value for e in elements]
        return tables

    def collect(self, source: SourceFile, ctx: ProjectContext) -> None:
        self._tables = self._literal_key_tables(source)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            if not _is_stats_receiver(node.func.value) or not node.args:
                continue
            key_node = node.args[0]
            if method in _RECORD_METHODS:
                self._collect_record(source, ctx, node, key_node)
            elif method in _READ_METHODS:
                self._collect_read(source, key_node)

    def _collect_record(self, source, ctx, call, key_node) -> None:
        if isinstance(key_node, ast.Constant) and isinstance(key_node.value, str):
            self.recorded.setdefault(key_node.value, (source, call))
            return
        # Literal-key table lookup: stats.add(_KEYS[kind]) where _KEYS is a
        # module-level dict/tuple of string literals — every possible key is
        # known statically, so record them all and emit nothing.
        if (
            isinstance(key_node, ast.Subscript)
            and isinstance(key_node.value, ast.Name)
            and key_node.value.id in self._tables
        ):
            for key in self._tables[key_node.value.id]:
                self.recorded.setdefault(key, (source, call))
            return
        # Key precomputed once at construction time: self._key_<name>.  Not
        # statically auditable, but not a per-event f-string either.
        if (
            isinstance(key_node, ast.Attribute)
            and key_node.attr.startswith("_key_")
        ):
            return
        if isinstance(key_node, ast.JoinedStr):
            prefix = ""
            if key_node.values and isinstance(key_node.values[0], ast.Constant):
                prefix = str(key_node.values[0].value)
            if prefix:
                self.patterns.append(prefix)
            if source.in_sim_package:
                ctx.emit(
                    self, source, call,
                    "f-string stats key on a simulation path: the key set "
                    "cannot be audited statically and the f-string is built "
                    "per event; prefer a precomputed literal-key table",
                )
            return
        if source.in_sim_package:
            ctx.emit(
                self, source, call,
                "non-literal stats key on a simulation path: dynamic keys "
                "defeat static key auditing; use a string literal",
            )

    def _collect_read(self, source, key_node) -> None:
        if isinstance(key_node, ast.Constant) and isinstance(key_node.value, str):
            self.reads.setdefault(key_node.value, (source, key_node))

    # -- cross-file checks -------------------------------------------------
    def finalize(self, ctx: ProjectContext) -> None:
        # Under --program, RL101 subsumes both liveness checks with true
        # whole-program record/read sets (including reads RL002's
        # stats-receiver heuristic cannot see); emitting here too would
        # double-report the same defect under two rule ids.
        program_active = getattr(ctx, "program_model", None) is not None
        if not program_active:
            self._check_reads_without_records(ctx)
        self._check_near_duplicates(ctx)
        if not program_active:
            self._check_unread_records(ctx)

    def _matches_pattern(self, key: str) -> bool:
        return any(key.startswith(prefix) for prefix in self.patterns)

    def _nearest_recorded(self, key: str) -> Optional[str]:
        best, best_distance = None, 3
        for candidate in self.recorded:
            distance = _edit_distance(key, candidate, limit=2)
            if distance < best_distance:
                best, best_distance = candidate, distance
        return best

    def _check_reads_without_records(self, ctx: ProjectContext) -> None:
        for key, (source, node) in sorted(self.reads.items()):
            if key in self.recorded or self._matches_pattern(key):
                continue
            suggestion = self._nearest_recorded(key)
            hint = f'; did you mean "{suggestion}"?' if suggestion else ""
            ctx.emit(
                self, source, node,
                f'stats key "{key}" is read but never recorded anywhere — '
                f"the consumer will silently see zero{hint}",
            )

    def _check_near_duplicates(self, ctx: ProjectContext) -> None:
        keys = sorted(self.recorded)
        for i, a in enumerate(keys):
            for b in keys[i + 1:]:
                if _digit_only_difference(a, b):
                    continue
                if _edit_distance(a, b, limit=1) == 1:
                    source, node = self.recorded[b]
                    ctx.emit(
                        self, source, node,
                        f'recorded stats keys "{a}" and "{b}" differ by one '
                        "character — likely a typo splitting one counter "
                        "into two",
                    )

    def _check_unread_records(self, ctx: ProjectContext) -> None:
        for key, (source, node) in sorted(self.recorded.items()):
            if key in self.reads:
                continue
            ctx.emit(
                self, source, node,
                f'stats key "{key}" is recorded but never read by the '
                "metrics/analysis/check layers (only surfaced via the raw "
                "dump); wire it into a consumer or drop it",
                severity=Severity.INFO,
            )
