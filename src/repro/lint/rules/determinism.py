"""RL001 — determinism: no ambient randomness or wall clocks in the core.

Bit-identical replay is the foundation of the golden-digest harness and of
every figure in the paper; a single ``random.random()`` or ``time.time()``
inside the simulation core silently breaks it.  Inside the
simulation-critical packages (``sim``, ``mem``, ``core``, ``vm``,
``cache``, ``baselines``) this rule forbids:

* importing or calling the ``random`` module (use
  :class:`repro.common.rng.DeterministicRng`, seeded by name + global
  seed);
* wall-clock reads: ``time.time``/``perf_counter``/``monotonic``/
  ``time_ns``, ``datetime.now``/``utcnow``/``today``, ``os.urandom``;
* ``id()`` used as a dictionary key or subscript — ``id()`` values depend
  on the allocator and differ between runs;
* iterating an unordered ``set`` (or calling ``set.pop()``): Python sets
  iterate in hash order, which for strings varies with ``PYTHONHASHSEED``.
  Iterate ``sorted(the_set)`` or use a dict instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional, Set

from repro.lint.engine import (
    ProjectContext,
    Rule,
    Severity,
    SourceFile,
    register_rule,
)

#: Module-qualified calls that read ambient state.
_FORBIDDEN_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("os", "urandom"),
}

def _is_set_expr(node: ast.AST) -> bool:
    """True for expressions that are syntactically a set right here."""
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    return False


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "frozenset", "Set", "FrozenSet")
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(annotation.value)
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.split("[")[0] in ("set", "frozenset", "Set", "FrozenSet")
    return False


def _target_key(node: ast.AST) -> Optional[str]:
    """A file-local key for ``x`` or ``self.x`` assignment targets."""
    if isinstance(node, ast.Name):
        return node.id
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return f"self.{node.attr}"
    return None


@register_rule
class DeterminismRule(Rule):
    """RL001: forbid nondeterministic constructs in simulation code."""

    rule_id = "RL001"
    name = "determinism"
    default_severity = Severity.ERROR

    def collect(self, source: SourceFile, ctx: ProjectContext) -> None:
        if not source.in_sim_package:
            return
        #: Names bound by `from <module> import <name>` to forbidden calls.
        imported_from: Dict[str, str] = {}
        #: File-local names/self-attrs known to hold plain sets.
        known_sets: Set[str] = set()

        for node in ast.walk(source.tree):
            if isinstance(node, ast.Assign):
                if _is_set_expr(node.value):
                    for target in node.targets:
                        key = _target_key(target)
                        if key is not None:
                            known_sets.add(key)
            elif isinstance(node, ast.AnnAssign):
                key = _target_key(node.target)
                if key is not None and (
                    _annotation_is_set(node.annotation)
                    or (node.value is not None and _is_set_expr(node.value))
                ):
                    known_sets.add(key)

        for node in ast.walk(source.tree):
            self._check_imports(node, source, ctx, imported_from)
            self._check_calls(node, source, ctx, imported_from)
            self._check_id_keys(node, source, ctx)
            self._check_set_iteration(node, source, ctx, known_sets)

    # -- imports -----------------------------------------------------------
    def _check_imports(self, node, source, ctx, imported_from: Dict[str, str]) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    ctx.emit(
                        self, source, node,
                        "import of the global `random` module in simulation "
                        "code; draw from repro.common.rng.DeterministicRng "
                        "instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                ctx.emit(
                    self, source, node,
                    "from-import of the global `random` module in simulation "
                    "code; draw from repro.common.rng.DeterministicRng instead",
                )
            elif node.module in ("time", "os", "datetime"):
                for alias in node.names:
                    if (node.module, alias.name) in _FORBIDDEN_CALLS:
                        imported_from[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )

    # -- forbidden calls ---------------------------------------------------
    def _check_calls(self, node, source, ctx, imported_from: Dict[str, str]) -> None:
        if not isinstance(node, ast.Call):
            return
        func = node.func
        if isinstance(func, ast.Name) and func.id in imported_from:
            ctx.emit(
                self, source, node,
                f"wall-clock/entropy call {imported_from[func.id]}() in "
                "simulation code; simulated time must come from the event "
                "timeline and randomness from DeterministicRng",
            )
        if not isinstance(func, ast.Attribute):
            return
        base = func.value
        if isinstance(base, ast.Name):
            if base.id == "random":
                ctx.emit(
                    self, source, node,
                    f"call to random.{func.attr}() in simulation code; use a "
                    "DeterministicRng stream (repro.common.rng) so runs are "
                    "bit-reproducible",
                )
            elif (base.id, func.attr) in _FORBIDDEN_CALLS:
                ctx.emit(
                    self, source, node,
                    f"wall-clock/entropy call {base.id}.{func.attr}() in "
                    "simulation code; simulated time must come from the "
                    "event timeline",
                )
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "datetime"
            and (base.attr, func.attr) in (("datetime", "now"), ("date", "today"))
        ):
            ctx.emit(
                self, source, node,
                f"wall-clock call datetime.{base.attr}.{func.attr}() in "
                "simulation code",
            )

    # -- id()-keyed containers --------------------------------------------
    @staticmethod
    def _is_id_call(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        )

    def _check_id_keys(self, node, source, ctx) -> None:
        message = (
            "id() used as a container key: id() values depend on the "
            "allocator and differ between runs; key by a stable identifier "
            "(name, page number, index) instead"
        )
        if isinstance(node, ast.Subscript) and self._is_id_call(node.slice):
            ctx.emit(self, source, node, message)
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None and self._is_id_call(key):
                    ctx.emit(self, source, key, message)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in ("get", "setdefault", "pop") and node.args:
                if self._is_id_call(node.args[0]):
                    ctx.emit(self, source, node, message)

    # -- unordered set iteration ------------------------------------------
    def _iter_is_unordered_set(self, expr: ast.AST, known_sets: Set[str]) -> bool:
        if _is_set_expr(expr):
            return True
        key = _target_key(expr)
        return key is not None and key in known_sets

    def _check_set_iteration(self, node, source, ctx, known_sets: Set[str]) -> None:
        message = (
            "iteration over an unordered set: set order follows string "
            "hashing and varies between interpreter runs; iterate "
            "sorted(...) or use a dict (insertion-ordered) instead"
        )
        iters = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iters.extend(comp.iter for comp in node.generators)
        for expr in iters:
            if self._iter_is_unordered_set(expr, known_sets):
                ctx.emit(self, source, expr, message)
        # set.pop() removes an arbitrary (hash-ordered) element.
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and not node.args
            and not node.keywords
        ):
            key = _target_key(node.func.value)
            if key is not None and key in known_sets:
                ctx.emit(
                    self, source, node,
                    "set.pop() removes a hash-ordered (run-dependent) "
                    "element; pick the element deterministically instead",
                )
