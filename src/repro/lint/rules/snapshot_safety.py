"""RL006 — snapshot-safety: checkpointable state must stay picklable.

Checkpoint/restore (``repro.snapshot``, docs/CHECKPOINTS.md) pickles the
entire live ``System`` graph.  Most simulator state is plain data and
pickles natively; what breaks checkpoints is a class quietly stashing a
*process-local* object on ``self``: a closure or lambda, an open file, a
threading primitive, or the result of a closure-factory method.  Those
failures surface only when someone actually writes a checkpoint — often
hours into the very sweep the checkpoint was meant to protect.

Inside the packages whose classes are reachable from ``System`` state
(the simulation-critical set plus ``check``, ``workloads``, ``faults``),
this rule flags ``self.<attr> = ...`` (including nested targets such as
``self.hmc.handle_request = ...``) where the value is:

* a ``lambda`` or a function defined in the enclosing method (a closure);
* a call to a closure factory — a method of the same class whose body
  returns a nested function;
* ``open(...)`` — file handles do not survive a process boundary;
* a ``threading`` primitive (``Lock``, ``RLock``, ``Condition``,
  ``Semaphore``, ``BoundedSemaphore``, ``Event``, ``Barrier``);
* a live socket (``socket.socket(...)``, ``socket.create_connection``,
  ``socket.socketpair``, ``socket.fromfd``) or an I/O selector
  (``selectors.DefaultSelector()`` and friends) — kernel handles that
  the ``sweepd`` heartbeat plumbing makes easy to smuggle into
  checkpointable classes, and that pickle either refuses outright or
  silently resurrects dead.

A class is exempt when it opts into one of the supported escape hatches:
defining ``__getstate__`` / ``__reduce__`` / ``__reduce_ex__``, defining
a ``snapshot_detach`` hook (paired with ``snapshot_reattach``; the
checkpoint writer calls it around every pickle), or being registered
with :func:`repro.snapshot.codec.register_codec` in the same module.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.lint.engine import (
    SIM_PACKAGES,
    ProjectContext,
    Rule,
    SourceFile,
    register_rule,
)

#: Packages whose classes can end up inside a pickled System graph.
_SCOPE = frozenset(SIM_PACKAGES | {"check", "workloads", "faults"})

#: Defining any of these opts the class out (it handles its own pickling
#: or is detached around every checkpoint write).
_EXEMPT_METHODS = frozenset(
    {"__getstate__", "__reduce__", "__reduce_ex__", "snapshot_detach"}
)

_THREADING_PRIMITIVES = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
     "Event", "Barrier"}
)

#: ``socket.<ctor>`` calls that hand back a live kernel socket.
_SOCKET_CONSTRUCTORS = frozenset(
    {"socket", "create_connection", "socketpair", "fromfd"}
)

#: ``selectors.<cls>()`` — selector objects wrap epoll/kqueue fds.
_SELECTOR_CLASSES = frozenset(
    {"DefaultSelector", "SelectSelector", "PollSelector", "EpollSelector",
     "DevpollSelector", "KqueueSelector"}
)

_FIX_HINT = (
    "define __getstate__, register a codec "
    "(repro.snapshot.register_codec), or give the class a "
    "snapshot_detach/snapshot_reattach pair (docs/CHECKPOINTS.md)"
)


def _rooted_at_self(node: ast.AST) -> bool:
    """True for ``self.x`` and deeper chains like ``self.hmc.handle``."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _returns_nested_function(func: ast.FunctionDef) -> bool:
    """True when *func* defines an inner function/lambda and returns it."""
    inner: Set[str] = {
        child.name
        for child in ast.walk(func)
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        and child is not func
    }
    for child in ast.walk(func):
        if not isinstance(child, ast.Return) or child.value is None:
            continue
        value = child.value
        if isinstance(value, ast.Lambda):
            return True
        if isinstance(value, ast.Name) and value.id in inner:
            return True
    return False


def _codec_registered_classes(tree: ast.Module) -> Set[str]:
    """Class names passed to ``register_codec(Cls, ...)`` in this module."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
        if name != "register_codec":
            continue
        first = node.args[0]
        if isinstance(first, ast.Name):
            out.add(first.id)
    return out


@register_rule
class SnapshotSafetyRule(Rule):
    """Flag classes that would break ``repro.snapshot`` checkpoints."""

    rule_id = "RL006"
    name = "snapshot-safety"

    def collect(self, source: SourceFile, ctx: ProjectContext) -> None:
        if not any(part in _SCOPE for part in source.parts):
            return
        registered = _codec_registered_classes(source.tree)
        # Under --program, RL103 proves the same property for every class
        # reachable from System — with a reachability witness in the
        # message — so this per-file approximation skips those classes
        # and keeps covering only the in-scope classes the traversal
        # cannot reach (dead or not-yet-wired code).
        reachable = self._program_reachable_names(source, ctx)
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.ClassDef)
                and node.name not in registered
                and node.name not in reachable
            ):
                self._check_class(node, source, ctx)

    @staticmethod
    def _program_reachable_names(source: SourceFile, ctx: ProjectContext) -> Set[str]:
        model = getattr(ctx, "program_model", None)
        if model is None:
            return set()
        out: Set[str] = set()
        for symbol in model.reachable:
            module, _, name = symbol.partition(":")
            facts = model.table.modules.get(module)
            if facts is not None and facts.relpath == source.relpath:
                out.add(name)
        return out

    def _check_class(
        self, cls: ast.ClassDef, source: SourceFile, ctx: ProjectContext
    ) -> None:
        methods = [
            child for child in cls.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        if any(method.name in _EXEMPT_METHODS for method in methods):
            return
        factories = {
            method.name for method in methods
            if _returns_nested_function(method)
        }
        for method in methods:
            self._check_method(cls, method, factories, source, ctx)

    def _check_method(
        self,
        cls: ast.ClassDef,
        method: ast.FunctionDef,
        factories: Set[str],
        source: SourceFile,
        ctx: ProjectContext,
    ) -> None:
        local_functions: Set[str] = {
            child.name
            for child in ast.walk(method)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            and child is not method
        }
        for node in ast.walk(method):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            if node.value is None or not any(
                _rooted_at_self(target) for target in targets
            ):
                continue
            problem = self._classify(node.value, local_functions, factories)
            if problem is not None:
                ctx.emit(
                    self, source, node,
                    f"{cls.name}.{method.name} stores {problem} on self; "
                    f"this breaks checkpointing — {_FIX_HINT}",
                )

    @staticmethod
    def _classify(
        value: ast.AST, local_functions: Set[str], factories: Set[str]
    ) -> "str | None":
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.Name) and value.id in local_functions:
            return f"the local closure {value.id!r}"
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name):
                if func.id == "open":
                    return "an open file handle"
                if func.id == "socket":
                    # ``from socket import socket`` idiom.
                    return "a live socket"
                if func.id in _SELECTOR_CLASSES:
                    return f"a live I/O selector ({func.id})"
                if func.id in local_functions:
                    return f"the result of local closure {func.id!r}"
            if isinstance(func, ast.Attribute):
                base = func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id == "threading"
                    and func.attr in _THREADING_PRIMITIVES
                ):
                    return f"a threading.{func.attr}"
                if (
                    isinstance(base, ast.Name)
                    and base.id == "socket"
                    and func.attr in _SOCKET_CONSTRUCTORS
                ):
                    return f"a live socket (socket.{func.attr})"
                if (
                    isinstance(base, ast.Name)
                    and base.id == "selectors"
                    and func.attr in _SELECTOR_CLASSES
                ):
                    return f"a live I/O selector (selectors.{func.attr})"
                if (
                    isinstance(base, ast.Name)
                    and base.id == "self"
                    and func.attr in factories
                ):
                    return (
                        f"a closure built by factory method {func.attr!r}"
                    )
        return None
