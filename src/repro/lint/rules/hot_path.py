"""RL005 — hot-path hygiene: keep the per-op path allocation-light.

The simulator's throughput lives and dies in a handful of per-operation
functions (``Core.step``, ``CacheHierarchy.access``, ``MemoryDevice.access``,
...).  Those functions are annotated with a ``# repro-hot`` comment on the
line directly above their ``def`` (see docs/PERFORMANCE.md), and this rule
holds them to the discipline the PR-4 optimization pass established:

* **no per-call dataclass construction** — dataclasses pay ``__init__``
  keyword dispatch and a ``__dict__`` per instance; hot-path records are
  plain ``__slots__`` classes (``MemoryOp``, ``AccessResult``, ...) or
  tuples.  The rule knows every ``@dataclass`` defined in the project and
  flags constructing one inside a hot function;
* **no dynamically-built stats keys** — an f-string / concatenated /
  ``.format``-ed key passed to a stats record method costs a string build
  per event and defeats RL002's static key auditing.  Hot functions use
  string literals, literal-key tables, or handles pre-resolved via
  ``stats.counter(...)`` / ``stats.observer(...)`` at construction time;
* **no per-element Python loops over numpy arrays** (PR-6 batch kernels) —
  a ``for`` over a numpy array (directly, via ``range(len(...))``,
  ``enumerate(...)``, or ``.tolist()``) pays interpreter dispatch plus a
  boxed-int allocation per element, exactly the cost the struct-of-arrays
  representation exists to avoid.  Batch kernels stay in C via vectorized
  array ops (see ``SoaBankedTimeline.reserve_sequence``); genuinely
  element-wise logic belongs in the scalar fallback at batch boundaries.
  The rule tracks names assigned from numpy constructor calls inside the
  hot function and attributes assigned from numpy calls anywhere in the
  project (``self.busy_until = np.zeros(...)`` marks ``.busy_until``);
* **no per-element Python loops over stream-chunk columns** (PR-9
  array-native streams) — an :class:`repro.workloads.chunks.OpChunk`
  carries its ops as parallel columns (``vaddrs``/``writes``/``instr``)
  precisely so hot consumers can hand the whole column to a vectorized
  prep kernel (``engine._prep_chunk``) or index it per escape.  A ``for``
  over a chunk column (directly, zipped, enumerated, or via
  ``range(len(...))``) re-serializes the batch into per-op interpreter
  dispatch — the cost :func:`chunks_from_blocks` exists to amortize away.

The marker is an explicit opt-in, so the rule applies wherever it appears
(including ``common/`` and ``workloads/``, outside the RL001/RL002
simulation-package scope).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.lint.engine import (
    ProjectContext,
    Rule,
    SourceFile,
    register_rule,
)

_HOT_MARKER = re.compile(r"^\s*#\s*repro-hot\b")

#: Stats record methods whose key argument must be static (mirrors RL002).
_RECORD_METHODS = ("add", "observe", "counter", "observer")
_STATS_NAMES = ("stats",)

_FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: The parallel columns of :class:`repro.workloads.chunks.OpChunk`.  Any
#: attribute access with one of these names is treated as a chunk column —
#: the names are chunk-specific enough that the heuristic stays quiet on
#: unrelated code (scalar counters named ``writes`` are ints, not
#: iterables, and never appear as a ``for`` target).
_CHUNK_COLUMNS = ("vaddrs", "writes", "instr")


def _is_stats_receiver(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _STATS_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _STATS_NAMES
    return False


def _is_dataclass_decorator(node: ast.AST) -> bool:
    """True for ``@dataclass``, ``@dataclass(...)``, ``@dataclasses.dataclass``."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id == "dataclass"
    if isinstance(node, ast.Attribute):
        return node.attr == "dataclass"
    return False


def _is_dynamic_string(node: ast.AST) -> bool:
    """True for expressions that build a string at the call site."""
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
        # "a" + suffix or "a/%s" % kind — either side being a string
        # literal marks this as string assembly.
        for side in (node.left, node.right):
            if isinstance(side, ast.Constant) and isinstance(side.value, str):
                return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("format", "join")
    ):
        return True
    return False


def _numpy_aliases(tree: ast.AST) -> Tuple[Set[str], Set[str]]:
    """Return (module aliases, directly-imported constructor names).

    ``import numpy as np`` yields ``{"np"}``; ``from numpy import zeros``
    yields ``{"zeros"}`` in the second set.  Guarded imports (inside
    ``try:``) are found too — ``ast.walk`` sees through the Try block.
    """
    modules: Set[str] = set()
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy" or alias.name.startswith("numpy."):
                    modules.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "numpy":
                for alias in node.names:
                    names.add(alias.asname or alias.name)
    return modules, names


def _call_root(node: ast.AST) -> Optional[ast.Name]:
    """The base Name of a (possibly dotted) call target, or None."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node if isinstance(node, ast.Name) else None


def _is_numpy_call(
    node: ast.AST, modules: Set[str], names: Set[str]
) -> bool:
    """True for ``np.zeros(...)``-shaped calls (any dotted numpy call)."""
    if not isinstance(node, ast.Call):
        return False
    if isinstance(node.func, ast.Name):
        return node.func.id in names
    root = _call_root(node.func)
    return root is not None and root.id in modules


def _marked_hot(source: SourceFile, node: _FunctionDef) -> bool:
    """True when ``# repro-hot`` sits directly above the def/decorators."""
    start = node.lineno
    for decorator in node.decorator_list:
        start = min(start, decorator.lineno)
    above = start - 2  # 0-indexed line above the first def/decorator line
    return 0 <= above < len(source.lines) and bool(
        _HOT_MARKER.match(source.lines[above])
    )


@register_rule
class HotPathRule(Rule):
    """RL005: enforce allocation/key discipline in ``# repro-hot`` functions."""

    rule_id = "RL005"
    name = "hot-path"

    def __init__(self) -> None:
        #: Project-wide dataclass class names (name -> defining relpath).
        self.dataclasses: Dict[str, str] = {}
        #: Hot functions found, for the cross-file finalize pass.
        self.hot_functions: List[Tuple[SourceFile, _FunctionDef]] = []
        #: Per-file numpy import shapes (relpath -> (modules, names)).
        self.file_numpy: Dict[str, Tuple[Set[str], Set[str]]] = {}
        #: Attribute names assigned from a numpy call anywhere in the
        #: project (``self.busy_until = np.zeros(...)`` -> "busy_until"),
        #: so a hot function in another file looping over ``x.busy_until``
        #: still flags.
        self.numpy_attrs: Dict[str, str] = {}

    # -- collection --------------------------------------------------------
    def collect(self, source: SourceFile, ctx: ProjectContext) -> None:
        modules, names = _numpy_aliases(source.tree)
        self.file_numpy[source.relpath] = (modules, names)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and any(
                _is_dataclass_decorator(dec) for dec in node.decorator_list
            ):
                self.dataclasses.setdefault(node.name, source.relpath)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _marked_hot(source, node):
                    self.hot_functions.append((source, node))
            elif isinstance(node, (ast.Assign, ast.AnnAssign)) and (
                modules or names
            ):
                value = node.value
                if value is None or not _is_numpy_call(value, modules, names):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Attribute):
                        self.numpy_attrs.setdefault(
                            target.attr, source.relpath
                        )

    # -- the cross-file pass (needs every dataclass name first) -----------
    def finalize(self, ctx: ProjectContext) -> None:
        for source, function in self.hot_functions:
            self._check_hot_function(source, function, ctx)

    def _check_hot_function(
        self, source: SourceFile, function: _FunctionDef, ctx: ProjectContext
    ) -> None:
        self._check_numpy_loops(source, function, ctx)
        self._check_chunk_loops(source, function, ctx)
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in self.dataclasses:
                ctx.emit(
                    self, source, node,
                    f"dataclass {func.id} (defined in "
                    f"{self.dataclasses[func.id]}) constructed inside "
                    f"hot function {function.name}(): dataclass __init__ "
                    "dispatch is per-event overhead; use a __slots__ class "
                    "or a tuple on the hot path",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _RECORD_METHODS
                and _is_stats_receiver(func.value)
                and node.args
                and _is_dynamic_string(node.args[0])
            ):
                ctx.emit(
                    self, source, node,
                    f"dynamically-built stats key inside hot function "
                    f"{function.name}(): the string is assembled per event; "
                    "use a literal, a literal-key table, or a handle "
                    "pre-resolved via stats.counter()/observer()",
                )

    # -- the numpy-loop check (PR-6 batch kernels) -------------------------
    def _check_numpy_loops(
        self, source: SourceFile, function: _FunctionDef, ctx: ProjectContext
    ) -> None:
        modules, names = self.file_numpy.get(source.relpath, (set(), set()))
        #: Names bound to a numpy call *inside this function* — function
        #: scope keeps a plain-list ``indices`` in one method from
        #: poisoning an ``indices`` in another.
        local_arrays: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None or not _is_numpy_call(value, modules, names):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        local_arrays.add(target.id)

        for node in ast.walk(function):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            array = self._array_expr(node.iter, local_arrays)
            if array is not None:
                ctx.emit(
                    self, source, node,
                    f"per-element Python loop over numpy array '{array}' "
                    f"inside hot function {function.name}(): interpreter "
                    "dispatch plus int boxing per element defeats the "
                    "struct-of-arrays layout; use a vectorized kernel "
                    "(argsort/bincount/maximum.at, see "
                    "SoaBankedTimeline.reserve_sequence) or move the "
                    "element-wise logic to the scalar fallback",
                )

    # -- the chunk-column loop check (PR-9 array-native streams) -----------
    def _check_chunk_loops(
        self, source: SourceFile, function: _FunctionDef, ctx: ProjectContext
    ) -> None:
        #: Local aliases of chunk columns (``vaddrs = chunk.vaddrs``) —
        #: function-scoped, same reasoning as ``local_arrays`` above.
        local_columns: Set[str] = set()
        for node in ast.walk(function):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if (
                    value is not None
                    and isinstance(value, ast.Attribute)
                    and value.attr in _CHUNK_COLUMNS
                ):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Name):
                            local_columns.add(target.id)

        for node in ast.walk(function):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            column = self._chunk_expr(node.iter, local_columns)
            if column is not None:
                ctx.emit(
                    self, source, node,
                    f"per-element Python loop over stream-chunk column "
                    f"'{column}' inside hot function {function.name}(): "
                    "the chunk's parallel columns exist so hot consumers "
                    "stay batched; hand the column to the vectorized prep "
                    "kernel (engine._prep_chunk) or index single escapes "
                    "scalar-side instead of re-serializing the batch",
                )

    def _chunk_expr(
        self, node: ast.AST, local_columns: Set[str]
    ) -> Optional[str]:
        """Describe *node* if it names a chunk column (else None).

        Recognizes the column attribute itself, a local alias of one,
        ``zip(...)`` over columns, ``enumerate``/``reversed``/``iter``
        wrappers, and ``range(len(column))``.
        """
        if isinstance(node, ast.Name) and node.id in local_columns:
            return node.id
        if isinstance(node, ast.Attribute) and node.attr in _CHUNK_COLUMNS:
            return f".{node.attr}"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and node.args:
                if func.id == "zip":
                    for arg in node.args:
                        column = self._chunk_expr(arg, local_columns)
                        if column is not None:
                            return column
                    return None
                if func.id in ("enumerate", "reversed", "iter"):
                    return self._chunk_expr(node.args[0], local_columns)
                if func.id == "range":
                    inner = node.args[0]
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id == "len"
                        and inner.args
                    ):
                        return self._chunk_expr(inner.args[0], local_columns)
        return None

    def _array_expr(
        self, node: ast.AST, local_arrays: Set[str]
    ) -> Optional[str]:
        """Describe *node* if it names a numpy array (else None).

        Recognizes the array itself, ``range(len(arr))``,
        ``enumerate(arr)``, and ``arr.tolist()`` — the four shapes a
        per-element loop over an array takes in practice.
        """
        if isinstance(node, ast.Name) and node.id in local_arrays:
            return node.id
        if isinstance(node, ast.Attribute) and node.attr in self.numpy_attrs:
            return f".{node.attr}"
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in ("range", "enumerate", "reversed", "iter")
                and node.args
            ):
                inner = node.args[0]
                if func.id == "range":
                    # range(len(arr)) / range(arr.shape[0])
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id == "len"
                        and inner.args
                    ):
                        return self._array_expr(inner.args[0], local_arrays)
                    return None
                return self._array_expr(inner, local_arrays)
            if isinstance(func, ast.Attribute) and func.attr in (
                "tolist", "flatten", "ravel"
            ):
                return self._array_expr(func.value, local_arrays)
        return None
