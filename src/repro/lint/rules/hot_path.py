"""RL005 — hot-path hygiene: keep the per-op path allocation-light.

The simulator's throughput lives and dies in a handful of per-operation
functions (``Core.step``, ``CacheHierarchy.access``, ``MemoryDevice.access``,
...).  Those functions are annotated with a ``# repro-hot`` comment on the
line directly above their ``def`` (see docs/PERFORMANCE.md), and this rule
holds them to the discipline the PR-4 optimization pass established:

* **no per-call dataclass construction** — dataclasses pay ``__init__``
  keyword dispatch and a ``__dict__`` per instance; hot-path records are
  plain ``__slots__`` classes (``MemoryOp``, ``AccessResult``, ...) or
  tuples.  The rule knows every ``@dataclass`` defined in the project and
  flags constructing one inside a hot function;
* **no dynamically-built stats keys** — an f-string / concatenated /
  ``.format``-ed key passed to a stats record method costs a string build
  per event and defeats RL002's static key auditing.  Hot functions use
  string literals, literal-key tables, or handles pre-resolved via
  ``stats.counter(...)`` / ``stats.observer(...)`` at construction time.

The marker is an explicit opt-in, so the rule applies wherever it appears
(including ``common/`` and ``workloads/``, outside the RL001/RL002
simulation-package scope).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Tuple, Union

from repro.lint.engine import (
    ProjectContext,
    Rule,
    SourceFile,
    register_rule,
)

_HOT_MARKER = re.compile(r"^\s*#\s*repro-hot\b")

#: Stats record methods whose key argument must be static (mirrors RL002).
_RECORD_METHODS = ("add", "observe", "counter", "observer")
_STATS_NAMES = ("stats",)

_FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_stats_receiver(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _STATS_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _STATS_NAMES
    return False


def _is_dataclass_decorator(node: ast.AST) -> bool:
    """True for ``@dataclass``, ``@dataclass(...)``, ``@dataclasses.dataclass``."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Name):
        return node.id == "dataclass"
    if isinstance(node, ast.Attribute):
        return node.attr == "dataclass"
    return False


def _is_dynamic_string(node: ast.AST) -> bool:
    """True for expressions that build a string at the call site."""
    if isinstance(node, ast.JoinedStr):
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
        # "a" + suffix or "a/%s" % kind — either side being a string
        # literal marks this as string assembly.
        for side in (node.left, node.right):
            if isinstance(side, ast.Constant) and isinstance(side.value, str):
                return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("format", "join")
    ):
        return True
    return False


def _marked_hot(source: SourceFile, node: _FunctionDef) -> bool:
    """True when ``# repro-hot`` sits directly above the def/decorators."""
    start = node.lineno
    for decorator in node.decorator_list:
        start = min(start, decorator.lineno)
    above = start - 2  # 0-indexed line above the first def/decorator line
    return 0 <= above < len(source.lines) and bool(
        _HOT_MARKER.match(source.lines[above])
    )


@register_rule
class HotPathRule(Rule):
    """RL005: enforce allocation/key discipline in ``# repro-hot`` functions."""

    rule_id = "RL005"
    name = "hot-path"

    def __init__(self) -> None:
        #: Project-wide dataclass class names (name -> defining relpath).
        self.dataclasses: Dict[str, str] = {}
        #: Hot functions found, for the cross-file finalize pass.
        self.hot_functions: List[Tuple[SourceFile, _FunctionDef]] = []

    # -- collection --------------------------------------------------------
    def collect(self, source: SourceFile, ctx: ProjectContext) -> None:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and any(
                _is_dataclass_decorator(dec) for dec in node.decorator_list
            ):
                self.dataclasses.setdefault(node.name, source.relpath)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _marked_hot(source, node):
                    self.hot_functions.append((source, node))

    # -- the cross-file pass (needs every dataclass name first) -----------
    def finalize(self, ctx: ProjectContext) -> None:
        for source, function in self.hot_functions:
            self._check_hot_function(source, function, ctx)

    def _check_hot_function(
        self, source: SourceFile, function: _FunctionDef, ctx: ProjectContext
    ) -> None:
        for node in ast.walk(function):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in self.dataclasses:
                ctx.emit(
                    self, source, node,
                    f"dataclass {func.id} (defined in "
                    f"{self.dataclasses[func.id]}) constructed inside "
                    f"hot function {function.name}(): dataclass __init__ "
                    "dispatch is per-event overhead; use a __slots__ class "
                    "or a tuple on the hot path",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _RECORD_METHODS
                and _is_stats_receiver(func.value)
                and node.args
                and _is_dynamic_string(node.args[0])
            ):
                ctx.emit(
                    self, source, node,
                    f"dynamically-built stats key inside hot function "
                    f"{function.name}(): the string is assembled per event; "
                    "use a literal, a literal-key table, or a handle "
                    "pre-resolved via stats.counter()/observer()",
                )
