"""RL007 — persist-discipline: state files go through ``repro.persist``.

PR 10 funnelled every durable write — checkpoints, sweep manifests,
result/cache files, bench documents — through :mod:`repro.persist`, which
supplies the same-directory temp + fsync + ``os.replace`` atomicity, the
embedded checksum stamp that makes torn writes and bit-rot detectable,
the typed :class:`~repro.common.errors.PersistError` hierarchy, and the
storage-fault injection hook the chaos harness depends on.  A raw
``open(path, "w")`` / ``json.dump`` / ``pickle.dump`` /
``Path.write_text`` in the persistence-owning packages silently opts the
file out of all four: it can tear under SIGKILL, ``repro fsck`` cannot
verify it, and the crash-consistency tests never exercise it.

This rule flags raw write shapes inside the packages that own durable
state (``snapshot``, ``sweepd``, ``experiments``) plus ``bench.py``:

* ``open(..., "w"/"wb"/"a"/...)`` and ``<path>.open("w")`` — any mode
  containing ``w``, ``a``, ``x``, or ``+``;
* ``json.dump(...)`` / ``pickle.dump(...)`` — stream dumps imply an open
  writable handle;
* ``<path>.write_text(...)`` / ``<path>.write_bytes(...)``.

Legitimate exceptions (an append-only journal, a hard-link fallback that
copies an already-stamped file) carry an explicit
``# repro-lint: disable=RL007`` pragma — the point is that bypassing the
discipline is visible and justified, not impossible.

The ``--program`` run extends this with RL105, which catches the same
writes laundered through helpers *outside* these packages.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.engine import ProjectContext, Rule, SourceFile, register_rule

#: Packages whose files own durable state (checkpoints, manifests,
#: results, caches); ``bench.py`` writes BENCH_*.json documents.
SCOPE_PACKAGES = frozenset({"snapshot", "sweepd", "experiments"})
SCOPE_FILES = frozenset({"bench.py"})

#: ``open`` modes that create or mutate the target file.
_WRITE_MODE_CHARS = frozenset("wax+")

_FIX_HINT = (
    "route it through repro.persist (write_json/atomic_write_bytes) so the "
    "file is atomic, checksummed, fault-injectable, and fsck-verifiable "
    "(docs/FAULTS.md)"
)


def _open_mode(node: ast.Call) -> Optional[str]:
    """The literal mode string of an ``open``-shaped call, if present."""
    if len(node.args) >= 2:
        candidate = node.args[1]
    else:
        candidate = next(
            (kw.value for kw in node.keywords if kw.arg == "mode"), None
        )
    if candidate is None and not node.args and not any(
        kw.arg == "mode" for kw in node.keywords
    ):
        return None
    if isinstance(candidate, ast.Constant) and isinstance(candidate.value, str):
        return candidate.value
    return None


def _path_open_mode(node: ast.Call) -> Optional[str]:
    """Mode of a ``<path>.open(...)`` call (first positional arg)."""
    if node.args:
        candidate = node.args[0]
        if isinstance(candidate, ast.Constant) and isinstance(candidate.value, str):
            return candidate.value
    for kw in node.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, str):
            return kw.value.value
    return None


def classify_raw_write(node: ast.Call) -> Optional[str]:
    """Describe *node* when it is a raw persistent-write call, else None.

    Shared with the RL105 whole-program extraction so the per-file and
    cross-module variants agree on what counts as a raw write.
    """
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        mode = _open_mode(node)
        if mode is not None and _WRITE_MODE_CHARS.intersection(mode):
            return f'open(..., "{mode}")'
        return None
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name) and base.id in ("json", "pickle") \
                and func.attr == "dump":
            return f"{base.id}.dump(...)"
        if func.attr in ("write_text", "write_bytes"):
            return f".{func.attr}(...)"
        if func.attr == "open":
            mode = _path_open_mode(node)
            if mode is not None and _WRITE_MODE_CHARS.intersection(mode):
                return f'.open("{mode}")'
    return None


def in_persistence_scope(parts) -> bool:
    """True when a relpath's segments fall under the RL007 scope."""
    return any(part in SCOPE_PACKAGES for part in parts) or (
        parts and parts[-1] in SCOPE_FILES
    )


@register_rule
class PersistDisciplineRule(Rule):
    """Flag raw state-file writes that bypass ``repro.persist``."""

    rule_id = "RL007"
    name = "persist-discipline"

    def collect(self, source: SourceFile, ctx: ProjectContext) -> None:
        if not in_persistence_scope(source.parts):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            description = classify_raw_write(node)
            if description is None:
                continue
            ctx.emit(
                self, source, node,
                f"raw {description} bypasses the persistence layer — the "
                f"write can tear under a crash and fsck cannot verify it; "
                f"{_FIX_HINT}",
            )
