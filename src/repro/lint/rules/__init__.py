"""Rule registry: importing this package registers every built-in rule."""

from repro.lint.rules import (
    config_liveness,
    determinism,
    hot_path,
    persist_discipline,
    snapshot_safety,
    stats_keys,
    units,
)

__all__ = [
    "determinism",
    "stats_keys",
    "config_liveness",
    "units",
    "hot_path",
    "snapshot_safety",
    "persist_discipline",
]
