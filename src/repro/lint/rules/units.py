"""RL004 — unit hygiene: cycles are not bytes are not addresses.

The timing model mixes three integer-valued quantities that must never
meet in the same ``+``/``-``: **cycles** (CPU clock ticks), **bytes**
(capacities, transfer sizes), and **physical addresses**.  The aliases
``Cycles``/``Bytes`` (``repro.common.timeline``) and ``PhysAddr``
(``repro.common.addr``) make the intent visible in signatures; this rule
makes it checkable.

Within any function, the rule tracks parameters and locals annotated with
one of the aliases and flags:

* ``+``/``-`` between a ``Cycles`` quantity and a ``Bytes`` quantity
  (adding a capacity to a timestamp is always a bug) — error;
* ``+``/``-``/``*`` between a ``Cycles``/``PhysAddr`` quantity and a bare
  ``float`` literal (cycle counts and addresses are integral; a float
  factor silently turns exact timestamps into rounding-sensitive ones) —
  warning;
* ``+``/``-``/``*`` between a ``PhysAddr`` and a ``Cycles`` quantity —
  error.  (``PhysAddr + Bytes`` stays legal: that is address arithmetic.)

The analysis is annotation-driven and local: unannotated code emits
nothing, so the rule can be adopted incrementally.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

from repro.lint.engine import (
    ProjectContext,
    Rule,
    Severity,
    SourceFile,
    register_rule,
)

#: The unit aliases the rule understands.
UNIT_NAMES = ("Cycles", "Bytes", "PhysAddr")

#: Sentinel unit for bare float literals.
_FLOAT = "float"

_ADDITIVE = (ast.Add, ast.Sub)
_SCALING = (ast.Add, ast.Sub, ast.Mult)


def _annotation_unit(annotation: Optional[ast.AST]) -> Optional[str]:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Name) and annotation.id in UNIT_NAMES:
        return annotation.id
    if isinstance(annotation, ast.Attribute) and annotation.attr in UNIT_NAMES:
        return annotation.attr
    if isinstance(annotation, ast.Constant) and annotation.value in UNIT_NAMES:
        return str(annotation.value)
    return None


@register_rule
class UnitHygieneRule(Rule):
    """RL004: annotated-unit arithmetic checks in timing code."""

    rule_id = "RL004"
    name = "unit-hygiene"
    default_severity = Severity.ERROR

    def collect(self, source: SourceFile, ctx: ProjectContext) -> None:
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(node, source, ctx)

    # -- per-function analysis --------------------------------------------
    def _check_function(self, func, source: SourceFile, ctx: ProjectContext) -> None:
        env: Dict[str, str] = {}
        args = func.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            unit = _annotation_unit(arg.annotation)
            if unit is not None:
                env[arg.arg] = unit
        for node in ast.walk(func):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                unit = _annotation_unit(node.annotation)
                if unit is not None:
                    env[node.target.id] = unit
        if not env:
            return
        for node in ast.walk(func):
            if isinstance(node, ast.BinOp):
                self._check_binop(node, env, source, ctx)

    def _unit_of(self, expr: ast.AST, env: Dict[str, str]) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Constant):
            return _FLOAT if isinstance(expr.value, float) else None
        if isinstance(expr, ast.UnaryOp):
            return self._unit_of(expr.operand, env)
        if isinstance(expr, ast.BinOp):
            left = self._unit_of(expr.left, env)
            right = self._unit_of(expr.right, env)
            if isinstance(expr.op, ast.Div):
                # A ratio of two annotated quantities is dimensionless.
                return None
            for unit in UNIT_NAMES:
                if left == unit or right == unit:
                    return unit
            if left == _FLOAT or right == _FLOAT:
                return _FLOAT
        return None

    def _check_binop(
        self, node: ast.BinOp, env: Dict[str, str], source, ctx
    ) -> None:
        left = self._unit_of(node.left, env)
        right = self._unit_of(node.right, env)
        if left is None or right is None or left == right:
            return
        units = {left, right}
        if isinstance(node.op, _ADDITIVE) and units == {"Cycles", "Bytes"}:
            ctx.emit(
                self, source, node,
                "arithmetic mixes a Cycles quantity with a Bytes quantity: "
                "adding a size to a timestamp is meaningless — convert via "
                "the device's bytes-per-cycle rate first",
            )
        elif isinstance(node.op, _SCALING) and units == {"Cycles", "PhysAddr"}:
            ctx.emit(
                self, source, node,
                "arithmetic mixes a PhysAddr with a Cycles quantity: "
                "addresses and timestamps live in different spaces",
            )
        elif (
            isinstance(node.op, _SCALING)
            and _FLOAT in units
            and units & {"Cycles", "PhysAddr"}
        ):
            quantity = (units & {"Cycles", "PhysAddr"}).pop()
            ctx.emit(
                self, source, node,
                f"float literal in {quantity} arithmetic: {quantity} values "
                "are exact integers; a float factor makes timestamps "
                "rounding-sensitive — scale with integer arithmetic "
                "(e.g. `value * 3 // 2`) instead",
                severity=Severity.WARNING,
            )
