"""The committed lint baseline: grandfathered findings.

Some findings are real but cannot be fixed without changing simulation
results (e.g. wiring up a dead latency knob would shift every golden
digest).  Those live in ``lint-baseline.json`` at the repository root:
each entry pins one finding by its line-number-independent fingerprint
plus a human-written ``comment`` explaining *why* it is grandfathered.

``python -m repro lint`` subtracts baselined findings from the failing
set; ``--update-baseline`` rewrites the file from the current findings,
preserving comments of entries that survive.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.engine import Finding, LintReport

DEFAULT_BASELINE_PATH = "lint-baseline.json"

_FORMAT_VERSION = 1


class Baseline:
    """The set of grandfathered findings, keyed by fingerprint."""

    def __init__(self, entries: Optional[Dict[str, Dict[str, object]]] = None):
        #: fingerprint -> {"rule", "path", "message", "comment"}.
        self.entries: Dict[str, Dict[str, object]] = dict(entries or {})

    # -- persistence -------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        document = json.loads(path.read_text(encoding="utf-8"))
        entries = {
            str(entry["fingerprint"]): {
                "rule": entry.get("rule", ""),
                "path": entry.get("path", ""),
                "message": entry.get("message", ""),
                "comment": entry.get("comment", ""),
            }
            for entry in document.get("findings", [])
        }
        return cls(entries)

    def save(self, path: Path) -> None:
        document = {
            "version": _FORMAT_VERSION,
            "findings": [
                {
                    "fingerprint": fingerprint,
                    "rule": entry["rule"],
                    "path": entry["path"],
                    "message": entry["message"],
                    "comment": entry["comment"],
                }
                for fingerprint, entry in sorted(self.entries.items())
            ],
        }
        path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    # -- application -------------------------------------------------------
    def contains(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    def apply(self, report: LintReport) -> LintReport:
        """Move baselined findings out of the report's active set."""
        active: List[Finding] = []
        for finding in report.findings:
            if self.contains(finding):
                report.baselined.append(finding)
            else:
                active.append(finding)
        report.findings = active
        return report

    def update_from(
        self, findings: Iterable[Finding]
    ) -> Tuple[int, int]:
        """Rebuild the baseline from *findings* (typically a report's
        failing set), keeping comments of entries that are still present.

        Returns ``(kept, added)`` counts.
        """
        kept = added = 0
        fresh: Dict[str, Dict[str, object]] = {}
        for finding in findings:
            previous = self.entries.get(finding.fingerprint)
            if previous is not None:
                kept += 1
                comment = previous.get("comment", "")
            else:
                added += 1
                comment = "TODO: justify or fix this grandfathered finding"
            fresh[finding.fingerprint] = {
                "rule": finding.rule,
                "path": finding.path,
                "message": finding.message,
                "comment": comment,
            }
        self.entries = fresh
        return kept, added

    def stale_entries(self, findings: Iterable[Finding]) -> List[str]:
        """Fingerprints pinned in the baseline but no longer found."""
        live = {finding.fingerprint for finding in findings}
        return sorted(fp for fp in self.entries if fp not in live)
