"""The ``python -m repro lint`` command implementation.

Kept separate from :mod:`repro.cli` so the argparse layer stays thin and
the command is importable (and testable) as a function: ``run_lint``
returns the process exit code.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import Baseline, DEFAULT_BASELINE_PATH
from repro.lint.engine import LintEngine, Severity
from repro.lint.program.cache import DEFAULT_CACHE_PATH

#: What the linter covers when no explicit path is given.
DEFAULT_LINT_PATHS = ("src/repro",)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=None,
        help=f"files/directories to lint (default: {' '.join(DEFAULT_LINT_PATHS)})",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is stable and machine-readable)",
    )
    parser.add_argument(
        "--baseline", default=DEFAULT_BASELINE_PATH, metavar="PATH",
        help="baseline file of grandfathered findings "
             f"(default: {DEFAULT_BASELINE_PATH})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file: report every finding",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current failing findings "
             "(keeps comments of entries that survive) and exit 0",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="project root paths are resolved against (default: cwd)",
    )
    parser.add_argument(
        "--program", action="store_true",
        help="enable the whole-program analyzer (RL1xx rules: cross-module "
             "stats liveness, determinism taint, checkpoint reachability, "
             "SoA kernel contracts)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="PATH",
        help="facts-cache file for incremental --program runs "
             f"(default: {DEFAULT_CACHE_PATH}); only read/written with "
             "--program",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="force a cold --program run (no cache read or write)",
    )
    parser.add_argument(
        "--graph", choices=("dot",), default=None,
        help="instead of linting, dump the resolved whole-program call "
             "graph (implies --program)",
    )


def run_lint(
    paths: Optional[List[str]] = None,
    format: str = "text",
    baseline_path: str = DEFAULT_BASELINE_PATH,
    use_baseline: bool = True,
    update_baseline: bool = False,
    root: Optional[Path] = None,
    program: bool = False,
    cache: Optional[str] = None,
    no_cache: bool = False,
    graph: Optional[str] = None,
) -> int:
    """Lint *paths* and print a report; returns the process exit code."""
    root = (root or Path.cwd()).resolve()
    if graph is not None:
        program = True
    cache_path: Optional[Path] = None
    if program and not no_cache:
        cache_path = Path(cache) if cache else Path(DEFAULT_CACHE_PATH)
        if not cache_path.is_absolute():
            cache_path = root / cache_path
    engine = LintEngine(root=root, program=program, cache_path=cache_path)
    report = engine.run(list(paths) if paths else list(DEFAULT_LINT_PATHS))

    if graph == "dot":
        model = engine.last_program_model
        if model is None:
            print("error: program model unavailable (parse errors?)")
            return 1
        print(model.graph.to_dot(), end="")
        return 0

    baseline_file = Path(baseline_path)
    if not baseline_file.is_absolute():
        baseline_file = root / baseline_file

    if update_baseline:
        baseline = Baseline.load(baseline_file)
        kept, added = baseline.update_from(report.failing)
        baseline.save(baseline_file)
        print(
            f"baseline updated: {kept} entr{'y' if kept == 1 else 'ies'} kept, "
            f"{added} added -> {baseline_file}"
        )
        return 0

    if use_baseline:
        baseline = Baseline.load(baseline_file)
        report = baseline.apply(report)
        stale = baseline.stale_entries(report.findings + report.baselined)
        for fingerprint in stale:
            entry = baseline.entries[fingerprint]
            print(
                f"note: stale baseline entry {fingerprint} "
                f"({entry['rule']} {entry['path']}) — the finding is gone; "
                "run --update-baseline to drop it"
            )

    if format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
        failing = report.failing
        if failing:
            worst = max(f.severity for f in failing)
            print(
                f"lint failed ({Severity(worst).label}); suppress a "
                "deliberate construct with `# repro-lint: disable=RULE` or "
                "grandfather it with --update-baseline (see docs/LINTING.md)"
            )
    return report.exit_code


def command_lint(args: argparse.Namespace) -> int:
    """argparse handler used by :mod:`repro.cli`."""
    return run_lint(
        paths=args.paths or None,
        format=args.format,
        baseline_path=args.baseline,
        use_baseline=not args.no_baseline,
        update_baseline=args.update_baseline,
        root=Path(args.root) if args.root else None,
        program=args.program,
        cache=args.cache,
        no_cache=args.no_cache,
        graph=args.graph,
    )
