"""The lint rule engine: file loading, rule dispatch, suppressions.

The engine parses every target file once, hands the AST to each registered
rule twice — a per-file ``collect`` pass and a whole-project ``finalize``
pass — and then filters the emitted findings through inline suppressions
and (optionally) the committed baseline.

Rules are plain classes registered with :func:`register_rule`; each one
owns a rule id (``RL001`` ...), a default severity, and whatever state it
needs to accumulate across files.  Cross-file rules (stats-key liveness,
config liveness) collect facts in ``collect`` and emit in ``finalize``;
single-file rules emit directly from ``collect``.
"""

from __future__ import annotations

import ast
import enum
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Type, Union

#: Path segments that mark simulation-critical code: determinism and
#: stats-discipline rules apply only inside these packages.
SIM_PACKAGES = frozenset(
    {"sim", "mem", "core", "vm", "cache", "baselines"}
)

#: Directory names never descended into while collecting files.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".repro_cache", "repro.egg-info"})

_PRAGMA = re.compile(r"#\s*repro-lint:\s*(disable|disable-file)=([A-Za-z0-9_,\s]+)")


class Severity(enum.IntEnum):
    """Finding severities; ``WARNING`` and above fail the lint run."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One lint diagnostic, anchored to a file position."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """A line-number-independent identity used by the baseline file."""
        payload = f"{self.rule}:{self.path}:{self.message}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.severity.label}] {self.message}"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.label,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


class SourceFile:
    """One parsed target file plus its suppression pragmas."""

    def __init__(self, path: Path, relpath: str, text: str, tree: ast.Module):
        self.path = path
        self.relpath = relpath
        self.text = text
        self.tree = tree
        self.lines = text.splitlines()
        #: line number -> set of rule ids disabled on that line ("all" ok).
        self.line_suppressions: Dict[int, Set[str]] = {}
        #: rule ids disabled for the whole file.
        self.file_suppressions: Set[str] = set()
        self._parse_pragmas()

    def _parse_pragmas(self) -> None:
        for lineno, line in enumerate(self.lines, start=1):
            match = _PRAGMA.search(line)
            if not match:
                continue
            scope, names = match.groups()
            rules = {name.strip() for name in names.split(",") if name.strip()}
            if scope == "disable-file":
                self.file_suppressions |= rules
            else:
                self.line_suppressions.setdefault(lineno, set()).update(rules)

    def is_suppressed(self, rule: str, line: int) -> bool:
        """True if *rule* is disabled at *line* by a pragma.

        A pragma suppresses findings on its own line; a pragma on a
        comment-only line also suppresses findings on the next line.
        """
        if self._matches(self.file_suppressions, rule):
            return True
        if self._matches(self.line_suppressions.get(line, ()), rule):
            return True
        above = self.line_suppressions.get(line - 1)
        if above and self._matches(above, rule):
            text = self.lines[line - 2].strip() if line - 2 < len(self.lines) else ""
            if text.startswith("#"):
                return True
        return False

    @staticmethod
    def _matches(rules: Iterable[str], rule: str) -> bool:
        return any(name in ("all", rule) for name in rules)

    @property
    def parts(self) -> Sequence[str]:
        """The relpath's path segments (used for package scoping)."""
        return Path(self.relpath).parts

    @property
    def in_sim_package(self) -> bool:
        return any(part in SIM_PACKAGES for part in self.parts)


class ProjectContext:
    """Shared state handed to every rule: target files and the sink."""

    def __init__(self, root: Path):
        self.root = root
        self.files: List[SourceFile] = []
        self.findings: List[Finding] = []
        #: The whole-program model when ``--program`` is active (a
        #: :class:`repro.lint.program.model.ProgramModel`); rules use it
        #: both to emit RL1xx findings and to dedupe their per-file
        #: approximations (RL002/RL006).
        self.program_model: Optional[object] = None

    def emit(
        self,
        rule: "Rule",
        source: SourceFile,
        node: Union[ast.AST, int],
        message: str,
        severity: Optional[Severity] = None,
    ) -> None:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        col = 0 if isinstance(node, int) else getattr(node, "col_offset", 0)
        self.findings.append(
            Finding(
                rule=rule.rule_id,
                severity=severity if severity is not None else rule.default_severity,
                path=source.relpath,
                line=line,
                col=col,
                message=message,
            )
        )

    def file_by_relpath(self, relpath: str) -> Optional[SourceFile]:
        for source in self.files:
            if source.relpath == relpath or source.relpath.endswith(relpath):
                return source
        return None


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`rule_id`, :attr:`name`, and
    :attr:`default_severity`, then override :meth:`collect` (called once
    per file) and optionally :meth:`finalize` (called once after every
    file was collected — the place for cross-file findings).
    """

    rule_id: str = "RL000"
    name: str = "abstract"
    default_severity: Severity = Severity.WARNING

    def collect(self, source: SourceFile, ctx: ProjectContext) -> None:
        raise NotImplementedError

    def finalize(self, ctx: ProjectContext) -> None:
        """Emit findings that need the whole project; default: nothing."""


_REGISTRY: List[Type[Rule]] = []


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the default rule set."""
    _REGISTRY.append(cls)
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule (import-time registry)."""
    # Importing the rules package populates the registry on first use.
    from repro.lint import rules  # noqa: F401

    return [cls() for cls in _REGISTRY]


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def failing(self) -> List[Finding]:
        return [f for f in self.findings if f.severity >= Severity.WARNING]

    @property
    def exit_code(self) -> int:
        return 1 if self.failing or self.parse_errors else 0

    def render_text(self) -> str:
        lines = [finding.render() for finding in self.findings]
        lines.extend(f"parse error: {message}" for message in self.parse_errors)
        failing = len(self.failing)
        info = len(self.findings) - failing
        lines.append(
            f"checked {self.files_checked} file(s): "
            f"{failing} failing finding(s), {info} informational, "
            f"{len(self.baselined)} baselined, {self.suppressed} suppressed"
        )
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "failing": len(self.failing),
                "informational": len(self.findings) - len(self.failing),
                "suppressed": self.suppressed,
                "baselined": [f.as_dict() for f in self.baselined],
                "findings": [f.as_dict() for f in self.findings],
                "parse_errors": list(self.parse_errors),
                "exit_code": self.exit_code,
            },
            indent=2,
            sort_keys=True,
        )


class LintEngine:
    """Runs a rule set over a file tree and returns a :class:`LintReport`."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        root: Optional[Path] = None,
        program: bool = False,
        cache_path: Optional[Path] = None,
    ):
        self.rules = list(rules) if rules is not None else all_rules()
        self.root = (root or Path.cwd()).resolve()
        self.program = program
        #: Facts-cache location for program mode; None disables caching.
        self.cache_path = cache_path
        #: The last run's program model (for --graph dumps and tests).
        self.last_program_model: Optional[object] = None

    # -- file collection ---------------------------------------------------
    def collect_files(self, paths: Sequence[Union[str, Path]]) -> List[Path]:
        out: List[Path] = []
        for raw in paths:
            path = Path(raw)
            if not path.is_absolute():
                path = self.root / path
            if path.is_dir():
                out.extend(
                    candidate
                    for candidate in sorted(path.rglob("*.py"))
                    if not _SKIP_DIRS.intersection(candidate.parts)
                )
            elif path.suffix == ".py":
                out.append(path)
        # De-duplicate while keeping deterministic order.
        return sorted(set(out))

    def _relpath(self, path: Path) -> str:
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()

    # -- execution ---------------------------------------------------------
    def run(self, paths: Sequence[Union[str, Path]]) -> LintReport:
        report = LintReport()
        ctx = ProjectContext(self.root)
        for path in self.collect_files(paths):
            try:
                text = path.read_text(encoding="utf-8")
                tree = ast.parse(text, filename=str(path))
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                report.parse_errors.append(f"{self._relpath(path)}: {exc}")
                continue
            ctx.files.append(SourceFile(path, self._relpath(path), text, tree))
        report.files_checked = len(ctx.files)

        rules = self.rules
        if self.program:
            # Build the whole-program model *before* any collect pass so
            # per-file rules can already dedupe against it, then append
            # the RL1xx rules to the dispatch list.
            from repro.lint.program.base import all_program_rules
            from repro.lint.program.cache import AnalysisCache
            from repro.lint.program.model import build_program_model

            cache = AnalysisCache(self.cache_path) if self.cache_path else None
            model = build_program_model(self.root, ctx.files, cache)
            ctx.program_model = model
            self.last_program_model = model
            rules = rules + all_program_rules()

        for rule in rules:
            for source in ctx.files:
                rule.collect(source, ctx)
        for rule in rules:
            rule.finalize(ctx)

        for finding in sorted(
            ctx.findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        ):
            source = ctx.file_by_relpath(finding.path)
            if source is not None and source.is_suppressed(finding.rule, finding.line):
                report.suppressed += 1
            else:
                report.findings.append(finding)
        return report


def lint_paths(
    paths: Sequence[Union[str, Path]],
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    program: bool = False,
    cache_path: Optional[Path] = None,
) -> LintReport:
    """Convenience wrapper: lint *paths* with the default rule set."""
    return LintEngine(
        rules=rules, root=root, program=program, cache_path=cache_path
    ).run(paths)
