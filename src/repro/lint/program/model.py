"""Whole-program composition: facts → symbol table → fixpoints.

:func:`build_program_model` turns the per-file facts (extracted fresh or
served from the content-hash cache) into the cross-module conclusions
the RL1xx rules consume:

* aggregated stats-key record/read sites (RL101 liveness);
* an interprocedural taint fixpoint over the call graph — which
  functions return nondeterminism-tainted values, which parameters reach
  stats/state sinks — and the resulting source→sink findings (RL102);
* the checkpoint-reachable class closure rooted at ``System`` with the
  attribute path that witnesses each class's reachability (RL103);
* numpy array allocations grouped by ``Class.attr`` target (RL104).

Propagation runs from scratch every time — it is linear-ish in the size
of the facts and takes milliseconds; only parsing + extraction is worth
caching.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.program.cache import AnalysisCache
from repro.lint.program.callgraph import CallGraph
from repro.lint.program.extract import extract_module_facts
from repro.lint.program.facts import ArrayFact, KeySite, ModuleFacts, Ref
from repro.lint.program.symbols import SymbolId, SymbolTable

#: Class names treated as checkpoint roots when present in the program.
DEFAULT_ROOT_CLASSES = ("System",)

#: Directory names never scanned for program sources.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".repro_cache", "repro.egg-info"})

#: Fixpoint iteration bound; cycles converge far earlier in practice.
_MAX_PASSES = 50


@dataclass(frozen=True)
class SinkPath:
    """A parameter-to-sink witness: which sink, through which calls."""

    kind: str
    detail: str
    #: Function symbols from the entry function down to the sink's owner.
    chain: Tuple[SymbolId, ...]


@dataclass(frozen=True)
class TaintFinding:
    """One whole-program source→sink flow, anchored at the source site."""

    relpath: str
    function: SymbolId
    line: int
    col: int
    source: str
    sink_kind: str
    sink_detail: str
    chain: Tuple[SymbolId, ...]


class ProgramModel:
    """The resolved whole-program view handed to RL1xx rules."""

    def __init__(self, table: SymbolTable, graph: CallGraph):
        self.table = table
        self.graph = graph
        #: stats key -> [(relpath, site)] across the whole program.
        self.recorded: Dict[str, List[Tuple[str, KeySite]]] = {}
        self.read: Dict[str, List[Tuple[str, KeySite]]] = {}
        #: f-string record prefixes: [(prefix, relpath, site)].
        self.record_patterns: List[Tuple[str, str, KeySite]] = []
        #: function symbol -> nondeterminism sources its return may carry.
        self.ret_sources: Dict[SymbolId, FrozenSet[str]] = {}
        #: function symbol -> param index -> sink witnesses.
        self.param_sinks: Dict[SymbolId, Dict[int, Tuple[SinkPath, ...]]] = {}
        self.taint_findings: List[TaintFinding] = []
        #: checkpoint-reachable class symbol -> human attribute chain.
        self.reachable: Dict[SymbolId, str] = {}
        self.root_symbols: List[SymbolId] = []
        #: codec-registered class symbols/bare names (snapshot-handled).
        self.codec_symbols: Set[SymbolId] = set()
        self.codec_names: Set[str] = set()
        #: "Class.attr" -> [(relpath, fact)] numpy allocations.
        self.arrays_by_target: Dict[str, List[Tuple[str, ArrayFact]]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # -- convenience -------------------------------------------------------
    def relpath_of(self, symbol: SymbolId) -> Optional[str]:
        facts = self.table.modules.get(symbol.partition(":")[0])
        return facts.relpath if facts is not None else None

    def class_is_snapshot_handled(self, symbol: SymbolId) -> bool:
        """Exempt (defines its own pickling hooks) or codec-registered."""
        cls = self.table.class_named(symbol)
        if cls is None:
            return True
        if cls.exempt or symbol in self.codec_symbols:
            return True
        return cls.name in self.codec_names


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------


def _scan_program_files(
    root: Path, paths: Sequence[Path], known: Set[str]
) -> List[Tuple[str, Path]]:
    out: List[Tuple[str, Path]] = []
    for base in paths:
        if not base.is_dir():
            continue
        for candidate in sorted(base.rglob("*.py")):
            if _SKIP_DIRS.intersection(candidate.parts):
                continue
            try:
                relpath = candidate.resolve().relative_to(root).as_posix()
            except ValueError:
                relpath = candidate.as_posix()
            if relpath not in known:
                known.add(relpath)
                out.append((relpath, candidate))
    return out


def _facts_for(
    relpath: str,
    text: str,
    tree: Optional[ast.Module],
    cache: Optional[AnalysisCache],
    model: ProgramModel,
) -> Optional[ModuleFacts]:
    if cache is not None:
        cached = cache.get(relpath, text)
        if cached is not None:
            model.cache_hits += 1
            return cached
    if tree is None:
        try:
            tree = ast.parse(text, filename=relpath)
        except SyntaxError:
            return None
    model.cache_misses += 1
    facts = extract_module_facts(relpath, text, tree)
    if cache is not None:
        cache.put(relpath, text, facts)
    return facts


def build_program_model(
    root: Path,
    sources: Sequence[object],
    cache: Optional[AnalysisCache] = None,
    root_classes: Sequence[str] = DEFAULT_ROOT_CLASSES,
) -> ProgramModel:
    """Build the whole-program model.

    *sources* are the engine's parsed :class:`SourceFile` objects (any
    object with ``relpath``/``text``/``tree`` attributes).  When the repo
    layout (``src/repro``) exists under *root*, files outside the linted
    set are scanned in too, so a partial lint still reasons against the
    full program.
    """
    placeholder = ProgramModel(SymbolTable([]), CallGraph(SymbolTable([])))
    all_facts: List[ModuleFacts] = []
    known: Set[str] = set()
    for source in sources:
        relpath = getattr(source, "relpath")
        known.add(relpath)
        facts = _facts_for(
            relpath, getattr(source, "text"), getattr(source, "tree"), cache, placeholder
        )
        if facts is not None:
            all_facts.append(facts)
    for relpath, path in _scan_program_files(root, [root / "src" / "repro"], known):
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        facts = _facts_for(relpath, text, None, cache, placeholder)
        if facts is not None:
            all_facts.append(facts)
    if cache is not None:
        cache.save()

    table = SymbolTable(all_facts)
    model = ProgramModel(table, CallGraph(table))
    model.cache_hits = placeholder.cache_hits
    model.cache_misses = placeholder.cache_misses
    _aggregate_stats(model)
    _aggregate_arrays(model)
    _collect_codec_registrations(model)
    _run_taint_fixpoint(model)
    _collect_taint_findings(model)
    _compute_reachability(model, root_classes)
    return model


# -- stats + arrays ---------------------------------------------------------


def _aggregate_stats(model: ProgramModel) -> None:
    for facts in model.table.modules.values():
        for site in facts.stats_records:
            if site.kind == "pattern":
                model.record_patterns.append((site.key, facts.relpath, site))
            else:
                model.recorded.setdefault(site.key, []).append((facts.relpath, site))
        for site in facts.stats_reads:
            model.read.setdefault(site.key, []).append((facts.relpath, site))


def _aggregate_arrays(model: ProgramModel) -> None:
    for facts in model.table.modules.values():
        for fact in facts.arrays:
            model.arrays_by_target.setdefault(fact.target, []).append(
                (facts.relpath, fact)
            )


def _collect_codec_registrations(model: ProgramModel) -> None:
    for module, facts in model.table.modules.items():
        for name in facts.codec_registered:
            model.codec_names.add(name)
            symbol = model.table.resolve_class(module, ("local", name))
            if symbol is not None:
                model.codec_symbols.add(symbol)


# -- taint fixpoint ---------------------------------------------------------


def _self_class(qualname: str) -> Optional[str]:
    return qualname.split(".")[0] if "." in qualname else None


def _run_taint_fixpoint(model: ProgramModel) -> None:
    table = model.table
    functions = [
        (module, qualname, fn)
        for module, facts in table.modules.items()
        for qualname, fn in facts.functions.items()
    ]
    ret: Dict[SymbolId, FrozenSet[str]] = {}
    sinks: Dict[SymbolId, Dict[int, Set[SinkPath]]] = {}
    for module, qualname, _ in functions:
        symbol = f"{module}:{qualname}"
        ret[symbol] = frozenset()
        sinks[symbol] = {}

    for _ in range(_MAX_PASSES):
        changed = False
        for module, qualname, fn in functions:
            symbol = f"{module}:{qualname}"
            owner = _self_class(qualname)
            for flow in fn.flows:
                src, dst = flow.src, flow.dst
                if dst == ("return",):
                    if src[0] == "source":
                        if src[1] not in ret[symbol]:
                            ret[symbol] = ret[symbol] | {src[1]}
                            changed = True
                    elif src[0] == "call":
                        callee = table.resolve_ref(module, tuple(src[1:]), owner)
                        if callee is not None and not ret.get(callee, frozenset()) <= ret[symbol]:
                            ret[symbol] = ret[symbol] | ret[callee]
                            changed = True
                elif dst[0] == "sink" and src[0] == "param":
                    path = SinkPath(kind=dst[1], detail=dst[2], chain=(symbol,))
                    index = int(src[1])
                    bucket = sinks[symbol].setdefault(index, set())
                    if path not in bucket:
                        bucket.add(path)
                        changed = True
                elif dst[0] == "call_arg" and src[0] == "param":
                    callee = table.resolve_ref(module, tuple(dst[2:]), owner)
                    if callee is None:
                        continue
                    index = int(src[1])
                    for path in sinks.get(callee, {}).get(int(dst[1]), ()):
                        if symbol in path.chain:
                            continue  # recursion guard
                        extended = SinkPath(
                            kind=path.kind, detail=path.detail,
                            chain=(symbol,) + path.chain,
                        )
                        bucket = sinks[symbol].setdefault(index, set())
                        if extended not in bucket:
                            bucket.add(extended)
                            changed = True
        if not changed:
            break

    model.ret_sources = ret
    model.param_sinks = {
        symbol: {index: tuple(sorted(paths, key=lambda p: p.chain))
                 for index, paths in per_fn.items()}
        for symbol, per_fn in sinks.items()
    }


def _collect_taint_findings(model: ProgramModel) -> None:
    table = model.table
    seen: Set[Tuple[str, int, int, str, str]] = set()

    def add(
        relpath: str, symbol: SymbolId, line: int, col: int,
        source: str, kind: str, detail: str, chain: Tuple[SymbolId, ...],
    ) -> None:
        key = (relpath, line, col, source, detail)
        if key in seen:
            return
        seen.add(key)
        model.taint_findings.append(
            TaintFinding(
                relpath=relpath, function=symbol, line=line, col=col,
                source=source, sink_kind=kind, sink_detail=detail, chain=chain,
            )
        )

    for module, facts in table.modules.items():
        for qualname, fn in facts.functions.items():
            symbol = f"{module}:{qualname}"
            owner = _self_class(qualname)
            for flow in fn.flows:
                src, dst = flow.src, flow.dst
                sources: List[str] = []
                if src[0] == "source":
                    sources = [src[1]]
                elif src[0] == "call":
                    callee = table.resolve_ref(module, tuple(src[1:]), owner)
                    if callee is not None:
                        sources = sorted(model.ret_sources.get(callee, frozenset()))
                if not sources:
                    continue
                if dst[0] == "sink":
                    for source in sources:
                        add(
                            facts.relpath, symbol, flow.line, flow.col,
                            source, dst[1], dst[2], (symbol,),
                        )
                elif dst[0] == "call_arg":
                    callee = table.resolve_ref(module, tuple(dst[2:]), owner)
                    if callee is None:
                        continue
                    for path in model.param_sinks.get(callee, {}).get(int(dst[1]), ()):
                        for source in sources:
                            add(
                                facts.relpath, symbol, flow.line, flow.col,
                                source, path.kind, path.detail,
                                (symbol,) + path.chain,
                            )
    model.taint_findings.sort(key=lambda f: (f.relpath, f.line, f.col, f.source))


# -- checkpoint reachability ------------------------------------------------


def _class_edge_targets(
    model: ProgramModel, module: str, cls_symbol: SymbolId, target: Ref
) -> List[SymbolId]:
    """Resolve one attr-edge target ref to class symbols."""
    table = model.table
    if target and target[0] == "table" and len(target) == 2:
        name = target[1]
        symbols = table.class_table_targets(module, name)
        if symbols:
            return symbols
        # The table itself may be imported from another module.
        facts = table.modules.get(module)
        if facts is not None and name in facts.imports:
            dotted = facts.imports[name]
            owner, _, table_name = dotted.rpartition(".")
            return table.class_table_targets(owner, table_name)
        return []
    if target and target[0] == "self" and len(target) == 2:
        # A factory method: follow what it constructs/annotates.
        method_symbol = table.method_of(cls_symbol, target[1])
        if method_symbol is None:
            return []
        fn = table.function_named(method_symbol)
        if fn is None:
            return []
        method_module = method_symbol.partition(":")[0]
        out: List[SymbolId] = []
        for ref in fn.returns_new:
            out.extend(_class_edge_targets(model, method_module, cls_symbol, ref))
        for leaf in fn.return_annotation:
            resolved = table.resolve_class(method_module, ("local", leaf))
            if resolved is not None:
                out.append(resolved)
        return out
    resolved = table.resolve_class(module, target)
    return [resolved] if resolved is not None else []


def _compute_reachability(model: ProgramModel, root_classes: Sequence[str]) -> None:
    table = model.table
    roots = [
        symbol
        for symbol, (_, cls) in sorted(table.classes.items())
        if cls.name in root_classes
    ]
    model.root_symbols = roots
    queue: List[Tuple[SymbolId, str]] = [
        (symbol, table.class_named(symbol).name if table.class_named(symbol) else symbol)
        for symbol in roots
    ]
    while queue:
        symbol, via = queue.pop(0)
        if symbol in model.reachable:
            continue
        model.reachable[symbol] = via
        if model.class_is_snapshot_handled(symbol) and symbol not in roots:
            continue  # exempt/codec classes own their snapshot encoding
        # Attribute edges of the class and its project-local ancestors.
        ancestry: List[SymbolId] = []
        pending = [symbol]
        while pending:
            current = pending.pop(0)
            if current in ancestry:
                continue
            ancestry.append(current)
            entry = table.classes.get(current)
            if entry is None:
                continue
            current_module, current_cls = entry
            for base in current_cls.bases:
                resolved = table.resolve_class(current_module, base)
                if resolved is not None:
                    pending.append(resolved)
        for owner_symbol in ancestry:
            entry = table.classes.get(owner_symbol)
            if entry is None:
                continue
            owner_module, owner_cls = entry
            for edge in owner_cls.attr_edges:
                for child in _class_edge_targets(
                    model, owner_module, owner_symbol, edge.target
                ):
                    child_cls = table.class_named(child)
                    if child_cls is None or child in model.reachable:
                        continue
                    queue.append((child, f"{via}.{edge.attr} → {child_cls.name}"))
