"""The flow-sensitive intraprocedural dataflow core.

Two analyses share this module:

* :class:`LocalStringBindings` — a reaching-definitions pass over string
  locals, used by the extractor to resolve ``key = "hmc/x"``
  ... ``stats.add(key)`` record sites to their literal keys;
* :func:`analyze_function_taint` — a may-taint analysis over one
  function.  Local names carry a set of *origins* (a concrete
  nondeterminism source, a parameter index, or a callee whose return
  value may be tainted); assignments gen/kill origins in program order,
  branches fork the state and join by union, and loop bodies run twice so
  loop-carried taint converges.  The output is a list of
  :class:`~repro.lint.program.facts.TaintFlow` summaries — local facts
  the model phase composes across the call graph.

The environment (:class:`TaintEnv`) keeps this module policy-free: what
counts as a source, a laundering call, or a sink is decided by the
extractor, which knows the file's imports and package location.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.program.facts import Ref, SinkSite, TaintFlow

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: One taint origin: ("source", description), ("param", index), or
#: ("call", *callee_ref).
Origin = Tuple[str, ...]

#: The per-name taint state: name -> set of origins (empty set == clean).
TaintState = Dict[str, FrozenSet[Origin]]


def _describe(origin: Origin) -> str:
    if origin[0] == "source":
        return origin[1]
    if origin[0] == "param":
        return f"parameter #{origin[1]}"
    return "the return value of " + ".".join(origin[2:] or origin[1:])


class LocalStringBindings:
    """Reaching string-literal definitions of one function's locals.

    Walks the statements in program order; a name assigned a string
    literal (or a module-level string constant) *reaches* later uses
    until any other assignment kills it.  Branches are approximated
    lexically — good enough to resolve the ``key = "..."``/``record(key)``
    idiom without a full CFG.
    """

    def __init__(self, constants: Optional[Dict[str, str]] = None):
        self._constants = dict(constants or {})
        #: name -> (value, assignment line); None value == killed.
        self._bindings: Dict[str, Optional[str]] = {}

    def assign(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            self._bindings[target.id] = value.value
        elif isinstance(value, ast.Name) and value.id in self._constants:
            self._bindings[target.id] = self._constants[value.id]
        else:
            self._bindings[target.id] = None

    def lookup(self, name: str) -> Optional[str]:
        if name in self._bindings:
            return self._bindings[name]
        return self._constants.get(name)


class TaintEnv:
    """Extraction-time policy callbacks for the taint walker."""

    def __init__(
        self,
        source_of: Callable[[ast.Call], Optional[str]],
        launders: Callable[[ast.Call], bool],
        callee_ref: Callable[[ast.Call], Optional[Ref]],
        sink_for_call: Callable[[ast.Call], Optional[SinkSite]],
        sink_for_attr: Callable[[ast.Attribute], Optional[SinkSite]],
    ):
        self.source_of = source_of
        self.launders = launders
        self.callee_ref = callee_ref
        self.sink_for_call = sink_for_call
        self.sink_for_attr = sink_for_attr


class _TaintWalker:
    def __init__(self, env: TaintEnv):
        self.env = env
        self.flows: List[TaintFlow] = []
        self._seen: Set[Tuple[Origin, Ref, int, int]] = set()

    # -- flow emission -----------------------------------------------------
    def _emit(self, origins: FrozenSet[Origin], dst: Ref, node: ast.AST) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        for origin in sorted(origins):
            key = (origin, dst, line, col)
            if key in self._seen:
                continue
            self._seen.add(key)
            self.flows.append(
                TaintFlow(src=origin, dst=dst, line=line, col=col, origin=_describe(origin))
            )

    # -- expression origins ------------------------------------------------
    def origins(self, node: Optional[ast.AST], state: TaintState) -> FrozenSet[Origin]:
        if node is None:
            return frozenset()
        if isinstance(node, ast.Name):
            return state.get(node.id, frozenset())
        if isinstance(node, ast.Call):
            return self._call_origins(node, state)
        if isinstance(node, ast.BinOp):
            return self.origins(node.left, state) | self.origins(node.right, state)
        if isinstance(node, ast.UnaryOp):
            return self.origins(node.operand, state)
        if isinstance(node, ast.BoolOp):
            out: FrozenSet[Origin] = frozenset()
            for value in node.values:
                out |= self.origins(value, state)
            return out
        if isinstance(node, ast.Compare):
            out = self.origins(node.left, state)
            for comparator in node.comparators:
                out |= self.origins(comparator, state)
            return out
        if isinstance(node, ast.IfExp):
            return self.origins(node.body, state) | self.origins(node.orelse, state)
        if isinstance(node, ast.Subscript):
            return self.origins(node.value, state) | self.origins(node.slice, state)
        if isinstance(node, ast.Attribute):
            return self.origins(node.value, state)
        if isinstance(node, ast.Starred):
            return self.origins(node.value, state)
        if isinstance(node, ast.Await):
            return self.origins(node.value, state)
        if isinstance(node, ast.NamedExpr):
            origins = self.origins(node.value, state)
            state[node.target.id] = origins
            return origins
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = frozenset()
            for element in node.elts:
                out |= self.origins(element, state)
            return out
        if isinstance(node, ast.Dict):
            out = frozenset()
            for key in node.keys:
                if key is not None:
                    out |= self.origins(key, state)
            for value in node.values:
                out |= self.origins(value, state)
            return out
        if isinstance(node, ast.JoinedStr):
            out = frozenset()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self.origins(value.value, state)
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            out = frozenset()
            for comp in node.generators:
                out |= self.origins(comp.iter, state)
            out |= self.origins(node.elt, state)
            return out
        if isinstance(node, ast.DictComp):
            out = frozenset()
            for comp in node.generators:
                out |= self.origins(comp.iter, state)
            return out | self.origins(node.key, state) | self.origins(node.value, state)
        return frozenset()

    def _call_origins(self, node: ast.Call, state: TaintState) -> FrozenSet[Origin]:
        source = self.env.source_of(node)
        if source is not None:
            return frozenset({("source", source)})
        if self.env.launders(node):
            # A DeterministicRng draw: sanctioned randomness, clean by
            # definition — the laundering point of repro.common.rng.
            for arg in node.args:
                self.origins(arg, state)
            return frozenset()
        ref = self.env.callee_ref(node)
        arg_origins: FrozenSet[Origin] = frozenset()
        for index, arg in enumerate(node.args):
            origins = self.origins(arg, state)
            arg_origins |= origins
            if origins and ref is not None:
                self._emit(origins, ("call_arg", str(index), *ref), arg)
        for keyword in node.keywords:
            arg_origins |= self.origins(keyword.value, state)
        sink = self.env.sink_for_call(node)
        if sink is not None and arg_origins:
            self._emit(arg_origins, ("sink", sink.kind, sink.detail), node)
        # Conservative may-taint: a call's return carries its tainted
        # arguments (wrappers like int()/min() preserve taint) plus, for
        # project callees, whatever the callee itself returns — resolved
        # transitively by the model phase via the ("call", ...) origin.
        if ref is not None:
            return arg_origins | frozenset({("call", *ref)})
        return arg_origins

    # -- statements --------------------------------------------------------
    def exec_block(self, body: Sequence[ast.stmt], state: TaintState) -> None:
        for stmt in body:
            self.exec_stmt(stmt, state)

    @staticmethod
    def _merge(into: TaintState, *branches: TaintState) -> None:
        names = set(into)
        for branch in branches:
            names |= set(branch)
        for name in names:
            merged = into.get(name, frozenset())
            for branch in branches:
                merged |= branch.get(name, frozenset())
            into[name] = merged

    def _assign_target(
        self, target: ast.expr, origins: FrozenSet[Origin], state: TaintState, node: ast.AST
    ) -> None:
        if isinstance(target, ast.Name):
            state[target.id] = origins  # gen *and* kill: reassignment cleans
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, origins, state, node)
        elif isinstance(target, ast.Starred):
            self._assign_target(target.value, origins, state, node)
        elif isinstance(target, ast.Attribute):
            if origins:
                sink = self.env.sink_for_attr(target)
                if sink is not None:
                    self._emit(origins, ("sink", sink.kind, sink.detail), node)
        elif isinstance(target, ast.Subscript):
            if origins:
                base = target.value
                while isinstance(base, ast.Subscript):
                    base = base.value
                if isinstance(base, ast.Attribute):
                    sink = self.env.sink_for_attr(base)
                    if sink is not None:
                        self._emit(origins, ("sink", sink.kind, sink.detail), node)
            # A tainted index poisons the container's determinism too.
            self.origins(target.slice, state)

    def exec_stmt(self, stmt: ast.stmt, state: TaintState) -> None:
        if isinstance(stmt, ast.Assign):
            origins = self.origins(stmt.value, state)
            for target in stmt.targets:
                self._assign_target(target, origins, state, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign_target(stmt.target, self.origins(stmt.value, state), state, stmt)
        elif isinstance(stmt, ast.AugAssign):
            origins = self.origins(stmt.value, state)
            if isinstance(stmt.target, ast.Name):
                state[stmt.target.id] = state.get(stmt.target.id, frozenset()) | origins
            else:
                self._assign_target(stmt.target, origins, state, stmt)
        elif isinstance(stmt, ast.Return):
            origins = self.origins(stmt.value, state)
            if origins:
                self._emit(origins, ("return",), stmt)
        elif isinstance(stmt, ast.Expr):
            self.origins(stmt.value, state)
        elif isinstance(stmt, ast.If):
            then_state, else_state = dict(state), dict(state)
            self.exec_block(stmt.body, then_state)
            self.exec_block(stmt.orelse, else_state)
            state.clear()
            self._merge(state, then_state, else_state)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_origins = self.origins(stmt.iter, state)
            body_state = dict(state)
            # Two passes so taint assigned late in the body reaches uses
            # early in the next iteration (loop-carried flows).
            for _ in range(2):
                self._assign_target(stmt.target, iter_origins, body_state, stmt)
                self.exec_block(stmt.body, body_state)
            self.exec_block(stmt.orelse, body_state)
            self._merge(state, body_state)
        elif isinstance(stmt, ast.While):
            self.origins(stmt.test, state)
            body_state = dict(state)
            for _ in range(2):
                self.exec_block(stmt.body, body_state)
            self.exec_block(stmt.orelse, body_state)
            self._merge(state, body_state)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                origins = self.origins(item.context_expr, state)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars, origins, state, stmt)
            self.exec_block(stmt.body, state)
        elif isinstance(stmt, ast.Try):
            body_state = dict(state)
            self.exec_block(stmt.body, body_state)
            handler_states = []
            for handler in stmt.handlers:
                handler_state = dict(state)
                self.exec_block(handler.body, handler_state)
                handler_states.append(handler_state)
            self._merge(state, body_state, *handler_states)
            self.exec_block(stmt.orelse, state)
            self.exec_block(stmt.finalbody, state)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            if isinstance(stmt, ast.Assert):
                self.origins(stmt.test, state)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    state.pop(target.id, None)
        # Nested function/class definitions are analyzed on their own;
        # their bodies do not execute here.


def analyze_function_taint(
    func: FunctionNode,
    env: TaintEnv,
    *,
    is_method: bool,
) -> List[TaintFlow]:
    """Run the may-taint walk over *func* and return its flow summaries.

    Parameters are seeded with ``("param", i)`` origins, indexed as the
    *caller* sees them (``self`` excluded for methods), so the model phase
    can match call-site argument positions directly.
    """
    walker = _TaintWalker(env)
    state: TaintState = {}
    params = list(func.args.posonlyargs) + list(func.args.args)
    if is_method and params:
        params = params[1:]
    for index, param in enumerate(params):
        state[param.arg] = frozenset({("param", str(index))})
    walker.exec_block(func.body, state)
    return walker.flows
