"""Incremental analysis cache: per-file facts keyed by content hash.

The cache unit is the serialized :class:`ModuleFacts` of one file; the
key is ``relpath:sha256(content)``, so any edit invalidates exactly that
file's entry and whole-program propagation (symbol table, call graph,
fixpoints) is recomputed from facts — which is cheap — on every run.
A ``FACTS_VERSION`` bump or unreadable cache file silently degrades to a
cold run; the cache is a pure accelerator, never a correctness input.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Optional, Set

from repro.lint.program.facts import FACTS_VERSION, ModuleFacts

#: Default on-disk location, relative to the project root.
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"


def content_key(relpath: str, text: str) -> str:
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return f"{relpath}:{digest}"


class AnalysisCache:
    """Load/store extracted module facts between lint runs."""

    def __init__(self, path: Optional[Path]):
        self.path = path
        self._entries: Dict[str, Dict[str, object]] = {}
        self._seen: Set[str] = set()
        self.hits = 0
        self.misses = 0
        if path is not None and path.exists():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                payload = None
            if (
                isinstance(payload, dict)
                and payload.get("version") == FACTS_VERSION
                and isinstance(payload.get("entries"), dict)
            ):
                self._entries = payload["entries"]

    def get(self, relpath: str, text: str) -> Optional[ModuleFacts]:
        key = content_key(relpath, text)
        self._seen.add(key)
        raw = self._entries.get(key)
        if raw is None:
            self.misses += 1
            return None
        facts = ModuleFacts.from_dict(raw)
        if facts is None:
            self.misses += 1
            return None
        self.hits += 1
        return facts

    def put(self, relpath: str, text: str, facts: ModuleFacts) -> None:
        key = content_key(relpath, text)
        self._seen.add(key)
        self._entries[key] = facts.to_dict()

    def save(self) -> None:
        """Persist, pruning entries for files not seen this run."""
        if self.path is None:
            return
        entries = {key: self._entries[key] for key in sorted(self._seen & set(self._entries))}
        payload = {"version": FACTS_VERSION, "entries": entries}
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
            )
        except OSError:
            pass  # a read-only checkout still lints fine, just cold
