"""The RL1xx whole-program rule family (imported for registration)."""

from repro.lint.program.rules import (  # noqa: F401
    checkpoint_reach,
    determinism_taint,
    persist_reach,
    soa_contracts,
    stats_liveness,
)
