"""RL104 — SoA kernel contracts for ``# repro-hot`` numpy code.

PR 6's batched engine made structure-of-arrays kernels load-bearing:
the producer allocates ``self.ticks = np.zeros(n, dtype=np.int64)`` in
one module and the consumer vectorizes over it in another.  Three
silent performance/correctness hazards cross that module boundary:

* **dtype widening** — the same ``Class.attr`` array allocated with
  different dtypes at different sites (or re-``astype``'d wider in a hot
  kernel), so every binary op upcasts and doubles memory traffic;
* **implicit float64** — numpy's silent default on ``zeros``/``ones``/
  ``empty``/``full`` when the sibling allocation spells out an integer
  dtype, a classic source of accidental float counters;
* **per-element escapes** — ``.item()``/``.tolist()`` round-trips inside
  loops, and array-copying allocators (``np.append``/``concatenate``/
  ``copy``) inside hot kernels, which reintroduce the per-event Python
  costs the SoA refactor removed.

PR 9 added a fourth hazard: **OrderedDict probes in hot kernels**.  The
``OrderedDict``-per-set models (``Tlb``, ``SetAssociativeCache``) are
reference oracles; the hot path runs their struct-of-arrays counterparts
(``SoaTlb``/``SoaCache``).  A ``get``/``pop``/``setdefault``/
``move_to_end``/``popitem`` probe inside a ``# repro-hot`` function is
flagged when its operand resolves to an attribute assigned an
``OrderedDict`` in a module that *also defines an SoA counterpart* (a
class named ``Soa...``) — that pairing is the signal that a vectorizable
replacement exists and the call site picked the reference model by
mistake.  Controller structures where ``OrderedDict`` *is* the hardware
model (the PCT cache's CAM, remap caches, the hot-page tracker) have no
SoA counterpart and are deliberately out of scope; a deliberate
reference-model escape of an in-scope structure (the batched engine's
shared L3) belongs in the lint baseline with a comment.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lint.engine import ProjectContext, Severity
from repro.lint.program.base import ProgramRule, register_program_rule
from repro.lint.program.extract import DTYPE_ORDER
from repro.lint.program.facts import ArrayFact
from repro.lint.program.model import ProgramModel


def _width(dtype: str) -> int:
    return DTYPE_ORDER.get(dtype, 0)


@register_program_rule
class SoaContractRule(ProgramRule):
    """RL104: hot-array dtype/shape discipline across modules."""

    rule_id = "RL104"
    name = "program-soa-contracts"
    default_severity = Severity.WARNING

    def check(self, model: ProgramModel, ctx: ProjectContext) -> None:
        self._check_dtype_conflicts(model, ctx)
        self._check_hot_events(model, ctx)

    # -- allocation-site contracts ----------------------------------------
    def _check_dtype_conflicts(self, model: ProgramModel, ctx: ProjectContext) -> None:
        for target in sorted(model.arrays_by_target):
            sites = model.arrays_by_target[target]
            if len(sites) < 2:
                continue
            narrowest = min(sites, key=lambda entry: _width(entry[1].dtype))
            for relpath, fact in sites:
                if _width(fact.dtype) <= _width(narrowest[1].dtype):
                    continue
                origin = (
                    "numpy's implicit float64 default"
                    if not fact.explicit
                    else f"dtype {fact.dtype}"
                )
                self.emit_at(
                    ctx, relpath, fact.line, fact.col,
                    f"SoA array {target} is allocated with {origin} here but "
                    f"with dtype {narrowest[1].dtype} at "
                    f"{narrowest[0]}:{narrowest[1].line} — mixed dtypes make "
                    "every cross-site binary op upcast and double memory "
                    "traffic; pick one dtype for the array's whole lifetime",
                )

    # -- hot-kernel events -------------------------------------------------
    def _known_dtypes(self, model: ProgramModel) -> Dict[str, List[Tuple[str, ArrayFact]]]:
        by_attr: Dict[str, List[Tuple[str, ArrayFact]]] = {}
        for target, sites in model.arrays_by_target.items():
            attr = target.rpartition(".")[2]
            by_attr.setdefault(attr, []).extend(sites)
        return by_attr

    def _check_hot_events(self, model: ProgramModel, ctx: ProjectContext) -> None:
        by_attr = self._known_dtypes(model)
        #: Attr names assigned an OrderedDict in a module that also
        #: defines an SoA counterpart class — the cross-module
        #: confirmation that a recorded probe has a vectorized
        #: replacement (see module docstring for the scoping rationale).
        odict_attrs = {
            attr
            for facts in model.table.modules.values()
            if any(name.startswith("Soa") for name in facts.classes)
            for attr in facts.odict_attrs
        }
        for facts in model.table.modules.values():
            for event in facts.numpy_events:
                if event.kind == "odict_probe":
                    if event.target in odict_attrs:
                        self.emit_at(
                            ctx, facts.relpath, event.line, event.col,
                            f"OrderedDict probe {event.detail} on "
                            f"'{event.target}' inside repro-hot "
                            f"{event.function} — the OrderedDict models are "
                            "reference oracles and pay linked-list "
                            "reordering per event; use the SoA variant "
                            "(SoaTlb/SoaCache) on the hot path, or baseline "
                            "a deliberate reference-model escape with a "
                            "comment",
                        )
                elif event.kind == "scalar_loop":
                    self.emit_at(
                        ctx, facts.relpath, event.line, event.col,
                        f"per-element {event.detail} round-trip inside a loop "
                        f"in repro-hot {event.function} — this boxes a Python "
                        "object per event; hoist the conversion out of the "
                        "loop or keep the computation in numpy",
                    )
                elif event.kind == "alloc":
                    self.emit_at(
                        ctx, facts.relpath, event.line, event.col,
                        f"{event.detail} in repro-hot {event.function} copies "
                        "its array arguments on every call; preallocate and "
                        "fill in place if this is per-batch",
                        severity=Severity.INFO,
                    )
                elif event.kind == "astype":
                    self._check_astype(model, ctx, facts.relpath, event, by_attr)

    def _check_astype(
        self,
        model: ProgramModel,
        ctx: ProjectContext,
        relpath: str,
        event: object,
        by_attr: Dict[str, List[Tuple[str, ArrayFact]]],
    ) -> None:
        target = getattr(event, "target")
        detail = getattr(event, "detail")
        if not target or not detail or _width(detail) == 0:
            return
        for alloc_relpath, fact in by_attr.get(target, []):
            if _width(detail) > _width(fact.dtype):
                self.emit_at(
                    ctx, relpath, getattr(event, "line"), getattr(event, "col"),
                    f"astype({detail}) in repro-hot {getattr(event, 'function')} "
                    f"widens {fact.target} (allocated as {fact.dtype} at "
                    f"{alloc_relpath}:{fact.line}) and copies the whole "
                    "array; allocate at the wider dtype once or narrow the "
                    "computation",
                )
                return
