"""RL103 — checkpoint reachability proof.

RL006 checks snapshot safety for classes *lexically* inside the
simulation packages.  This rule instead proves the property that
actually matters: every class **transitively reachable from
``System``** through attribute assignments, container population,
class-table dispatch, factory-method returns, and type annotations is
snapshot-safe.  Reachable classes with RL006-style unsafe assignments
(lambdas, closures, file handles, threading primitives on ``self``) are
flagged with the attribute chain that witnesses their reachability;
classes that own their snapshot encoding (``__getstate__`` and friends,
or a registered snapshot codec) terminate the traversal.

When the program defines no root class the rule is silent — fixture
projects opt in by defining a ``System``.
"""

from __future__ import annotations

from repro.lint.engine import ProjectContext, Severity
from repro.lint.program.base import ProgramRule, register_program_rule
from repro.lint.program.model import ProgramModel


@register_program_rule
class CheckpointReachRule(ProgramRule):
    """RL103: the object graph under ``System`` must checkpoint cleanly."""

    rule_id = "RL103"
    name = "program-checkpoint-reachability"
    default_severity = Severity.WARNING

    def check(self, model: ProgramModel, ctx: ProjectContext) -> None:
        for symbol in sorted(model.reachable):
            if model.class_is_snapshot_handled(symbol):
                continue
            cls = model.table.class_named(symbol)
            relpath = model.relpath_of(symbol)
            if cls is None or relpath is None:
                continue
            via = model.reachable[symbol]
            for unsafe in cls.unsafe:
                self.emit_at(
                    ctx, relpath, unsafe.line, unsafe.col,
                    f"{cls.name}.{unsafe.method} stores {unsafe.problem} on "
                    f"self, and {cls.name} is checkpoint-reachable "
                    f"({via}) — snapshotting System would fail or "
                    "silently capture stale state; move it off the instance, "
                    "rebuild it after restore, or define __getstate__",
                    severity=Severity.ERROR,
                )
