"""RL101 — cross-module stats-key liveness.

The whole-program replacement for RL002's per-file liveness
approximation: every record site and every read site in the entire
program participates, including reads through ``StatsSnapshot`` copies
and metric dictionaries in the experiments/report layers that RL002's
``stats``-receiver heuristic cannot see.  A key read anywhere but
recorded nowhere is a silent zero in a figure (typically a typo'd key
straddling the sim/report module boundary); a key recorded but read
nowhere is dead instrumentation weight.
"""

from __future__ import annotations

from repro.lint.engine import ProjectContext, Severity
from repro.lint.program.base import ProgramRule, register_program_rule
from repro.lint.program.model import ProgramModel
from repro.lint.rules.stats_keys import _edit_distance


@register_program_rule
class StatsLivenessRule(ProgramRule):
    """RL101: record/read liveness over the whole program's key space."""

    rule_id = "RL101"
    name = "program-stats-liveness"
    default_severity = Severity.WARNING

    def check(self, model: ProgramModel, ctx: ProjectContext) -> None:
        self._reads_without_records(model, ctx)
        self._records_without_reads(model, ctx)

    @staticmethod
    def _nearest(model: ProgramModel, key: str) -> str:
        best, best_distance = None, 3
        for candidate in model.recorded:
            distance = _edit_distance(key, candidate, limit=2)
            if distance < best_distance:
                best, best_distance = candidate, distance
        return f'; did you mean "{best}"?' if best else ""

    def _reads_without_records(self, model: ProgramModel, ctx: ProjectContext) -> None:
        for key in sorted(model.read):
            if key in model.recorded:
                continue
            if any(key.startswith(prefix) for prefix, _, _ in model.record_patterns):
                continue
            for relpath, site in model.read[key]:
                self.emit_at(
                    ctx, relpath, site.line, site.col,
                    f'stats key "{key}" is read here but recorded nowhere in '
                    f"the program — the consumer silently sees zero"
                    f"{self._nearest(model, key)}",
                )

    def _records_without_reads(self, model: ProgramModel, ctx: ProjectContext) -> None:
        for key in sorted(model.recorded):
            if key in model.read:
                continue
            relpath, site = model.recorded[key][0]
            self.emit_at(
                ctx, relpath, site.line, site.col,
                f'stats key "{key}" is recorded but never read anywhere in '
                "the program (only surfaced via the raw dump); wire it into "
                "a consumer or drop it",
                severity=Severity.INFO,
            )
