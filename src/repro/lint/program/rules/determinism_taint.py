"""RL102 — whole-program determinism taint.

PageSeer runs must be bit-reproducible: the golden-digest harness
(PRs 1–6) diffs stats and checkpoints across engines and resumes.  Any
value derived from ambient nondeterminism — ``random``, wall-clock time,
``id()``, ``os.urandom``, ``uuid`` — that reaches simulator state or a
stats record breaks that contract in ways no per-file rule can see once
the source and the sink live in different functions or modules.

This rule consumes the model's interprocedural taint findings: a source
is clean only when laundered through ``repro.common.rng``'s
``DeterministicRng`` (seeded, named, checkpointable).  Wall-clock reads
that stay in watchdog/telemetry code paths never reach a sink and are
not flagged — the analysis is flow-sensitive, not import-sensitive like
RL001.
"""

from __future__ import annotations

from repro.lint.engine import ProjectContext, Severity
from repro.lint.program.base import ProgramRule, register_program_rule
from repro.lint.program.model import ProgramModel, TaintFinding


def _render_chain(finding: TaintFinding) -> str:
    names = [symbol.partition(":")[2] for symbol in finding.chain]
    return " → ".join(names)


@register_program_rule
class DeterminismTaintRule(ProgramRule):
    """RL102: nondeterminism sources must not reach state or stats."""

    rule_id = "RL102"
    name = "program-determinism-taint"
    default_severity = Severity.WARNING

    def check(self, model: ProgramModel, ctx: ProjectContext) -> None:
        for finding in model.taint_findings:
            if finding.sink_kind == "stats":
                consequence = (
                    f"reaches the stats record at {finding.sink_detail} — "
                    "figures become nondeterministic"
                )
            else:
                consequence = (
                    f"reaches simulator state {finding.sink_detail} — "
                    "checkpoints and golden digests become nondeterministic"
                )
            via = (
                f" (via {_render_chain(finding)})" if len(finding.chain) > 1 else ""
            )
            self.emit_at(
                ctx, finding.relpath, finding.line, finding.col,
                f"value tainted by {finding.source} {consequence}{via}; "
                "draw through common/rng.DeterministicRng instead",
            )
