"""RL105 — whole-program persist-discipline reach.

RL007 flags raw state-file writes *inside* the persistence-owning
packages (``snapshot``, ``sweepd``, ``experiments``, ``bench.py``).  The
obvious way to defeat it is laundering: move the ``open(path, "w")``
into a helper module outside those packages and call it from the
persistence code.  The per-file rule cannot see across that module
boundary; this rule can.

Using the per-function raw-write facts (recorded by the shared RL007
classifier during extraction) and the resolved call graph, it flags
every call edge whose caller lives in the persistence scope and whose
callee — directly or transitively through further out-of-scope helpers
— performs a raw write.  The finding anchors at the *call site* in the
scoped file (where the fix belongs, and where a pragma can be placed)
and names the write it reaches as a witness.

``repro.persist`` itself is exempt: its guts are the one place raw
``open`` calls are supposed to live — that module *is* the discipline.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.engine import ProjectContext, Severity
from repro.lint.program.base import ProgramRule, register_program_rule
from repro.lint.program.model import ProgramModel
from repro.lint.program.symbols import SymbolId
from repro.lint.rules.persist_discipline import in_persistence_scope

#: Modules whose raw writes are the sanctioned implementation of the
#: discipline, not a bypass of it.
_EXEMPT_MODULES = frozenset({"repro.persist", "repro.fsck"})


@register_program_rule
class PersistReachRule(ProgramRule):
    """RL105: raw writes laundered through out-of-scope helpers."""

    rule_id = "RL105"
    name = "program-persist-reach"
    default_severity = Severity.WARNING

    def check(self, model: ProgramModel, ctx: ProjectContext) -> None:
        scope = self._scoped_modules(model)
        writer_witness = self._transitive_writers(model, scope)
        emitted: Set[Tuple[str, int, int, SymbolId]] = set()
        for module in sorted(scope):
            facts = model.table.modules[module]
            for qualname in sorted(facts.functions):
                symbol = f"{module}:{qualname}"
                for edge in model.graph.callees_of(symbol):
                    callee_module = edge.callee.partition(":")[0]
                    if callee_module in scope:
                        continue  # RL007 already covers in-scope callees
                    witness = writer_witness.get(edge.callee)
                    if witness is None:
                        continue
                    key = (facts.relpath, edge.line, edge.col, edge.callee)
                    if key in emitted:
                        continue
                    emitted.add(key)
                    writer_symbol, write = witness
                    location = self._describe(model, writer_symbol, write)
                    self.emit_at(
                        ctx, facts.relpath, edge.line, edge.col,
                        f"{qualname} calls {edge.callee}, which reaches a raw "
                        f"{write.detail} at {location} — a state write "
                        f"laundered outside the persistence packages; route "
                        f"it through repro.persist (docs/FAULTS.md)",
                    )

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _scoped_modules(model: ProgramModel) -> Set[str]:
        return {
            module
            for module, facts in model.table.modules.items()
            if in_persistence_scope(Path(facts.relpath).parts)
        }

    @staticmethod
    def _transitive_writers(
        model: ProgramModel, scope: Set[str]
    ) -> Dict[SymbolId, Tuple[SymbolId, object]]:
        """Out-of-scope function -> (writing symbol, RawWrite) witness.

        A function is a transitive writer when it, or any out-of-scope
        function it can reach through the call graph, records a raw
        write.  Scoped and exempt modules stop the propagation: their
        writes are RL007's (or the persistence layer's own) business.
        """
        out: Dict[SymbolId, Tuple[SymbolId, object]] = {}
        eligible: List[SymbolId] = []
        for module, facts in model.table.modules.items():
            if module in scope or module in _EXEMPT_MODULES:
                continue
            for qualname, fn in facts.functions.items():
                symbol = f"{module}:{qualname}"
                eligible.append(symbol)
                if fn.raw_writes:
                    out[symbol] = (symbol, fn.raw_writes[0])
        # Propagate witnesses backwards over call edges until fixpoint.
        changed = True
        while changed:
            changed = False
            for symbol in eligible:
                if symbol in out:
                    continue
                for edge in model.graph.callees_of(symbol):
                    witness = out.get(edge.callee)
                    if witness is not None:
                        out[symbol] = witness
                        changed = True
                        break
        return out

    @staticmethod
    def _describe(
        model: ProgramModel, writer: SymbolId, write
    ) -> str:
        relpath: Optional[str] = model.relpath_of(writer)
        where = relpath if relpath is not None else writer.partition(":")[0]
        return f"{where}:{write.line}"
