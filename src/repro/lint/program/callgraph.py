"""The project call graph, resolved from per-module extraction facts.

Nodes are program function symbols (``module:Class.method`` or
``module:function``); edges carry the call site (file, line, col) so
rules can point findings at real source locations.  Calls that resolve
to nothing (stdlib, numpy, dynamic dispatch we cannot see) are simply
absent — the analyses treat unresolved callees as opaque.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.program.facts import ModuleFacts
from repro.lint.program.symbols import SymbolId, SymbolTable


class CallEdge:
    """One resolved call site: *caller* invokes *callee* at line/col."""

    __slots__ = ("caller", "callee", "line", "col")

    def __init__(self, caller: SymbolId, callee: SymbolId, line: int, col: int):
        self.caller = caller
        self.callee = callee
        self.line = line
        self.col = col

    def __repr__(self) -> str:
        return f"CallEdge({self.caller} -> {self.callee} @{self.line})"


class CallGraph:
    """Resolved caller → callee edges over the whole program."""

    def __init__(self, table: SymbolTable):
        self.table = table
        self.edges: List[CallEdge] = []
        self._out: Dict[SymbolId, List[CallEdge]] = {}
        self._in: Dict[SymbolId, List[CallEdge]] = {}
        self._build()

    def _build(self) -> None:
        for module, facts in self.table.modules.items():
            for qualname, fn in facts.functions.items():
                caller = f"{module}:{qualname}"
                self_class = qualname.split(".")[0] if "." in qualname else None
                for ref, line, col in fn.calls:
                    callee = self.table.resolve_ref(module, ref, self_class)
                    if callee is None or callee not in self.table.functions:
                        continue
                    edge = CallEdge(caller, callee, line, col)
                    self.edges.append(edge)
                    self._out.setdefault(caller, []).append(edge)
                    self._in.setdefault(callee, []).append(edge)

    def callees_of(self, symbol: SymbolId) -> List[CallEdge]:
        return self._out.get(symbol, [])

    def callers_of(self, symbol: SymbolId) -> List[CallEdge]:
        return self._in.get(symbol, [])

    def reachable_from(self, roots: Iterable[SymbolId]) -> Set[SymbolId]:
        """Transitive closure of callees starting at *roots*."""
        seen: Set[SymbolId] = set()
        queue = list(roots)
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self.callees_of(current):
                queue.append(edge.callee)
        return seen

    # -- rendering ---------------------------------------------------------
    def to_dot(self, *, max_label: int = 60) -> str:
        """Graphviz source for the resolved call graph, grouped by module."""
        by_module: Dict[str, Set[str]] = {}
        mentioned: Set[SymbolId] = set()
        for edge in self.edges:
            mentioned.add(edge.caller)
            mentioned.add(edge.callee)
        for symbol in sorted(mentioned):
            module, _, qualname = symbol.partition(":")
            by_module.setdefault(module, set()).add(qualname)
        lines = [
            "digraph callgraph {",
            "  rankdir=LR;",
            '  node [shape=box, fontsize=10, fontname="monospace"];',
        ]
        for index, (module, names) in enumerate(sorted(by_module.items())):
            lines.append(f'  subgraph "cluster_{index}" {{')
            lines.append(f'    label="{module}";')
            for name in sorted(names):
                label = name if len(name) <= max_label else name[: max_label - 1] + "…"
                lines.append(f'    "{module}:{name}" [label="{label}"];')
            lines.append("  }")
        seen_pairs: Set[Tuple[SymbolId, SymbolId]] = set()
        for edge in self.edges:
            pair = (edge.caller, edge.callee)
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            lines.append(f'  "{edge.caller}" -> "{edge.callee}";')
        lines.append("}")
        return "\n".join(lines) + "\n"


def module_of(symbol: SymbolId) -> str:
    return symbol.partition(":")[0]


def relpath_of(table: SymbolTable, symbol: SymbolId) -> Optional[str]:
    facts: Optional[ModuleFacts] = table.modules.get(module_of(symbol))
    return facts.relpath if facts is not None else None
