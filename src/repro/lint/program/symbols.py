"""The project-wide symbol table: modules, classes, functions, imports.

Maps the linted file tree onto dotted module names (``src/repro/sim/
system.py`` → ``repro.sim.system``), indexes every class and function
defined in the program, and resolves the unresolved :data:`Ref`
descriptors the per-file extractor records (imported names, ``self.``
method calls, dotted chains) to program symbols.

Resolution is deliberately conservative: a reference that cannot be
pinned to a project symbol resolves to ``None`` (external — stdlib,
numpy, ...) and the analyses treat it as opaque.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.lint.program.facts import ClassFacts, FunctionFacts, ModuleFacts, Ref

#: A program-unique symbol id: "module:Class.method", "module:Class",
#: or "module:function".
SymbolId = str


def module_name_for(relpath: str) -> str:
    """Dotted module name of a repo-relative path.

    A leading ``src/`` segment (the packaging layout) is dropped, so
    ``src/repro/sim/system.py`` → ``repro.sim.system``; fixture projects
    without the layout map directly (``sim/model.py`` → ``sim.model``).
    ``__init__.py`` names the package itself.
    """
    parts = [part for part in relpath.split("/") if part]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[: -len(".py")]
    if leaf == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + [leaf]
    return ".".join(parts)


class SymbolTable:
    """Whole-program index over every module's extracted facts."""

    def __init__(self, modules: Iterable[ModuleFacts]):
        #: dotted module name -> its facts.
        self.modules: Dict[str, ModuleFacts] = {}
        #: "module:Class" -> class facts (with the owning module name).
        self.classes: Dict[SymbolId, Tuple[str, ClassFacts]] = {}
        #: "module:qualname" -> function facts.
        self.functions: Dict[SymbolId, Tuple[str, FunctionFacts]] = {}
        #: bare class name -> defining modules (for last-resort lookup).
        self._class_modules: Dict[str, List[str]] = {}
        for facts in modules:
            self.modules[facts.module] = facts
            for name, cls in facts.classes.items():
                self.classes[f"{facts.module}:{name}"] = (facts.module, cls)
                self._class_modules.setdefault(name, []).append(facts.module)
            for qualname, fn in facts.functions.items():
                self.functions[f"{facts.module}:{qualname}"] = (facts.module, fn)

    # -- lookups -----------------------------------------------------------
    def class_named(self, symbol: SymbolId) -> Optional[ClassFacts]:
        entry = self.classes.get(symbol)
        return entry[1] if entry is not None else None

    def function_named(self, symbol: SymbolId) -> Optional[FunctionFacts]:
        entry = self.functions.get(symbol)
        return entry[1] if entry is not None else None

    def method_of(self, class_symbol: SymbolId, method: str) -> Optional[SymbolId]:
        """Resolve *method* on a class, walking project-local bases."""
        seen = set()
        queue = [class_symbol]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            entry = self.classes.get(current)
            if entry is None:
                continue
            module, cls = entry
            if method in cls.methods:
                return f"{module}:{cls.name}.{method}"
            for base in cls.bases:
                resolved = self.resolve_class(module, base)
                if resolved is not None:
                    queue.append(resolved)
        return None

    # -- reference resolution ----------------------------------------------
    def _resolve_dotted(self, module: str, dotted: str) -> Optional[SymbolId]:
        """Resolve an absolute dotted name against the program's modules.

        Tries the longest module prefix: ``repro.sim.cpu.Core`` splits
        into module ``repro.sim.cpu`` + symbol ``Core``;
        ``repro.sim.cpu.Core.step`` yields the method symbol.
        """
        parts = dotted.split(".")
        for split in range(len(parts), 0, -1):
            candidate = ".".join(parts[:split])
            if candidate not in self.modules:
                continue
            remainder = parts[split:]
            if not remainder:
                return None  # a bare module is not a class/function symbol
            head = f"{candidate}:{remainder[0]}"
            if len(remainder) == 1:
                if head in self.classes or head in self.functions:
                    return head
                return None
            if len(remainder) == 2 and head in self.classes:
                return self.method_of(head, remainder[1])
            return None
        return None

    def _expand_local(self, module: str, name: str) -> Optional[str]:
        """Dotted target of *name* in *module*: import, or local symbol."""
        facts = self.modules.get(module)
        if facts is None:
            return None
        if name in facts.imports:
            return facts.imports[name]
        if name in facts.classes or name in facts.functions:
            return f"{module}.{name}"
        return None

    def resolve_ref(
        self, module: str, ref: Ref, self_class: Optional[str] = None
    ) -> Optional[SymbolId]:
        """Resolve an extractor :data:`Ref` to a program symbol (or None).

        ``("local", name)`` looks through the module's imports and
        definitions; ``("self", method)`` resolves on *self_class* with
        base-class walking; ``("dotted", root, *attrs)`` expands the root
        and then resolves the absolute dotted chain.
        """
        if not ref:
            return None
        kind = ref[0]
        if kind == "local" and len(ref) == 2:
            dotted = self._expand_local(module, ref[1])
            return self._resolve_dotted(module, dotted) if dotted else None
        if kind == "self" and len(ref) == 2:
            if self_class is None:
                return None
            return self.method_of(f"{module}:{self_class}", ref[1])
        if kind == "dotted" and len(ref) >= 2:
            dotted = self._expand_local(module, ref[1])
            if dotted is None:
                return None
            return self._resolve_dotted(module, ".".join([dotted, *ref[2:]]))
        return None

    def resolve_class(self, module: str, ref: Ref) -> Optional[SymbolId]:
        """Resolve *ref* to a class symbol, trying harder than
        :meth:`resolve_ref`: a constructor reference, a class-table
        subscript, or a bare annotation name that uniquely identifies a
        project class.
        """
        if ref and ref[0] == "table" and len(ref) == 2:
            return None  # expanded by the caller via class_table_targets
        symbol = self.resolve_ref(module, ref)
        if symbol is not None and symbol in self.classes:
            return symbol
        # A bare name used in an annotation without an import (same-module
        # class, or a unique project-wide class name).
        if ref and ref[0] in ("local", "dotted") and len(ref) >= 2:
            name = ref[-1]
            local = f"{module}:{name}"
            if local in self.classes:
                return local
            defining = self._class_modules.get(name, [])
            if len(defining) == 1:
                return f"{defining[0]}:{name}"
        return None

    def class_table_targets(self, module: str, table: str) -> List[SymbolId]:
        """Class symbols named by a module-level class table's values."""
        facts = self.modules.get(module)
        if facts is None or table not in facts.class_tables:
            return []
        out: List[SymbolId] = []
        for name in facts.class_tables[table]:
            resolved = self.resolve_class(module, ("local", name))
            if resolved is not None:
                out.append(resolved)
        return out
