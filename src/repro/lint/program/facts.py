"""Serializable per-file facts — the unit the analysis cache stores.

The whole-program analyzer never caches ASTs: it caches *facts*, the
distilled per-file summaries that the cross-module phases (symbol
resolution, call-graph propagation, rule evaluation) consume.  Facts are
plain dataclasses with lossless ``to_dict``/``from_dict`` round-trips, so
an incremental run can skip parsing and extraction for every file whose
content hash is unchanged (see :mod:`repro.lint.program.cache`).

Everything in here is *local* to one file: imports are recorded as raw
dotted targets, call sites as unresolved reference descriptors, taint
summaries in terms of parameter indices and callee references.  Turning
those local facts into whole-program conclusions is the job of
:mod:`repro.lint.program.model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Bump when the extraction schema changes; invalidates every cache entry.
#: 2: snapshot-safety classifier learned sockets/selectors (RL006/RL103).
#: 3: OrderedDict-holding attrs + hot-kernel odict-probe events (RL104,
#:    PR-9 array-native streams).
#: 4: per-function raw persistent-write sites (RL105, PR-10 persist
#:    discipline).
FACTS_VERSION = 4

#: An unresolved reference to a called/constructed symbol, e.g.
#: ``("local", "Core")``, ``("self", "reset")``, or
#: ``("dotted", "np", "zeros")``.  Resolution happens in the model phase.
Ref = Tuple[str, ...]


def _refs_to_json(refs: List[Ref]) -> List[List[str]]:
    return [list(ref) for ref in refs]


def _refs_from_json(raw: List[List[str]]) -> List[Ref]:
    return [tuple(item) for item in raw]


@dataclass
class KeySite:
    """One stats-key record or read site."""

    key: str
    line: int
    col: int
    #: "literal" | "table" | "var" | "const" | "pattern" (f-string prefix).
    kind: str

    def to_dict(self) -> Dict[str, Any]:
        return {"key": self.key, "line": self.line, "col": self.col, "kind": self.kind}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "KeySite":
        return cls(str(raw["key"]), int(raw["line"]), int(raw["col"]), str(raw["kind"]))


@dataclass
class SinkSite:
    """A taint sink inside one function: a stats record or sim-state write."""

    #: "stats" (argument of a stats record call) or "state"
    #: (``self.<attr> = ...`` in a simulation-package class).
    kind: str
    detail: str
    line: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "detail": self.detail, "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "SinkSite":
        return cls(str(raw["kind"]), str(raw["detail"]), int(raw["line"]), int(raw["col"]))


@dataclass
class TaintFlow:
    """One locally-observed taint flow, in summary form.

    ``src`` describes where the taint came from: a concrete source
    (``("source", "time.time")``) , a parameter (``("param", "2")``), or a
    call whose return value may be tainted (``("call",) + callee ref``).
    ``dst`` describes where it went: a sink (``("sink", kind, detail)``)
    with the site position, a call argument (``("call_arg", index) +
    callee ref``), or the function's return (``("return",)``).
    """

    src: Ref
    dst: Ref
    line: int
    col: int
    #: Human-readable description of the tainted value's origin.
    origin: str

    def to_dict(self) -> Dict[str, Any]:
        return {
            "src": list(self.src),
            "dst": list(self.dst),
            "line": self.line,
            "col": self.col,
            "origin": self.origin,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "TaintFlow":
        return cls(
            tuple(raw["src"]), tuple(raw["dst"]),
            int(raw["line"]), int(raw["col"]), str(raw["origin"]),
        )


@dataclass
class RawWrite:
    """One raw persistent-write call site inside a function (RL105)."""

    #: The RL007 classifier's description, e.g. ``open(..., "w")``.
    detail: str
    line: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {"detail": self.detail, "line": self.line, "col": self.col}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "RawWrite":
        return cls(str(raw["detail"]), int(raw["line"]), int(raw["col"]))


@dataclass
class FunctionFacts:
    """Call sites plus the intraprocedural taint summary of one function."""

    qualname: str
    line: int
    #: Call sites: (ref, line, col) for the call-graph builder.
    calls: List[Tuple[Ref, int, int]] = field(default_factory=list)
    #: Locally-observed taint flows (see :class:`TaintFlow`).
    flows: List[TaintFlow] = field(default_factory=list)
    #: True when the ``# repro-hot`` marker sits above the definition.
    hot: bool = False
    #: Constructor-shaped references this function may return.
    returns_new: List[Ref] = field(default_factory=list)
    #: The declared return annotation's class-name leaves, if any.
    return_annotation: List[str] = field(default_factory=list)
    #: Raw persistent-write sites (RL007's classifier, recorded for RL105).
    raw_writes: List[RawWrite] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "calls": [[list(ref), line, col] for ref, line, col in self.calls],
            "flows": [flow.to_dict() for flow in self.flows],
            "hot": self.hot,
            "returns_new": _refs_to_json(self.returns_new),
            "return_annotation": list(self.return_annotation),
            "raw_writes": [site.to_dict() for site in self.raw_writes],
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "FunctionFacts":
        return cls(
            qualname=str(raw["qualname"]),
            line=int(raw["line"]),
            calls=[(tuple(ref), int(line), int(col)) for ref, line, col in raw["calls"]],
            flows=[TaintFlow.from_dict(flow) for flow in raw["flows"]],
            hot=bool(raw["hot"]),
            returns_new=_refs_from_json(raw["returns_new"]),
            return_annotation=[str(name) for name in raw["return_annotation"]],
            raw_writes=[RawWrite.from_dict(site) for site in raw["raw_writes"]],
        )


@dataclass
class AttrEdge:
    """One reason a class attribute may hold an instance of another class."""

    attr: str
    #: The unresolved class reference (constructor call, annotation leaf,
    #: container element, class-table value, or factory method name).
    target: Ref
    line: int

    def to_dict(self) -> Dict[str, Any]:
        return {"attr": self.attr, "target": list(self.target), "line": self.line}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "AttrEdge":
        return cls(str(raw["attr"]), tuple(raw["target"]), int(raw["line"]))


@dataclass
class UnsafeAssign:
    """An RL006-style snapshot-unsafe ``self.<attr> = ...`` assignment."""

    method: str
    problem: str
    line: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "method": self.method, "problem": self.problem,
            "line": self.line, "col": self.col,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "UnsafeAssign":
        return cls(str(raw["method"]), str(raw["problem"]), int(raw["line"]), int(raw["col"]))


@dataclass
class ClassFacts:
    """Attribute graph edges plus snapshot-safety facts for one class."""

    name: str
    line: int
    bases: List[Ref] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)
    #: Why instances of other classes may be reachable through attributes.
    attr_edges: List[AttrEdge] = field(default_factory=list)
    #: Snapshot-unsafe assignments (empty for safe classes).
    unsafe: List[UnsafeAssign] = field(default_factory=list)
    #: Defines __getstate__/__reduce__/__reduce_ex__/snapshot_detach.
    exempt: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "line": self.line,
            "bases": _refs_to_json(self.bases),
            "methods": list(self.methods),
            "attr_edges": [edge.to_dict() for edge in self.attr_edges],
            "unsafe": [entry.to_dict() for entry in self.unsafe],
            "exempt": self.exempt,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ClassFacts":
        return cls(
            name=str(raw["name"]),
            line=int(raw["line"]),
            bases=_refs_from_json(raw["bases"]),
            methods=[str(name) for name in raw["methods"]],
            attr_edges=[AttrEdge.from_dict(edge) for edge in raw["attr_edges"]],
            unsafe=[UnsafeAssign.from_dict(entry) for entry in raw["unsafe"]],
            exempt=bool(raw["exempt"]),
        )


@dataclass
class ArrayFact:
    """One numpy array creation bound to an attribute or local name."""

    #: "ClassName.attr" for ``self.attr = np.zeros(...)``, else the name.
    target: str
    dtype: str
    #: True when the dtype was spelled out (dtype=np.int64), False when it
    #: is numpy's silent float64 default.
    explicit: bool
    line: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "target": self.target, "dtype": self.dtype,
            "explicit": self.explicit, "line": self.line, "col": self.col,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ArrayFact":
        return cls(
            str(raw["target"]), str(raw["dtype"]),
            bool(raw["explicit"]), int(raw["line"]), int(raw["col"]),
        )


@dataclass
class NumpyEvent:
    """A suspicious hot-kernel operation inside a ``# repro-hot`` function.

    Despite the name (historical: the first three kinds were numpy
    shapes), this also carries ``odict_probe`` events — map-probe method
    calls whose operand may be an ``OrderedDict`` reference model; the
    RL104 check confirms against the project-wide ``odict_attrs`` union.
    """

    #: "astype" | "alloc" | "scalar_loop" | "odict_probe"
    kind: str
    function: str
    #: The array/mapping operand's attribute/local name ("" when unknown).
    target: str
    #: astype: the destination dtype; alloc: the allocating callable;
    #: odict_probe: the probing method (".popitem()", ".get()", ...).
    detail: str
    line: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind, "function": self.function, "target": self.target,
            "detail": self.detail, "line": self.line, "col": self.col,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "NumpyEvent":
        return cls(
            str(raw["kind"]), str(raw["function"]), str(raw["target"]),
            str(raw["detail"]), int(raw["line"]), int(raw["col"]),
        )


@dataclass
class ModuleFacts:
    """Everything the whole-program phases need to know about one file."""

    relpath: str
    module: str
    #: Local name -> dotted import target ("Core" -> "repro.sim.cpu.Core").
    imports: Dict[str, str] = field(default_factory=dict)
    #: Module-level string constants (NAME = "literal").
    constants: Dict[str, str] = field(default_factory=dict)
    #: Module-level all-literal-string key tables (dicts/tuples/lists).
    key_tables: Dict[str, List[str]] = field(default_factory=dict)
    #: Module-level dicts whose values are all bare class-like Names.
    class_tables: Dict[str, List[str]] = field(default_factory=dict)
    classes: Dict[str, ClassFacts] = field(default_factory=dict)
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    stats_records: List[KeySite] = field(default_factory=list)
    stats_reads: List[KeySite] = field(default_factory=list)
    #: Class names registered with repro.snapshot.codec.register_codec.
    codec_registered: List[str] = field(default_factory=list)
    arrays: List[ArrayFact] = field(default_factory=list)
    numpy_events: List[NumpyEvent] = field(default_factory=list)
    #: Attribute names assigned an ``OrderedDict`` (directly or inside a
    #: comprehension/list literal) anywhere in this file — the reference
    #: models' per-set structures (``Tlb._sets``, ``FilterTable._entries``).
    odict_attrs: List[str] = field(default_factory=list)
    #: Relpath segments place the file inside the simulation packages.
    in_sim_package: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": FACTS_VERSION,
            "relpath": self.relpath,
            "module": self.module,
            "imports": dict(self.imports),
            "constants": dict(self.constants),
            "key_tables": {name: list(keys) for name, keys in self.key_tables.items()},
            "class_tables": {name: list(vals) for name, vals in self.class_tables.items()},
            "classes": {name: cls.to_dict() for name, cls in self.classes.items()},
            "functions": {name: fn.to_dict() for name, fn in self.functions.items()},
            "stats_records": [site.to_dict() for site in self.stats_records],
            "stats_reads": [site.to_dict() for site in self.stats_reads],
            "codec_registered": list(self.codec_registered),
            "arrays": [fact.to_dict() for fact in self.arrays],
            "numpy_events": [event.to_dict() for event in self.numpy_events],
            "odict_attrs": list(self.odict_attrs),
            "in_sim_package": self.in_sim_package,
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> Optional["ModuleFacts"]:
        """Rebuild facts from a cache entry; None on schema mismatch."""
        if raw.get("version") != FACTS_VERSION:
            return None
        return cls(
            relpath=str(raw["relpath"]),
            module=str(raw["module"]),
            imports={str(k): str(v) for k, v in raw["imports"].items()},
            constants={str(k): str(v) for k, v in raw["constants"].items()},
            key_tables={str(k): [str(x) for x in v] for k, v in raw["key_tables"].items()},
            class_tables={str(k): [str(x) for x in v] for k, v in raw["class_tables"].items()},
            classes={
                str(name): ClassFacts.from_dict(sub)
                for name, sub in raw["classes"].items()
            },
            functions={
                str(name): FunctionFacts.from_dict(sub)
                for name, sub in raw["functions"].items()
            },
            stats_records=[KeySite.from_dict(site) for site in raw["stats_records"]],
            stats_reads=[KeySite.from_dict(site) for site in raw["stats_reads"]],
            codec_registered=[str(name) for name in raw["codec_registered"]],
            arrays=[ArrayFact.from_dict(fact) for fact in raw["arrays"]],
            numpy_events=[NumpyEvent.from_dict(event) for event in raw["numpy_events"]],
            odict_attrs=[str(name) for name in raw["odict_attrs"]],
            in_sim_package=bool(raw["in_sim_package"]),
        )
