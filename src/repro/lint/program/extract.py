"""Per-file fact extraction: one parsed source file → :class:`ModuleFacts`.

This is the only program-analysis phase that looks at ASTs; everything
downstream (symbol resolution, call-graph propagation, the RL1xx rules)
consumes the serializable facts it produces, which is what makes the
content-hash cache sound: same bytes, same facts.

The extractor knows the file's *local* context — its imports, its
package location, which receivers look like stats registries or
DeterministicRng streams — and encodes policy for the taint walker
through a :class:`~repro.lint.program.dataflow.TaintEnv`.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.engine import SIM_PACKAGES
from repro.lint.program.dataflow import (
    FunctionNode,
    LocalStringBindings,
    TaintEnv,
    analyze_function_taint,
)
from repro.lint.program.facts import (
    ArrayFact,
    AttrEdge,
    ClassFacts,
    FunctionFacts,
    KeySite,
    ModuleFacts,
    NumpyEvent,
    RawWrite,
    Ref,
    SinkSite,
    UnsafeAssign,
)
from repro.lint.program.symbols import module_name_for
from repro.lint.rules.hot_path import _marked_hot, _numpy_aliases
from repro.lint.rules.persist_discipline import classify_raw_write
from repro.lint.rules.snapshot_safety import (
    _EXEMPT_METHODS,
    SnapshotSafetyRule,
    _returns_nested_function,
    _rooted_at_self,
)

#: Mirrors RL001/RL002: stats record/read method names and receivers.
_RECORD_METHODS = frozenset({"add", "observe", "counter", "observer"})
_READ_METHODS = frozenset({"get", "mean", "total", "count", "maximum"})

#: Wall-clock/entropy attributes per source module.
_SOURCE_ATTRS: Dict[str, "frozenset[str]"] = {
    "time": frozenset(
        {"time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic", "monotonic_ns"}
    ),
    "os": frozenset({"urandom", "getrandom"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
    "secrets": frozenset(
        {"token_bytes", "token_hex", "token_urlsafe", "randbits", "randbelow", "choice"}
    ),
}
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

_NUMPY_ALLOCATORS = frozenset({"zeros", "ones", "empty", "full", "arange"})
_NUMPY_DEFAULT_FLOAT = frozenset({"zeros", "ones", "empty", "full"})
_NUMPY_HOT_ALLOC = frozenset({"append", "concatenate", "copy", "hstack", "vstack", "stack"})

#: Known numpy dtype widths, for the RL104 widening check.
DTYPE_ORDER: Dict[str, int] = {
    "bool": 1, "bool_": 1,
    "int8": 8, "uint8": 8, "int16": 16, "uint16": 16,
    "int32": 32, "uint32": 32, "int64": 64, "uint64": 64, "intp": 64, "int": 64,
    "float16": 17, "float32": 33, "float64": 65, "float": 65, "double": 65,
    "complex64": 66, "complex128": 130,
}


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` → ["a", "b", "c"]; None when the root is not a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _is_stats_receiver(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "stats"
    if isinstance(node, ast.Attribute):
        return node.attr == "stats"
    return False


def _annotation_class_leaves(node: Optional[ast.AST]) -> List[str]:
    """Capitalized Name/dotted leaves inside an annotation expression.

    ``Optional[List[Core]]`` → ["Core"]; ``Dict[str, WalkResult]`` →
    ["WalkResult"].  Lowercase names (``int``, ``str``) are dropped.
    """
    if node is None:
        return []
    out: List[str] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            if child.id[:1].isupper() and child.id not in (
                "List", "Dict", "Set", "Tuple", "Optional", "Union",
                "Sequence", "Mapping", "Iterable", "Callable", "Type",
                "FrozenSet", "Deque", "DefaultDict", "Any", "None",
            ):
                out.append(child.id)
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            # String annotation: recurse into its parsed form.
            try:
                inner = ast.parse(child.value, mode="eval").body
            except SyntaxError:
                continue
            out.extend(_annotation_class_leaves(inner))
    return out


class _Extractor:
    """Stateful single-file extraction (one instance per file)."""

    def __init__(self, relpath: str, text: str, tree: ast.Module):
        self.relpath = relpath
        self.lines = text.splitlines()
        self.tree = tree
        self.module = module_name_for(relpath)
        parts = tuple(part for part in relpath.split("/") if part)
        self.in_sim_package = any(part in SIM_PACKAGES for part in parts)
        self.facts = ModuleFacts(
            relpath=relpath, module=self.module, in_sim_package=self.in_sim_package
        )
        self.np_modules: Set[str] = set()
        self.np_names: Set[str] = set()
        #: Local names known to be DeterministicRng-ish (laundering).
        self.rng_names: Set[str] = set()
        #: self attrs assigned a DeterministicRng in this file.
        self.rng_attrs: Set[str] = set()
        #: names bound by `from random import name`.
        self.random_imports: Set[str] = set()
        #: alias -> source module for wall-clock imports (time as t).
        self.module_aliases: Dict[str, str] = {}
        #: names bound by `from time import perf_counter` etc.
        self.source_name_imports: Dict[str, str] = {}
        #: self._key_* attrs -> literal key (record-site resolution).
        self.key_attrs: Dict[str, str] = {}

    # -- entry point -------------------------------------------------------
    def run(self) -> ModuleFacts:
        self._collect_imports()
        self.np_modules, self.np_names = _numpy_aliases(self.tree)
        self._collect_module_level()
        self._collect_rng_bindings()
        self._collect_key_attrs()
        self._collect_codec_registrations()
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                self._collect_class(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(node, class_name=None)
        self._collect_stats_sites()
        self._collect_arrays()
        self._collect_odict_attrs()
        return self.facts

    # -- imports -----------------------------------------------------------
    def _collect_imports(self) -> None:
        package_parts = self.module.split(".")[:-1] if self.module else []
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.facts.imports[local] = target
                    root = alias.name.split(".")[0]
                    if root in ("time", "os", "datetime", "uuid", "secrets", "random"):
                        self.module_aliases[local] = alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base_parts = package_parts[: len(package_parts) - (node.level - 1)]
                    prefix = ".".join(base_parts + ([node.module] if node.module else []))
                else:
                    prefix = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.facts.imports[local] = f"{prefix}.{alias.name}" if prefix else alias.name
                    if prefix == "random":
                        self.random_imports.add(local)
                    elif prefix in _SOURCE_ATTRS and alias.name in _SOURCE_ATTRS[prefix]:
                        self.source_name_imports[local] = f"{prefix}.{alias.name}"
                    elif prefix == "datetime" and alias.name in ("datetime", "date"):
                        self.module_aliases[local] = f"datetime.{alias.name}"

    # -- module level ------------------------------------------------------
    def _collect_module_level(self) -> None:
        for node in self.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            if not isinstance(target, ast.Name) or value is None:
                continue
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                self.facts.constants[target.id] = value.value
                continue
            elements: Sequence[ast.expr]
            if isinstance(value, ast.Dict):
                elements = [v for v in value.values if v is not None]
            elif isinstance(value, (ast.Tuple, ast.List)):
                elements = value.elts
            else:
                continue
            if elements and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str) for e in elements
            ):
                self.facts.key_tables[target.id] = [
                    e.value for e in elements
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                ]
            elif (
                isinstance(value, ast.Dict)
                and elements
                and all(isinstance(e, ast.Name) for e in elements)
            ):
                self.facts.class_tables[target.id] = [
                    e.id for e in elements if isinstance(e, ast.Name)
                ]

    # -- DeterministicRng laundering bindings ------------------------------
    def _looks_like_rng_call(self, node: ast.Call) -> bool:
        chain = _attr_chain(node.func)
        if chain is None:
            return False
        leaf = chain[-1]
        if leaf == "DeterministicRng" or leaf == "derive":
            return True
        imported = self.facts.imports.get(chain[0], "")
        return leaf == "DeterministicRng" or imported.endswith("DeterministicRng")

    def _collect_rng_bindings(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            if not self._looks_like_rng_call(node.value):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.rng_names.add(target.id)
                elif isinstance(target, ast.Attribute) and _rooted_at_self(target):
                    self.rng_attrs.add(target.attr)

    def _collect_key_attrs(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not (isinstance(node.value, ast.Constant) and isinstance(node.value.value, str)):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and _rooted_at_self(target)
                    and target.attr.startswith("_key_")
                ):
                    self.key_attrs[target.attr] = node.value.value

    def _collect_codec_registrations(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
            if name != "register_codec":
                continue
            first = node.args[0]
            if isinstance(first, ast.Name):
                self.facts.codec_registered.append(first.id)

    # -- references --------------------------------------------------------
    def _callee_ref(self, node: ast.Call) -> Optional[Ref]:
        chain = _attr_chain(node.func)
        if chain is None:
            return None
        if len(chain) == 1:
            return ("local", chain[0])
        if chain[0] == "self":
            if len(chain) == 2:
                return ("self", chain[1])
            return ("self_attr", *chain[1:])
        return ("dotted", *chain)

    # -- classes -----------------------------------------------------------
    def _collect_class(self, cls: ast.ClassDef) -> None:
        methods = [
            child for child in cls.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        class_facts = ClassFacts(
            name=cls.name,
            line=cls.lineno,
            bases=[ref for ref in (self._base_ref(base) for base in cls.bases) if ref],
            methods=[method.name for method in methods],
            exempt=any(method.name in _EXEMPT_METHODS for method in methods),
        )
        self._collect_attr_edges(cls, methods, class_facts)
        self._collect_unsafe(cls, methods, class_facts)
        self.facts.classes[cls.name] = class_facts
        for method in methods:
            self._collect_function(method, class_name=cls.name)

    @staticmethod
    def _base_ref(base: ast.expr) -> Optional[Ref]:
        chain = _attr_chain(base)
        if chain is None:
            return None
        if len(chain) == 1:
            return ("local", chain[0])
        return ("dotted", *chain)

    def _constructor_ref(self, value: ast.expr) -> Optional[Ref]:
        """A Ref when *value* may construct a project class instance."""
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        # SCHEMES[scheme](...) — a class-table dispatch.  The table may be
        # local or imported; the model resolves either way.
        if isinstance(func, ast.Subscript) and isinstance(func.value, ast.Name):
            name = func.value.id
            if name in self.facts.class_tables or name.isupper():
                return ("table", name)
        chain = _attr_chain(func)
        if chain is None:
            return None
        if chain[0] == "self" and len(chain) == 2:
            return ("self", chain[1])  # factory method — resolved via returns_new
        if chain[-1][:1].isupper():
            if len(chain) == 1:
                return ("local", chain[0])
            return ("dotted", *chain)
        return None

    def _collect_attr_edges(
        self,
        cls: ast.ClassDef,
        methods: Sequence[FunctionNode],
        class_facts: ClassFacts,
    ) -> None:
        # Class-level annotated fields (dataclasses included).
        for child in cls.body:
            if isinstance(child, ast.AnnAssign) and isinstance(child.target, ast.Name):
                for leaf in _annotation_class_leaves(child.annotation):
                    class_facts.attr_edges.append(
                        AttrEdge(attr=child.target.id, target=("local", leaf), line=child.lineno)
                    )
        for method in methods:
            params = {
                arg.arg: _annotation_class_leaves(arg.annotation)
                for arg in list(method.args.posonlyargs) + list(method.args.args)
            }
            for node in ast.walk(method):
                if isinstance(node, ast.AnnAssign):
                    target = node.target
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        for leaf in _annotation_class_leaves(node.annotation):
                            class_facts.attr_edges.append(
                                AttrEdge(attr=target.attr, target=("local", leaf), line=node.lineno)
                            )
                        if node.value is not None:
                            self._value_edges(target.attr, node.value, params, class_facts, node)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            self._value_edges(target.attr, node.value, params, class_facts, node)
                elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                    # self.<attr>.append(Ctor(...)) — container population.
                    func = node.func
                    if (
                        func.attr in ("append", "add", "appendleft", "insert")
                        and isinstance(func.value, ast.Attribute)
                        and isinstance(func.value.value, ast.Name)
                        and func.value.value.id == "self"
                        and node.args
                    ):
                        ref = self._constructor_ref(node.args[-1])
                        if ref is not None:
                            class_facts.attr_edges.append(
                                AttrEdge(attr=func.value.attr, target=ref, line=node.lineno)
                            )

    def _value_edges(
        self,
        attr: str,
        value: ast.expr,
        params: Dict[str, List[str]],
        class_facts: ClassFacts,
        node: ast.stmt,
    ) -> None:
        candidates: List[ast.expr] = [value]
        if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
            candidates = list(value.elts)
        elif isinstance(value, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            candidates = [value.elt]
        elif isinstance(value, ast.Dict):
            candidates = [v for v in value.values if v is not None]
        elif isinstance(value, ast.IfExp):
            candidates = [value.body, value.orelse]
        for candidate in candidates:
            ref = self._constructor_ref(candidate)
            if ref is not None:
                class_facts.attr_edges.append(AttrEdge(attr=attr, target=ref, line=node.lineno))
            elif isinstance(candidate, ast.Name) and candidate.id in params:
                for leaf in params[candidate.id]:
                    class_facts.attr_edges.append(
                        AttrEdge(attr=attr, target=("local", leaf), line=node.lineno)
                    )

    def _collect_unsafe(
        self,
        cls: ast.ClassDef,
        methods: Sequence[FunctionNode],
        class_facts: ClassFacts,
    ) -> None:
        if class_facts.exempt:
            return
        factories = {
            method.name for method in methods if _returns_nested_function(method)
        }
        for method in methods:
            local_functions: Set[str] = {
                child.name
                for child in ast.walk(method)
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child is not method
            }
            for node in ast.walk(method):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                if node.value is None or not any(
                    _rooted_at_self(target) for target in targets
                ):
                    continue
                problem = SnapshotSafetyRule._classify(node.value, local_functions, factories)
                if problem is not None:
                    class_facts.unsafe.append(
                        UnsafeAssign(
                            method=method.name,
                            problem=problem,
                            line=node.lineno,
                            col=node.col_offset,
                        )
                    )

    # -- functions ---------------------------------------------------------
    def _source_of(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "id":
                return "id()"
            if func.id in self.random_imports:
                return f"random.{func.id}"
            if func.id in self.source_name_imports:
                return f"{self.source_name_imports[func.id]}()"
            return None
        chain = _attr_chain(func)
        if chain is None or len(chain) < 2:
            return None
        root_target = self.module_aliases.get(chain[0])
        if root_target is None:
            return None
        root = root_target.split(".")[0]
        attr = chain[-1]
        if root == "random":
            return f"random.{attr}()"
        if root in _SOURCE_ATTRS and attr in _SOURCE_ATTRS[root]:
            return f"{root}.{attr}()"
        if root == "datetime" and attr in _DATETIME_ATTRS:
            return f"{'.'.join(chain)}()"
        return None

    def _launders(self, node: ast.Call) -> bool:
        chain = _attr_chain(node.func)
        if chain is None or len(chain) < 2:
            return (
                isinstance(node.func, ast.Name)
                and node.func.id == "DeterministicRng"
            )
        # The receiver one hop above the method: self._rng.randint ->
        # "_rng"; rng.random -> "rng".
        receiver = chain[-2]
        if "rng" in receiver.lower():
            return True
        if receiver in self.rng_names:
            return True
        if chain[0] == "self" and len(chain) >= 3 and chain[1] in self.rng_attrs:
            return True
        return chain[-1] == "DeterministicRng"

    def _sink_for_call(self, node: ast.Call) -> Optional[SinkSite]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr not in ("add", "observe") or not _is_stats_receiver(func.value):
            return None
        detail = f"stats.{func.attr}(...)"
        if node.args and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            if isinstance(value, str):
                detail = f'stats key "{value}"'
        return SinkSite(kind="stats", detail=detail, line=node.lineno, col=node.col_offset)

    def _make_sink_for_attr(
        self, class_name: Optional[str]
    ) -> Callable[[ast.Attribute], Optional[SinkSite]]:
        def sink_for_attr(node: ast.Attribute) -> Optional[SinkSite]:
            if class_name is None or not self.in_sim_package:
                return None
            if not (isinstance(node.value, ast.Name) and node.value.id == "self"):
                return None
            return SinkSite(
                kind="state",
                detail=f"{class_name}.{node.attr}",
                line=node.lineno,
                col=node.col_offset,
            )

        return sink_for_attr

    def _collect_function(self, func: FunctionNode, class_name: Optional[str]) -> None:
        qualname = f"{class_name}.{func.name}" if class_name else func.name
        source_lines = self.lines
        hot = _marked_hot_lines(source_lines, func)
        env = TaintEnv(
            source_of=self._source_of,
            launders=self._launders,
            callee_ref=self._callee_ref,
            sink_for_call=self._sink_for_call,
            sink_for_attr=self._make_sink_for_attr(class_name),
        )
        flows = analyze_function_taint(func, env, is_method=class_name is not None)
        calls: List[Tuple[Ref, int, int]] = []
        returns_new: List[Ref] = []
        raw_writes: List[RawWrite] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                ref = self._callee_ref(node)
                if ref is not None:
                    calls.append((ref, node.lineno, node.col_offset))
                write = classify_raw_write(node)
                if write is not None:
                    raw_writes.append(
                        RawWrite(write, node.lineno, node.col_offset)
                    )
            elif isinstance(node, ast.Return) and node.value is not None:
                ctor = self._constructor_ref(node.value)
                if ctor is not None:
                    returns_new.append(ctor)
        self.facts.functions[qualname] = FunctionFacts(
            qualname=qualname,
            line=func.lineno,
            calls=calls,
            flows=flows,
            hot=hot,
            returns_new=returns_new,
            return_annotation=_annotation_class_leaves(func.returns),
            raw_writes=raw_writes,
        )
        if hot:
            self._collect_numpy_events(func, qualname)

    # -- stats sites -------------------------------------------------------
    def _collect_stats_sites(self) -> None:
        for owner in self._walk_function_scopes():
            func, _ = owner
            bindings = LocalStringBindings(self.facts.constants)
            for node in _ordered_statements(func):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        bindings.assign(target, node.value)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    bindings.assign(node.target, node.value)
                for call in _calls_of(node):
                    self._classify_stats_call(call, bindings)

    def _walk_function_scopes(self) -> List[Tuple[FunctionNode, Optional[str]]]:
        out: List[Tuple[FunctionNode, Optional[str]]] = []
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append((node, None))
            elif isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        out.append((child, node.name))
        return out

    def _classify_stats_call(self, node: ast.Call, bindings: LocalStringBindings) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or not node.args:
            return
        method = func.attr
        key_node = node.args[0]
        if method in _RECORD_METHODS and _is_stats_receiver(func.value):
            self._record_site(node, key_node, bindings)
        elif method in _READ_METHODS:
            key = self._literal_of(key_node, bindings)
            if key is None:
                return
            if _is_stats_receiver(func.value):
                self._add_read(key, node)
            elif "/" in key:
                # Heuristic widening: a slash-shaped literal read through
                # any .get()/.mean()-style accessor (StatsSnapshot copies,
                # metric dicts) still participates in liveness.
                self._add_read(key, node)

    def _literal_of(
        self, node: ast.expr, bindings: LocalStringBindings
    ) -> Optional[str]:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return bindings.lookup(node.id)
        if isinstance(node, ast.Attribute) and node.attr in self.key_attrs:
            return self.key_attrs[node.attr]
        return None

    def _record_site(
        self, call: ast.Call, key_node: ast.expr, bindings: LocalStringBindings
    ) -> None:
        key = self._literal_of(key_node, bindings)
        if key is not None:
            kind = "literal" if isinstance(key_node, ast.Constant) else "var"
            self.facts.stats_records.append(
                KeySite(key=key, line=call.lineno, col=call.col_offset, kind=kind)
            )
            return
        if (
            isinstance(key_node, ast.Subscript)
            and isinstance(key_node.value, ast.Name)
            and key_node.value.id in self.facts.key_tables
        ):
            for key in self.facts.key_tables[key_node.value.id]:
                self.facts.stats_records.append(
                    KeySite(key=key, line=call.lineno, col=call.col_offset, kind="table")
                )
            return
        if isinstance(key_node, ast.JoinedStr):
            prefix = ""
            if key_node.values and isinstance(key_node.values[0], ast.Constant):
                prefix = str(key_node.values[0].value)
            if prefix:
                self.facts.stats_records.append(
                    KeySite(key=prefix, line=call.lineno, col=call.col_offset, kind="pattern")
                )

    def _add_read(self, key: str, node: ast.Call) -> None:
        self.facts.stats_reads.append(
            KeySite(key=key, line=node.lineno, col=node.col_offset, kind="literal")
        )

    # -- numpy -------------------------------------------------------------
    def _numpy_call_name(self, node: ast.Call) -> Optional[str]:
        chain = _attr_chain(node.func)
        if chain is None:
            return None
        if len(chain) == 1:
            return chain[0] if chain[0] in self.np_names else None
        if chain[0] in self.np_modules:
            return chain[-1]
        return None

    def _dtype_of_call(self, node: ast.Call) -> Tuple[Optional[str], bool]:
        """(dtype, explicit) of a numpy allocator call, or (None, False)."""
        for keyword in node.keywords:
            if keyword.arg != "dtype":
                continue
            value = keyword.value
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                return value.value, True
            chain = _attr_chain(value)
            if chain is not None:
                return chain[-1], True
            return None, False
        name = self._numpy_call_name(node)
        if name in _NUMPY_DEFAULT_FLOAT:
            return "float64", False
        return None, False

    def _collect_arrays(self) -> None:
        if not (self.np_modules or self.np_names):
            return
        for func, class_name in self._walk_function_scopes():
            for node in ast.walk(func):
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                value = node.value
                if value is None or not isinstance(value, ast.Call):
                    continue
                name = self._numpy_call_name(value)
                if name not in _NUMPY_ALLOCATORS and name != "asarray" and name != "array":
                    continue
                dtype, explicit = self._dtype_of_call(value)
                if dtype is None:
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and class_name is not None
                    ):
                        self.facts.arrays.append(
                            ArrayFact(
                                target=f"{class_name}.{target.attr}",
                                dtype=dtype,
                                explicit=explicit,
                                line=node.lineno,
                                col=node.col_offset,
                            )
                        )

    def _collect_odict_attrs(self) -> None:
        """Attribute names assigned an OrderedDict anywhere in this file.

        Catches the direct form (``self._entries = OrderedDict()``) and
        the per-set containers the reference models use
        (``self._sets = [OrderedDict() for _ in range(n)]``) — any
        assignment whose value expression contains an ``OrderedDict``
        construction marks the target attribute.
        """
        found: Set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if not any(
                isinstance(call, ast.Call)
                and (chain := _attr_chain(call.func)) is not None
                and chain[-1] == "OrderedDict"
                for call in ast.walk(value)
            ):
                continue
            for target in targets:
                if isinstance(target, ast.Attribute):
                    found.add(target.attr)
        self.facts.odict_attrs = sorted(found)

    #: Mapping-probe methods worth recording in hot kernels: the two
    #: OrderedDict-only reference-model operations plus the shared-name
    #: probes (confirmed against ``odict_attrs`` in the RL104 check).
    _ODICT_PROBES = ("get", "pop", "setdefault", "move_to_end", "popitem")

    def _collect_numpy_events(self, func: FunctionNode, qualname: str) -> None:
        """RL104 raw material: suspicious hot-kernel shapes (numpy ops and
        potential OrderedDict probes)."""
        loop_depth_of = _loop_depths(func)
        #: Local aliases of attribute-rooted mappings inside this hot
        #: function (``entries = flt._entries`` / ``s = self._sets[i]``),
        #: so a probe through the alias still resolves to the attr name.
        mapping_aliases: Dict[str, str] = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, (ast.Attribute, ast.Subscript)
            ):
                attr = _operand_name(node.value)
                if attr:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            mapping_aliases[target.id] = attr
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            func_expr = node.func
            if (
                isinstance(func_expr, ast.Attribute)
                and func_expr.attr in self._ODICT_PROBES
            ):
                operand = _operand_name(func_expr.value)
                self.facts.numpy_events.append(
                    NumpyEvent(
                        kind="odict_probe", function=qualname,
                        target=mapping_aliases.get(operand, operand),
                        detail=f".{func_expr.attr}()",
                        line=node.lineno, col=node.col_offset,
                    )
                )
                continue
            np_name = self._numpy_call_name(node)
            if np_name in _NUMPY_HOT_ALLOC:
                self.facts.numpy_events.append(
                    NumpyEvent(
                        kind="alloc", function=qualname, target="",
                        detail=f"np.{np_name}", line=node.lineno, col=node.col_offset,
                    )
                )
                continue
            if not isinstance(func_expr, ast.Attribute):
                continue
            target = _operand_name(func_expr.value)
            if func_expr.attr == "astype":
                dtype = ""
                if node.args:
                    chain = _attr_chain(node.args[0])
                    if chain is not None:
                        dtype = chain[-1]
                    elif isinstance(node.args[0], ast.Constant):
                        dtype = str(node.args[0].value)
                self.facts.numpy_events.append(
                    NumpyEvent(
                        kind="astype", function=qualname, target=target,
                        detail=dtype, line=node.lineno, col=node.col_offset,
                    )
                )
            elif func_expr.attr in ("item", "tolist") and loop_depth_of.get(id(node), 0) > 0:
                self.facts.numpy_events.append(
                    NumpyEvent(
                        kind="scalar_loop", function=qualname, target=target,
                        detail=f".{func_expr.attr}()", line=node.lineno, col=node.col_offset,
                    )
                )


def _operand_name(node: ast.expr) -> str:
    """The attribute/local name a numpy method call operates on."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):
        return _operand_name(node.value)
    return ""


def _loop_depths(func: FunctionNode) -> Dict[int, int]:
    """Map ``id(node)`` → enclosing loop depth inside *func*."""
    depths: Dict[int, int] = {}

    def visit(node: ast.AST, depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            child_depth = depth + (
                1 if isinstance(child, (ast.For, ast.AsyncFor, ast.While)) else 0
            )
            depths[id(child)] = child_depth
            visit(child, child_depth)

    visit(func, 0)
    return depths


def _ordered_statements(func: FunctionNode) -> List[ast.stmt]:
    """Every statement inside *func*, in source order."""
    out: List[ast.stmt] = []
    for node in ast.walk(func):
        if isinstance(node, ast.stmt) and node is not func:
            out.append(node)
    out.sort(key=lambda stmt: (stmt.lineno, stmt.col_offset))
    return out


def _calls_of(stmt: ast.stmt) -> List[ast.Call]:
    """Call expressions attached directly to *stmt* (not nested stmts)."""
    out: List[ast.Call] = []
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            out.append(node)
        if isinstance(node, ast.stmt) and node is not stmt:
            break
    return out


def _marked_hot_lines(lines: Sequence[str], func: FunctionNode) -> bool:
    """``# repro-hot`` directly above the definition (RL005's marker)."""

    class _Shim:
        def __init__(self, source_lines: Sequence[str]):
            self.lines = list(source_lines)

    return bool(_marked_hot(_Shim(lines), func))  # type: ignore[arg-type]


def extract_module_facts(relpath: str, text: str, tree: ast.Module) -> ModuleFacts:
    """Extract the whole-program facts of one parsed source file."""
    return _Extractor(relpath, text, tree).run()
