"""Whole-program analysis layer for the repro linter (RL1xx rules).

Per-file facts (:mod:`~repro.lint.program.facts`) are extracted once per
content hash (:mod:`~repro.lint.program.cache`), composed into a symbol
table and call graph (:mod:`~repro.lint.program.symbols`,
:mod:`~repro.lint.program.callgraph`), and closed under interprocedural
propagation (:mod:`~repro.lint.program.model`).  The RL1xx rules in
:mod:`~repro.lint.program.rules` interpret the resulting model.
"""

from repro.lint.program.base import (
    ProgramRule,
    all_program_rules,
    register_program_rule,
)
from repro.lint.program.cache import DEFAULT_CACHE_PATH, AnalysisCache
from repro.lint.program.model import ProgramModel, build_program_model

__all__ = [
    "AnalysisCache",
    "DEFAULT_CACHE_PATH",
    "ProgramModel",
    "ProgramRule",
    "all_program_rules",
    "build_program_model",
    "register_program_rule",
]
