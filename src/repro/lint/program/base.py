"""Base class and registry for whole-program (RL1xx) rules.

A program rule is an ordinary engine :class:`~repro.lint.engine.Rule`
whose ``collect`` pass is a no-op; all of its reasoning happens in
``finalize`` against ``ctx.program_model`` (a
:class:`~repro.lint.program.model.ProgramModel` the engine builds before
dispatching rules when ``--program`` is active).

Program rules must emit findings only into *linted* files: the model
spans the full ``src/repro`` tree even when a subset is linted, and a
finding in an un-linted file could never be suppressed or inspected by
the user who asked for that subset.
"""

from __future__ import annotations

from typing import List, Optional, Type

from repro.lint.engine import Finding, ProjectContext, Rule, Severity, SourceFile
from repro.lint.program.model import ProgramModel

_PROGRAM_REGISTRY: List[Type["ProgramRule"]] = []


def register_program_rule(cls: Type["ProgramRule"]) -> Type["ProgramRule"]:
    """Class decorator adding a rule to the program (``--program``) set."""
    _PROGRAM_REGISTRY.append(cls)
    return cls


def all_program_rules() -> List["ProgramRule"]:
    """Fresh instances of every registered program rule."""
    from repro.lint.program import rules  # noqa: F401  (registry import)

    return [cls() for cls in _PROGRAM_REGISTRY]


class ProgramRule(Rule):
    """Base class for RL1xx rules; override :meth:`check`."""

    def collect(self, source: SourceFile, ctx: ProjectContext) -> None:
        """Program rules read extracted facts, not per-file ASTs."""

    def finalize(self, ctx: ProjectContext) -> None:
        model: Optional[ProgramModel] = getattr(ctx, "program_model", None)
        if model is None:
            return
        self.check(model, ctx)

    def check(self, model: ProgramModel, ctx: ProjectContext) -> None:
        raise NotImplementedError

    # -- helpers -----------------------------------------------------------
    def emit_at(
        self,
        ctx: ProjectContext,
        relpath: str,
        line: int,
        col: int,
        message: str,
        severity: Optional[Severity] = None,
    ) -> None:
        """Emit a finding at a file position, linted files only."""
        source = ctx.file_by_relpath(relpath)
        if source is None:
            return  # outside the linted set — the model is wider than it
        ctx.findings.append(
            Finding(
                rule=self.rule_id,
                severity=severity if severity is not None else self.default_severity,
                path=source.relpath,
                line=line,
                col=col,
                message=message,
            )
        )
