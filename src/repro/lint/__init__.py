"""``repro.lint`` — the AST-based simulator correctness linter.

The runtime sanitizer (``repro.check``) catches invariant violations that a
particular run happens to exercise; this package catches whole classes of
reproducibility bugs statically, across *all* code paths, at zero simulation
cost:

* **RL001 determinism** — unseeded randomness and wall-clock reads inside
  the simulation core (use :class:`repro.common.rng.DeterministicRng`),
  ``id()``-keyed dictionaries, and unordered ``set`` iteration.
* **RL002 stats discipline** — dynamic stats keys on hot paths, typo'd
  (near-duplicate) keys, keys read but never recorded, and keys recorded
  but never consumed by the metrics/analysis/golden layers.
* **RL003 config liveness** — dead configuration knobs (dataclass fields
  nobody reads) and reads of fields no config class declares.
* **RL004 unit hygiene** — arithmetic mixing ``Cycles``-annotated
  quantities with byte quantities or bare float literals in timing code.
* **RL005 hot-path hygiene** — per-call dataclass construction and
  dynamically-built stats keys inside functions marked ``# repro-hot``
  (the per-operation path inventoried in ``docs/PERFORMANCE.md``).

Use it as ``python -m repro lint [--format text|json]``; see
``docs/LINTING.md`` for the rule catalogue, the ``# repro-lint:
disable=RULE`` suppression syntax, and the baseline workflow.
"""

from repro.lint.baseline import Baseline, DEFAULT_BASELINE_PATH
from repro.lint.engine import (
    Finding,
    LintEngine,
    LintReport,
    Rule,
    Severity,
    all_rules,
    lint_paths,
)

__all__ = [
    "Baseline",
    "DEFAULT_BASELINE_PATH",
    "Finding",
    "LintEngine",
    "LintReport",
    "Rule",
    "Severity",
    "all_rules",
    "lint_paths",
]
