"""Fault-tolerant distributed sweep service (ISSUE 8).

``sweepd`` promotes the single-node supervised sweep into a sharded
simulation service: a work-queue server owning a versioned, atomically
persisted job manifest, and N worker processes that lease jobs over a
length-prefixed JSON protocol, stream heartbeats, checkpoint through the
existing ``REPRO-CKPT v1`` machinery, and report results into the same
atomic result cache the serial runner reads.

Module map (docs/SWEEP_SERVICE.md has the full architecture):

* :mod:`repro.sweepd.protocol` — framing, addressing, the retrying
  :class:`~repro.sweepd.protocol.RpcClient`, deterministic message chaos;
* :mod:`repro.sweepd.jobs` — job records and deterministic job ids;
* :mod:`repro.sweepd.manifest` — the server's persisted queue: leases,
  expiry reclaim, retry backoff, poison-job quarantine, priority lanes;
* :mod:`repro.sweepd.aggregator` — exactly-once, digest-checked result
  aggregation into the runner's cache;
* :mod:`repro.sweepd.server` — the selectors event loop;
* :mod:`repro.sweepd.worker` — the lease/execute/report worker loop;
* :mod:`repro.sweepd.fleet` — the local fleet driver behind
  ``repro sweep --distributed`` (process supervision + scripted chaos).
"""

from repro.sweepd.aggregator import ResultAggregator
from repro.sweepd.fleet import FleetReport, run_distributed_sweep
from repro.sweepd.jobs import JobRecord, build_job, job_id_for
from repro.sweepd.manifest import JobManifest
from repro.sweepd.protocol import RpcClient
from repro.sweepd.server import SweepdServer
from repro.sweepd.worker import SweepdWorker

__all__ = [
    "FleetReport",
    "JobManifest",
    "JobRecord",
    "ResultAggregator",
    "RpcClient",
    "SweepdServer",
    "SweepdWorker",
    "build_job",
    "job_id_for",
    "run_distributed_sweep",
]
