"""The sweep service's work-queue server.

A single-threaded ``selectors`` event loop: accept connections, reassemble
frames, dispatch to idempotent handlers, queue replies.  The server owns
the :class:`repro.sweepd.manifest.JobManifest` (persisted atomically on
every state change) and the :class:`repro.sweepd.aggregator
.ResultAggregator` (the exactly-once result sink); workers and
submitters only ever talk to it through the protocol.

Idempotency is the load-bearing property: every request handler computes
the reply purely from durable state, so a retried request (same ``seq``)
or a duplicated frame re-derives the same answer instead of mutating
twice.  Leases re-grant to their holder, submits dedupe by job id,
results dedupe by digest.  That is what lets :func:`apply_chaos` mangle
both directions of every connection without ever changing what the sweep
computes.

Crash model: the server may be SIGKILLed at any instant.  On restart it
reloads the manifest (leases demote to pending), re-marks any job whose
result already landed in the atomic cache as done, and re-leases
in-flight jobs to whichever workers are still heartbeating them.
"""

from __future__ import annotations

import selectors
import socket
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.common.errors import PersistError, SweepdError
from repro.common.rng import DeterministicRng
from repro.faults.chaos import ChaosConfig
from repro.sweepd.aggregator import DIVERGENT, STORED, ResultAggregator
from repro.sweepd.jobs import DONE, JobRecord, PRIORITIES, PRIORITY_BULK
from repro.sweepd.manifest import JobManifest
from repro.sweepd.protocol import (
    FrameBuffer,
    Message,
    apply_chaos,
    chaos_stall,
    create_listener,
    default_address,
    encode_frame,
    listener_address,
    write_address_file,
)


class _Connection:
    """Per-socket state: reassembly buffer and pending outgoing bytes."""

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.frames = FrameBuffer()
        self.out = bytearray()
        self.closing = False


class SweepdServer:
    """Work-queue server: manifest, aggregator, and protocol endpoint."""

    def __init__(
        self,
        root: Union[str, Path],
        cache_dir: Union[str, Path],
        *,
        address: Optional[str] = None,
        max_attempts: int = 3,
        lease_seconds: float = 15.0,
        chaos: Optional[ChaosConfig] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.manifest = JobManifest(
            self.root, max_attempts=max_attempts, lease_seconds=lease_seconds
        )
        self.aggregator = ResultAggregator(self.root, cache_dir)
        self.chaos = chaos
        self._recv_rng = DeterministicRng(
            "chaos/recv", chaos.chaos_seed if chaos else 0
        )
        self._send_rng = DeterministicRng(
            "chaos/send", chaos.chaos_seed if chaos else 0
        )
        self._stall_rng = DeterministicRng(
            "chaos/stall", chaos.chaos_seed if chaos else 0
        )
        self._selector = selectors.DefaultSelector()
        self._listener = create_listener(address or default_address(self.root))
        self._selector.register(self._listener, selectors.EVENT_READ, None)
        self.address = listener_address(self._listener)
        write_address_file(self.root, self.address)
        self._connections: Dict[socket.socket, _Connection] = {}
        self._stopping = False
        self._dirty = False
        #: Wall-clock lease-grant times and completed-job durations for
        #: the status reply's ETA estimate.
        self._started: Dict[str, float] = {}
        self._durations: List[float] = []
        #: worker name -> wall time last heard from (liveness for ETA).
        self._last_heard: Dict[str, float] = {}

        if self.manifest.load():
            self._adopt_cached_results()
            self.manifest.persist()

    # -- lifecycle ---------------------------------------------------------
    def _adopt_cached_results(self) -> None:
        """Mark jobs whose result already reached the cache as done.

        Covers the crash window between "result stored atomically" and
        "manifest persisted": after a restart the cache, not the
        manifest, is the authority on which simulations are finished.
        """
        for record in self.manifest.jobs.values():
            if record.state == DONE:
                continue
            digest = self.aggregator.cached_digest(record.cache_key)
            if digest is not None:
                self.manifest.mark_done(record.job_id, digest)

    def close(self) -> None:
        for conn in list(self._connections.values()):
            self._discard(conn)
        self._selector.unregister(self._listener)
        self._listener.close()
        self._selector.close()
        if self._dirty:
            self.manifest.persist()
            self._dirty = False

    def serve_forever(self, *, poll_seconds: float = 0.05) -> None:
        """Run until a ``shutdown`` request arrives (or stop() is called)."""
        try:
            while not self._stopping:
                self.tick(poll_seconds)
        finally:
            self.close()

    def stop(self) -> None:
        self._stopping = True

    # -- event loop --------------------------------------------------------
    def tick(self, poll_seconds: float = 0.05) -> None:
        """One loop iteration: I/O, expiry sweep, persistence."""
        for key, events in self._selector.select(timeout=poll_seconds):
            if key.fileobj is self._listener:
                self._accept()
                continue
            conn = self._connections.get(key.fileobj)  # type: ignore[arg-type]
            if conn is None:
                continue
            if events & selectors.EVENT_READ:
                self._read(conn)
            if events & selectors.EVENT_WRITE:
                self._flush(conn)
        now = time.monotonic()
        if self.manifest.reclaim_expired(now):
            self._dirty = True
        if self._dirty:
            self.manifest.persist()
            self._dirty = False

    def _accept(self) -> None:
        try:
            sock, _ = self._listener.accept()
        except OSError:
            return
        sock.setblocking(False)
        conn = _Connection(sock)
        self._connections[sock] = conn
        self._selector.register(sock, selectors.EVENT_READ, None)

    def _discard(self, conn: _Connection) -> None:
        self._connections.pop(conn.sock, None)
        try:
            self._selector.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        try:
            conn.sock.close()
        except OSError:
            pass

    def _read(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(65536)
        except BlockingIOError:
            return
        except OSError:
            self._discard(conn)
            return
        if not data:
            self._discard(conn)
            return
        try:
            messages = conn.frames.feed(data)
        except SweepdError:
            # A corrupt stream is this connection's problem, not the
            # service's: drop the peer, its RpcClient will reconnect.
            self._discard(conn)
            return
        stall = chaos_stall(self._stall_rng, self.chaos)
        if stall > 0.0:
            time.sleep(stall)
        messages = apply_chaos(messages, self._recv_rng, self.chaos)
        replies: List[Message] = []
        for message in messages:
            reply = self._dispatch(message)
            if reply is not None and "seq" in message:
                reply["seq"] = message["seq"]
                replies.append(reply)
        replies = apply_chaos(replies, self._send_rng, self.chaos)
        for reply in replies:
            conn.out.extend(encode_frame(reply))
        self._flush(conn)
        if conn.closing and not conn.out:
            self._discard(conn)

    def _flush(self, conn: _Connection) -> None:
        while conn.out:
            try:
                sent = conn.sock.send(bytes(conn.out))
            except BlockingIOError:
                break
            except OSError:
                self._discard(conn)
                return
            del conn.out[:sent]
        want = selectors.EVENT_READ
        if conn.out:
            want |= selectors.EVENT_WRITE
        try:
            self._selector.modify(conn.sock, want, None)
        except (KeyError, ValueError):
            pass

    # -- dispatch ----------------------------------------------------------
    def _dispatch(self, message: Message) -> Optional[Message]:
        kind = message.get("type")
        worker = message.get("worker")
        if isinstance(worker, str):
            self._last_heard[worker] = time.monotonic()
        handler = getattr(self, f"_on_{kind}", None)
        if handler is None:
            return {"type": "error", "error": f"unknown message type {kind!r}"}
        try:
            return handler(message)
        except SweepdError as exc:
            return {"type": "error", "error": str(exc)}

    def _on_hello(self, message: Message) -> Message:
        return {
            "type": "welcome",
            "root": str(self.root),
            "lease_seconds": self.manifest.lease_seconds,
        }

    def _on_lease(self, message: Message) -> Message:
        worker = str(message.get("worker"))
        kind, record, retry_after = self.manifest.lease(worker, time.monotonic())
        self._dirty = True
        if kind != "job" or record is None:
            return {"type": "lease", "kind": kind, "retry_after": retry_after}
        if record.job_id not in self._started:
            self._started[record.job_id] = time.time()
        return {
            "type": "lease",
            "kind": "job",
            "job_id": record.job_id,
            "request": list(record.request),
            "sizing": record.sizing,
            "faults": record.faults,
            "cache_key": record.cache_key,
            "attempt": record.attempts - 1,
            "lease_seconds": self.manifest.lease_seconds,
        }

    def _on_heartbeat(self, message: Message) -> None:
        self.manifest.heartbeat(
            str(message.get("worker")),
            str(message.get("job_id")),
            int(message.get("steps", 0)),  # type: ignore[arg-type]
            time.monotonic(),
        )
        return None  # fire-and-forget: no reply even if seq were present

    def _on_result(self, message: Message) -> Message:
        job_id = str(message.get("job_id"))
        worker = message.get("worker")
        record = self.manifest.jobs.get(job_id)
        if record is None:
            return {"type": "error", "error": f"unknown job {job_id!r}"}
        payload = message.get("payload")
        if not isinstance(payload, dict):
            return {"type": "error", "error": "result without a payload object"}
        try:
            verdict, digest = self.aggregator.store(
                job_id, record.cache_key, payload,
                worker=worker if isinstance(worker, str) else None,
            )
        except PersistError as exc:
            # The cache write was refused (ENOSPC, EIO, injected storage
            # fault): the result is NOT durable, so it must not be acked
            # as stored.  Requeue the job as a retryable failure — the
            # next lease holder salvages its on-disk result.json (or
            # re-simulates) and re-reports, and the retried cache write
            # gets a fresh chance.
            self.manifest.fail(
                job_id, worker if isinstance(worker, str) else None,
                f"storage refused the result ({exc})",
                retryable=True, now=time.monotonic(),
            )
            self._dirty = True
            return {"type": "result", "verdict": "deferred", "job_id": job_id}
        if verdict == DIVERGENT:
            self.manifest.fail(
                job_id, None,
                f"divergent result (digest {digest[:12]} vs "
                f"{record.result_digest and record.result_digest[:12]})",
                retryable=False, now=time.monotonic(),
            )
        else:
            self.manifest.mark_done(job_id, digest)
            started = self._started.pop(job_id, None)
            if verdict == STORED and started is not None:
                self._durations.append(max(0.0, time.time() - started))
        self._dirty = True
        return {"type": "result", "verdict": verdict, "job_id": job_id}

    def _on_fail(self, message: Message) -> Message:
        job_id = str(message.get("job_id"))
        state = self.manifest.fail(
            job_id,
            str(message.get("worker")),
            str(message.get("error", "worker reported failure")),
            bool(message.get("retryable", True)),
            time.monotonic(),
        )
        self._dirty = True
        return {"type": "fail", "job_id": job_id, "state": state}

    def _on_submit(self, message: Message) -> Message:
        entries = message.get("jobs")
        if not isinstance(entries, list):
            return {"type": "error", "error": "submit without a job list"}
        priority = message.get("priority", "bulk")
        if priority not in PRIORITIES:
            return {
                "type": "error",
                "error": f"unknown priority {priority!r} "
                         f"(expected one of {sorted(PRIORITIES)})",
            }
        records = []
        for entry in entries:
            try:
                record = JobRecord.from_json(entry)
                record.priority = PRIORITIES.get(str(priority), PRIORITY_BULK)
            except (TypeError, KeyError) as exc:
                return {"type": "error", "error": f"malformed job entry: {exc}"}
            records.append(record)
        new_ids, known_ids = self.manifest.submit(records)
        # Cache-aware admission: anything already simulated (by a serial
        # run, a supervised sweep, or a previous service) is done on
        # arrival — workers never re-run it.
        done_ids = []
        for job_id in new_ids:
            record = self.manifest.jobs[job_id]
            digest = self.aggregator.cached_digest(record.cache_key)
            if digest is not None:
                self.manifest.mark_done(job_id, digest)
                done_ids.append(job_id)
        self._dirty = True
        return {
            "type": "submit",
            "new": new_ids,
            "known": known_ids,
            "already_done": done_ids,
        }

    def _on_status(self, message: Message) -> Message:
        counts = self.manifest.counts()
        return {
            "type": "status",
            "address": self.address,
            "counts": counts,
            "drained": self.manifest.drained(),
            "reclaims": self.manifest.reclaims,
            "eta_seconds": self._eta(counts),
            "jobs": [
                record.describe()
                for _, record in sorted(self.manifest.jobs.items())
            ],
        }

    def _on_shutdown(self, message: Message) -> Message:
        self._stopping = True
        return {"type": "shutdown", "stopping": True}

    # -- estimation --------------------------------------------------------
    def _eta(self, counts: Dict[str, int]) -> Optional[float]:
        """Remaining wall-clock estimate from observed job durations.

        Degrades gracefully: when workers die the live-worker count
        shrinks and the estimate stretches accordingly; with no finished
        job yet (or no live worker) there is no basis for an estimate.
        """
        outstanding = counts.get("pending", 0) + counts.get("leased", 0)
        if outstanding == 0:
            return 0.0
        if not self._durations:
            return None
        horizon = time.monotonic() - 2 * self.manifest.lease_seconds
        live = sum(1 for seen in self._last_heard.values() if seen >= horizon)
        if live == 0:
            return None
        average = sum(self._durations) / len(self._durations)
        return average * outstanding / live
