"""The sweep service's worker: lease, simulate, checkpoint, report.

A worker is a plain blocking loop around one :class:`repro.sweepd
.protocol.RpcClient`.  Everything that makes it fault-tolerant lives in
what it *doesn't* assume:

* It never assumes its lease reply arrived exactly once — leases
  re-grant idempotently, so a retried ``lease`` RPC gets the same job.
* It never assumes it is the first to run a job: before simulating it
  salvages ``result.json`` (a predecessor finished but died before
  reporting) and otherwise resumes from ``latest.ckpt`` (a predecessor
  was SIGKILLed mid-run) — both inherited through the shared job
  directory keyed by the deterministic job id.
* It never assumes the server is up: heartbeats are fire-and-forget, and
  RPCs retry with the same ``seq`` across reconnects, riding out a
  server restart without losing its place.

Simulated infrastructure faults (``FaultConfig.worker_crash_rate``) are
reported as *retryable* failures — the service requeues with backoff and
eventually quarantines poison jobs; genuine simulator exceptions are
reported non-retryable and quarantine immediately.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional, Union, cast

from repro.common.errors import FaultError, PersistError, SweepdError
from repro.experiments.jobcore import (
    RESULT_NAME,
    Request,
    Sizing,
    execute_job,
    faults_from_wire,
    inject_worker_crash,
    load_result,
    write_json_atomic,
)
from repro.sweepd.protocol import Message, RpcClient


class SweepdWorker:
    """One worker process's lease/execute/report loop."""

    def __init__(
        self,
        name: str,
        address: str,
        jobs_root: Union[str, Path],
        *,
        checkpoint_every: int = 1000,
        heartbeat_seconds: float = 0.5,
        rpc_timeout: float = 2.0,
        retry_window: float = 60.0,
        idle_sleep_cap: float = 0.5,
    ) -> None:
        self.name = name
        self.address = address
        self.jobs_root = Path(jobs_root)
        self.checkpoint_every = checkpoint_every
        self.heartbeat_seconds = heartbeat_seconds
        self.idle_sleep_cap = idle_sleep_cap
        self.client = RpcClient(
            address, timeout=rpc_timeout, retry_window=retry_window
        )
        self.completed = 0

    # -- loop --------------------------------------------------------------
    def run(self) -> int:
        """Work until the server drains; returns jobs completed."""
        with self.client:
            self.client.call({"type": "hello", "worker": self.name})
            while True:
                reply = self.client.call({"type": "lease", "worker": self.name})
                kind = reply.get("kind")
                if kind == "drain":
                    return self.completed
                if kind != "job":
                    retry_after = float(cast(float, reply.get("retry_after", 0.0)))
                    time.sleep(min(max(retry_after, 0.01), self.idle_sleep_cap))
                    continue
                self._work_one(reply)

    def _work_one(self, lease: Message) -> None:
        job_id = str(lease["job_id"])
        request = cast(Request, tuple(cast(list, lease["request"])))
        sizing_dict = cast(dict, lease["sizing"])
        sizing: Sizing = (
            int(sizing_dict["scale"]), int(sizing_dict["measure_ops"]),
            int(sizing_dict["warmup_ops"]), int(sizing_dict["seed"]),
            str(sizing_dict["check_level"]),
        )
        attempt = int(cast(int, lease.get("attempt", 0)))
        directory = self.jobs_root / job_id

        payload = load_result(directory)
        if payload is None:
            faults = faults_from_wire(cast(Optional[dict], lease.get("faults")))

            def heartbeat(steps: int) -> None:
                # Best-effort: a down server or mangled frame must never
                # stall the simulation; the lease just edges toward expiry
                # until a later heartbeat lands.
                self.client.send_oneway({
                    "type": "heartbeat",
                    "worker": self.name,
                    "job_id": job_id,
                    "steps": steps,
                })

            try:
                payload = execute_job(
                    request, sizing, faults, attempt, directory,
                    checkpoint_every=self.checkpoint_every,
                    heartbeat_seconds=self.heartbeat_seconds,
                    heartbeat_hook=heartbeat,
                    crash_injector=lambda req, att: inject_worker_crash(
                        faults, req, att
                    ),
                )
            except FaultError as exc:
                self.client.call({
                    "type": "fail", "worker": self.name, "job_id": job_id,
                    "error": f"{type(exc).__name__}: {exc}", "retryable": True,
                })
                return
            except Exception as exc:
                self.client.call({
                    "type": "fail", "worker": self.name, "job_id": job_id,
                    "error": f"{type(exc).__name__}: {exc}", "retryable": False,
                })
                return
            # Land the result on disk before reporting it: if the report
            # (or this process) dies, the next lease holder salvages the
            # file instead of re-simulating.  Best-effort: the payload is
            # in hand, so a refused write only loses the salvage copy —
            # the wire report below is what actually delivers the result.
            try:
                write_json_atomic(directory / RESULT_NAME, payload)
            except PersistError:
                pass

        reply = self.client.call({
            "type": "result",
            "worker": self.name,
            "job_id": job_id,
            "payload": payload,
        })
        if reply.get("type") == "error":
            raise SweepdError(
                f"server rejected result for {job_id}: {reply.get('error')}"
            )
        self.completed += 1


def worker_main(
    name: str,
    address: str,
    jobs_root: str,
    checkpoint_every: int = 1000,
    heartbeat_seconds: float = 0.5,
    retry_window: float = 60.0,
) -> int:
    """Process entry point for fleet-spawned (or CLI-launched) workers."""
    worker = SweepdWorker(
        name, address, jobs_root,
        checkpoint_every=checkpoint_every,
        heartbeat_seconds=heartbeat_seconds,
        retry_window=retry_window,
    )
    return worker.run()
