"""The server's versioned, atomically-persisted job manifest.

The manifest is the service's single source of truth: every job, its
state, attempt count, and result digest.  It is persisted with the same
discipline as the result cache (same-directory temp + ``os.replace``),
so a server SIGKILLed between any two syscalls restarts into a
consistent world: ``done`` jobs stay done (their results are already in
the atomic cache), ``leased`` jobs demote to ``pending`` and are simply
re-leased — the lease/dedupe machinery guarantees no result is lost or
double-counted either way.

Scheduling rules live here too, so they are unit-testable without
sockets:

* **leases** — a worker claims the best ``pending`` job (priority lane
  first, then submit order); the lease carries a deadline, extended by
  heartbeats.  Re-leasing by the same worker is idempotent (lost reply
  ⇒ same job again).
* **expiry** — :meth:`reclaim_expired` returns timed-out leases to the
  queue; a SIGKILLed or hung worker loses its claim, nothing else.
* **retry + quarantine** — failed or reclaimed jobs re-queue with
  exponential backoff until ``max_attempts`` leases have been burned,
  then quarantine as poison; a non-retryable error (a genuine simulator
  bug, or a divergent duplicate result) quarantines immediately.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro import persist
from repro.common.errors import (
    CorruptPayloadError,
    ManifestVersionError,
    PersistError,
    SweepdError,
)
from repro.experiments.jobcore import write_json_atomic
from repro.sweepd.jobs import DONE, LEASED, PENDING, QUARANTINED, JobRecord

SWEEPD_MANIFEST_VERSION = 1
MANIFEST_NAME = "sweepd-manifest.json"

_MANIFEST_HINT = (
    "start a fresh service root, or run the build that wrote this manifest"
)

#: Base seconds for the re-lease backoff of a failed job (doubles per
#: burned attempt; deliberately snappy — local fleets, not cloud APIs).
RETRY_BACKOFF_BASE_SECONDS = 0.05


class JobManifest:
    """All jobs the service knows about, with crash-safe persistence."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        max_attempts: int = 3,
        lease_seconds: float = 15.0,
    ) -> None:
        self.root = Path(root)
        self.max_attempts = max(1, int(max_attempts))
        self.lease_seconds = float(lease_seconds)
        self.jobs: Dict[str, JobRecord] = {}
        self._submit_seq = 0
        #: Leases reclaimed from dead/hung workers since this process
        #: started (observability; per-job counts persist on the record).
        self.reclaims = 0
        #: Manifest writes the storage layer refused (ENOSPC, EIO, ...)
        #: since this process started.  The in-memory state stays
        #: authoritative and the next state change retries the write; a
        #: crash meanwhile restarts from an older-but-consistent manifest
        #: (done jobs re-adopt from the cache, leases demote and re-grant).
        self.persist_failures = 0

    @property
    def path(self) -> Path:
        return self.root / MANIFEST_NAME

    # -- persistence -------------------------------------------------------
    def persist(self) -> bool:
        """Write the manifest; False when the storage layer refused.

        ``backup=True`` keeps the previous manifest as ``.bak``, the
        one-generation fallback :meth:`load` falls back to when the
        primary is later found corrupt (bit-rot, a torn write that lied).
        """
        payload = {
            "sweepd_manifest_version": SWEEPD_MANIFEST_VERSION,
            "max_attempts": self.max_attempts,
            "jobs": [
                record.to_json()
                for _, record in sorted(self.jobs.items())
            ],
        }
        try:
            write_json_atomic(self.path, payload, site="manifest", backup=True)
        except PersistError:
            self.persist_failures += 1
            return False
        return True

    def load(self) -> bool:
        """Load a persisted manifest; False when none exists yet.

        Version or schema skew raises
        :class:`repro.common.errors.ManifestVersionError` — a restarted
        server must refuse a manifest it cannot faithfully resume.
        """
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return False
        except OSError as exc:
            raise SweepdError(f"unreadable manifest {self.path}: {exc}")
        if raw[:1] == b"\x80":
            raise ManifestVersionError(
                f"{self.path}: binary (pickled) manifest from an older "
                f"build; this build reads JSON manifests at version "
                f"{SWEEPD_MANIFEST_VERSION}",
                hint=_MANIFEST_HINT,
            )
        try:
            payload = persist.verify_json_bytes(raw, self.path, "manifest")
        except CorruptPayloadError as exc:
            # The primary is torn or bit-rotted; fall back to the ``.bak``
            # generation :meth:`persist` keeps.  It is at most one state
            # change stale, which recovery already tolerates (done jobs
            # re-adopt from the cache, leases demote and re-grant).
            backup = persist.read_json_or_none(
                persist.backup_path(self.path), site="manifest"
            )
            if backup is None:
                raise SweepdError(
                    f"corrupt manifest {self.path} and no usable backup: "
                    f"{exc}"
                )
            payload = backup
        version = payload.get("sweepd_manifest_version")
        if version != SWEEPD_MANIFEST_VERSION:
            raise ManifestVersionError(
                f"{self.path}: manifest version {version} unsupported "
                f"(this build reads {SWEEPD_MANIFEST_VERSION})",
                hint=_MANIFEST_HINT,
            )
        jobs = payload.get("jobs")
        if not isinstance(jobs, list):
            raise ManifestVersionError(
                f"{self.path}: version-{SWEEPD_MANIFEST_VERSION} manifest "
                f"without a job list — written by an incompatible build",
                hint=_MANIFEST_HINT,
            )
        self.jobs = {}
        for entry in jobs:
            try:
                record = JobRecord.from_json(entry)
            except (TypeError, KeyError) as exc:
                raise ManifestVersionError(
                    f"{self.path}: job entry does not match this build's "
                    f"schema ({exc})",
                    hint=_MANIFEST_HINT,
                )
            self.jobs[record.job_id] = record
        self._submit_seq = max(
            (record.submit_seq for record in self.jobs.values()), default=0
        )
        return True

    # -- submission --------------------------------------------------------
    def submit(self, records: Iterable[JobRecord]) -> Tuple[List[str], List[str]]:
        """Add jobs; returns (new ids, already-known ids).

        Resubmitting a known job is a no-op — except that a *pending*
        job resubmitted on a hotter priority lane is promoted, which is
        how an interactive request preempts an already-queued bulk job.
        """
        new_ids: List[str] = []
        known_ids: List[str] = []
        for record in records:
            existing = self.jobs.get(record.job_id)
            if existing is not None:
                if existing.state == PENDING and record.priority < existing.priority:
                    existing.priority = record.priority
                known_ids.append(record.job_id)
                continue
            self._submit_seq += 1
            record.submit_seq = self._submit_seq
            self.jobs[record.job_id] = record
            new_ids.append(record.job_id)
        return new_ids, known_ids

    def mark_done(self, job_id: str, digest: str) -> None:
        record = self.jobs[job_id]
        record.state = DONE
        record.result_digest = digest
        record.lease_worker = None
        record.lease_deadline = 0.0

    # -- scheduling --------------------------------------------------------
    def lease(
        self, worker: str, now: float
    ) -> Tuple[str, Optional[JobRecord], float]:
        """Grant the best available job to *worker* at monotonic *now*.

        Returns ``(kind, record, retry_after)`` with kind one of:
        ``"job"`` (record granted), ``"idle"`` (nothing leasable yet;
        retry after the given seconds), ``"drain"`` (every job is done
        or quarantined — the worker should exit).
        """
        held = [
            record for record in self.jobs.values()
            if record.state == LEASED and record.lease_worker == worker
        ]
        if held:
            # Idempotent re-grant: the worker never saw our last reply,
            # or is re-leasing after a reconnect.  Same job, fresh clock.
            record = min(held, key=lambda r: (r.priority, r.submit_seq))
            record.lease_deadline = now + self.lease_seconds
            return ("job", record, 0.0)

        ready = [
            record for record in self.jobs.values()
            if record.state == PENDING and record.not_before <= now
        ]
        if ready:
            record = min(ready, key=lambda r: (r.priority, r.submit_seq))
            record.state = LEASED
            record.attempts += 1
            record.lease_worker = worker
            record.lease_deadline = now + self.lease_seconds
            return ("job", record, 0.0)

        backlogged = [
            record.not_before for record in self.jobs.values()
            if record.state == PENDING
        ]
        if backlogged:
            return ("idle", None, max(0.0, min(backlogged) - now))
        if any(record.state == LEASED for record in self.jobs.values()):
            return ("idle", None, self.lease_seconds / 4)
        return ("drain", None, 0.0)

    def heartbeat(self, worker: str, job_id: str, steps: int, now: float) -> None:
        """Extend *worker*'s lease on *job_id*; re-claim after a restart.

        A heartbeat for a ``pending`` job means the server restarted (or
        reclaimed the lease) while the worker kept simulating: re-lease
        it to that worker rather than letting a second worker start the
        same simulation.
        """
        record = self.jobs.get(job_id)
        if record is None:
            return
        if record.state == PENDING:
            record.state = LEASED
            record.attempts += 1
            record.lease_worker = worker
        if record.state == LEASED and record.lease_worker == worker:
            record.lease_deadline = now + self.lease_seconds
            record.last_steps = int(steps)

    def fail(
        self, job_id: str, worker: Optional[str], error: str,
        retryable: bool, now: float,
    ) -> str:
        """Record a failed attempt; returns the job's new state."""
        record = self.jobs.get(job_id)
        if record is None or record.state == DONE:
            return DONE
        record.errors.append(error)
        record.lease_worker = None
        record.lease_deadline = 0.0
        if not retryable or record.attempts >= self.max_attempts:
            record.state = QUARANTINED
        else:
            record.state = PENDING
            record.not_before = now + RETRY_BACKOFF_BASE_SECONDS * (
                1 << max(0, record.attempts - 1)
            )
        return record.state

    def reclaim_expired(self, now: float) -> List[JobRecord]:
        """Return expired leases to the queue (or quarantine poison)."""
        reclaimed: List[JobRecord] = []
        for record in self.jobs.values():
            if record.state != LEASED or record.lease_deadline > now:
                continue
            record.reclaims += 1
            self.reclaims += 1
            record.errors.append(
                f"lease expired after {self.lease_seconds:.1f}s "
                f"(worker {record.lease_worker!r} dead or hung, "
                f"attempt {record.attempts})"
            )
            record.lease_worker = None
            record.lease_deadline = 0.0
            if record.attempts >= self.max_attempts:
                record.state = QUARANTINED
            else:
                record.state = PENDING
                record.not_before = now + RETRY_BACKOFF_BASE_SECONDS * (
                    1 << max(0, record.attempts - 1)
                )
            reclaimed.append(record)
        return reclaimed

    # -- queries -----------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        out = {state: 0 for state in (PENDING, LEASED, DONE, QUARANTINED)}
        for record in self.jobs.values():
            out[record.state] += 1
        return out

    def drained(self) -> bool:
        return all(
            record.state in (DONE, QUARANTINED) for record in self.jobs.values()
        )

    def quarantined(self) -> List[JobRecord]:
        return [
            record for record in self.jobs.values()
            if record.state == QUARANTINED
        ]
