"""Chaos-proof result aggregation for the sweep service.

The aggregator is the exactly-once boundary: however many times a result
payload arrives (duplicated frames, a worker retrying a ``result`` RPC
whose ack was dropped, a relaunched worker salvaging ``result.json`` for
a job another worker already finished), exactly one cache entry is
written — and it is byte-identical to what the serial runner would have
written, because the payload is reduced to the same metric fields and
stored under the same cache key via the same atomic-write discipline.

Every acceptance decision lands in an append-only JSONL log
(``aggregator.jsonl``) for post-mortem auditing: the chaos test matrix
asserts zero ``lost`` and zero double-``stored`` lines.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro import persist

#: Verdicts returned by :meth:`ResultAggregator.store`.
STORED = "stored"
DUPLICATE = "duplicate"
DIVERGENT = "divergent"

AGGREGATOR_LOG = "aggregator.jsonl"


def read_audit_log(path: Union[str, Path]) -> Tuple[List[Dict[str, object]], int]:
    """Replay an ``aggregator.jsonl`` audit log, tolerating a torn tail.

    A server killed mid-append legitimately leaves a truncated final
    line; that record was never acknowledged, so dropping it is correct.
    Returns ``(records, dropped)`` — *dropped* counts unparseable lines
    (0 or 1 for a torn tail; more signals genuine corruption, which
    ``repro fsck`` reports).
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return [], 0
    records: List[Dict[str, object]] = []
    dropped = 0
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            dropped += 1
            continue
        if isinstance(record, dict):
            records.append(record)
        else:
            dropped += 1
    return records, dropped


def result_digest(payload: Dict[str, object]) -> str:
    """Canonical digest of a result's *metric* content.

    Only the cached metric fields participate — bookkeeping such as
    ``attempt`` and ``resumed_at_ops`` legitimately differs between a
    first-try result and one resumed from a checkpoint, while the
    metrics themselves must not.
    """
    from repro.experiments.runner import _METRIC_FIELDS

    material = json.dumps(
        {name: payload.get(name) for name in _METRIC_FIELDS}, sort_keys=True
    )
    return hashlib.sha256(material.encode()).hexdigest()


class ResultAggregator:
    """Digest-checked, idempotent result sink over the runner's cache."""

    def __init__(self, root: Union[str, Path], cache_dir: Union[str, Path]) -> None:
        self.root = Path(root)
        self.cache_dir = Path(cache_dir)
        self.log_path = self.root / AGGREGATOR_LOG
        #: job_id -> digest accepted this process lifetime (fast dedupe;
        #: the cache file itself is the cross-restart source of truth).
        self._accepted: Dict[str, str] = {}

    # -- cache interop -----------------------------------------------------
    def _cache_path(self, cache_key: str) -> Path:
        return self.cache_dir / f"{cache_key}.json"

    def cached_digest(self, cache_key: str) -> Optional[str]:
        """Digest of an existing cache entry, or None on miss/torn file.

        Lets a restarted server (and cache-aware submission) recognise
        work that already has a result without trusting in-memory state.
        """
        payload = persist.read_json_or_none(
            self._cache_path(cache_key), site="cache"
        )
        if payload is None:
            return None
        from repro.experiments.runner import _METRIC_FIELDS

        if any(name not in payload for name in _METRIC_FIELDS):
            return None
        return result_digest(payload)

    # -- ingestion ---------------------------------------------------------
    def store(
        self, job_id: str, cache_key: str, payload: Dict[str, object],
        worker: Optional[str] = None,
    ) -> Tuple[str, str]:
        """Accept (or discard) one result payload; returns (verdict, digest).

        * ``stored`` — first result for the job: written to the cache.
        * ``duplicate`` — the job already has this exact result (same
          digest): discarded, harmless.
        * ``divergent`` — the job already has a *different* result.  The
          simulator is deterministic, so this is a real bug (or silent
          corruption) and the caller must quarantine the job rather than
          pick a winner.
        """
        digest = result_digest(payload)
        known = self._accepted.get(job_id)
        if known is None:
            known = self.cached_digest(cache_key)
        if known is not None:
            verdict = DUPLICATE if known == digest else DIVERGENT
            self._log(job_id, verdict, digest, worker, known=known)
            return (verdict, digest)

        from repro.experiments.jobcore import write_json_atomic
        from repro.experiments.runner import _METRIC_FIELDS

        entry = {name: payload[name] for name in _METRIC_FIELDS}
        # May raise PersistWriteError (ENOSPC, EIO, injected storage
        # fault).  Deliberately BEFORE the accept/ack bookkeeping: a
        # result that did not land durably must not be acknowledged, so
        # the job stays retryable and no acknowledged result is ever lost.
        write_json_atomic(self._cache_path(cache_key), entry, site="cache")
        self._accepted[job_id] = digest
        self._log(job_id, STORED, digest, worker)
        return (STORED, digest)

    # -- audit log ---------------------------------------------------------
    def _log(
        self, job_id: str, verdict: str, digest: str,
        worker: Optional[str], known: Optional[str] = None,
    ) -> None:
        record = {
            "ts": time.time(),
            "pid": os.getpid(),
            "job_id": job_id,
            "verdict": verdict,
            "digest": digest,
            "worker": worker,
        }
        if known is not None:
            record["known_digest"] = known
        # Append-only; single-writer (the server's event loop), so a
        # plain append is torn-write-safe enough for an audit artifact —
        # replay (read_audit_log) drops a truncated tail line.  Best
        # effort: a full disk must not take the service down with it.
        try:
            self.log_path.parent.mkdir(parents=True, exist_ok=True)
            with self.log_path.open("a") as handle:  # repro-lint: disable=RL007
                handle.write(json.dumps(record) + "\n")
        except OSError:
            pass
