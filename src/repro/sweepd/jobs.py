"""Job records: the unit of work the sweep service schedules.

A job is one (scheme, workload, variant) simulation at a fixed sizing
and fault configuration — exactly one result-cache entry.  Job identity
is *deterministic*: the id is a digest of the cache key, so resubmitting
the same sweep (same command, a retried ``submit`` RPC, a client that
never saw its ack) converges on the same job set instead of duplicating
work, and a restarted server re-derives the same ids from its manifest.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, List, Optional

from repro.common.config import FaultConfig
from repro.experiments.jobcore import Request, Sizing, cache_key

#: Lifecycle states.  ``leased`` is transient (never survives a server
#: restart: a reloaded manifest demotes it to ``pending``).
PENDING = "pending"
LEASED = "leased"
DONE = "done"
QUARANTINED = "quarantined"

JOB_STATES = (PENDING, LEASED, DONE, QUARANTINED)

#: Priority lanes: lower value wins the lease.  Interactive requests
#: preempt bulk sweeps at every scheduling decision.
PRIORITIES = {"interactive": 0, "bulk": 1}
PRIORITY_BULK = PRIORITIES["bulk"]


def job_id_for(request: Request, sizing: Sizing, faults: Optional[FaultConfig]) -> str:
    """Deterministic job id: a digest of the result-cache key."""
    return hashlib.sha256(cache_key(request, sizing, faults).encode()).hexdigest()[:16]


@dataclasses.dataclass
class JobRecord:
    """One schedulable simulation and its scheduling state."""

    job_id: str
    scheme: str
    workload: str
    variant: str
    #: Sizing dict: scale, measure_ops, warmup_ops, seed, check_level.
    sizing: Dict[str, object]
    #: Serialized FaultConfig (or None) — workers rebuild it.
    faults: Optional[Dict[str, object]]
    cache_key: str
    priority: int = PRIORITY_BULK
    state: str = PENDING
    #: Number of leases ever granted (attempt counter for quarantine).
    attempts: int = 0
    #: FIFO tie-break within a priority lane.
    submit_seq: int = 0
    #: Error strings from failed attempts, oldest first.
    errors: List[str] = dataclasses.field(default_factory=list)
    #: sha256 digest of the aggregated metric payload, once done.
    result_digest: Optional[str] = None
    #: Times a lease expired and the job was reclaimed from a dead or
    #: hung worker (observability; also counts toward ``attempts``).
    reclaims: int = 0

    # -- live lease state: in-memory only, never persisted ----------------
    lease_worker: Optional[str] = dataclasses.field(default=None, compare=False)
    lease_deadline: float = dataclasses.field(default=0.0, compare=False)
    #: Earliest monotonic time the job may be leased again (retry backoff).
    not_before: float = dataclasses.field(default=0.0, compare=False)
    #: Last heartbeat's simulated-step count (ETA/observability).
    last_steps: int = dataclasses.field(default=0, compare=False)

    @property
    def request(self) -> Request:
        return (self.scheme, self.workload, self.variant)

    def sizing_tuple(self) -> Sizing:
        sizing = self.sizing
        return (
            int(sizing["scale"]), int(sizing["measure_ops"]),
            int(sizing["warmup_ops"]), int(sizing["seed"]),
            str(sizing["check_level"]),
        )

    # -- persistence -------------------------------------------------------
    _PERSISTED = (
        "job_id", "scheme", "workload", "variant", "sizing", "faults",
        "cache_key", "priority", "state", "attempts", "submit_seq",
        "errors", "result_digest", "reclaims",
    )

    def to_json(self) -> Dict[str, object]:
        payload = {name: getattr(self, name) for name in self._PERSISTED}
        if self.state == LEASED:
            # Leases are process-local promises; a manifest reader (a
            # restarted server) must treat the job as claimable again.
            payload["state"] = PENDING
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "JobRecord":
        known = {name: payload[name] for name in cls._PERSISTED if name in payload}
        return cls(**known)  # type: ignore[arg-type]

    def describe(self) -> Dict[str, object]:
        """Status-reply summary (wire-friendly, no live handles)."""
        return {
            "job_id": self.job_id,
            "request": list(self.request),
            "state": self.state,
            "priority": self.priority,
            "attempts": self.attempts,
            "reclaims": self.reclaims,
            "worker": self.lease_worker,
            "steps": self.last_steps,
            "errors": list(self.errors),
        }


def build_job(
    request: Request,
    sizing: Sizing,
    faults: Optional[FaultConfig],
    *,
    priority: int = PRIORITY_BULK,
    submit_seq: int = 0,
) -> JobRecord:
    """Construct the canonical JobRecord for one request."""
    scale, measure_ops, warmup_ops, seed, check_level = sizing
    return JobRecord(
        job_id=job_id_for(request, sizing, faults),
        scheme=request[0],
        workload=request[1],
        variant=request[2],
        sizing={
            "scale": scale,
            "measure_ops": measure_ops,
            "warmup_ops": warmup_ops,
            "seed": seed,
            "check_level": check_level,
        },
        faults=None if faults is None else dataclasses.asdict(faults),
        cache_key=cache_key(request, sizing, faults),
        priority=priority,
        submit_seq=submit_seq,
    )
