"""Local fleet driver: one server plus N workers, supervised.

``repro sweep --distributed --workers N`` lands here.  The driver owns
the operating-system half of the fault-tolerance story: it launches the
server and worker *processes*, watches them, relaunches whatever dies,
and executes the scripted :class:`repro.faults.chaos.FleetChaos`
schedule (SIGKILL a worker provably mid-job, SIGKILL + relaunch the
server mid-sweep) that the chaos test matrix drives.

The protocol half (leases, retries, dedupe) is the service's job; the
driver deliberately knows nothing about it beyond the ``submit`` /
``status`` / ``shutdown`` RPCs.  Results are collected from the shared
result cache, so a distributed sweep is interchangeable with
``ExperimentRunner.run_many`` — same keys, same payloads, bit-identical
metrics.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.common.errors import SweepdError, SweepError
from repro.experiments.jobcore import Request
from repro.faults.chaos import ChaosConfig, FleetChaos
from repro.sweepd.jobs import QUARANTINED, build_job
from repro.sweepd.protocol import RpcClient, read_address_file
from repro.sweepd.worker import worker_main

#: Directory (under the service root) holding per-job checkpoint dirs.
JOBS_DIRNAME = "jobs"


@dataclasses.dataclass
class FleetReport:
    """What happened while the sweep ran (observability, test assertions)."""

    jobs_total: int = 0
    jobs_already_done: int = 0
    worker_relaunches: int = 0
    chaos_worker_kills: int = 0
    chaos_server_restarts: int = 0
    reclaims: int = 0
    quarantined: List[Tuple[str, ...]] = dataclasses.field(default_factory=list)


def _server_main(
    root: str,
    cache_dir: str,
    address: Optional[str],
    max_attempts: int,
    lease_seconds: float,
    chaos: Optional[ChaosConfig],
    poll_seconds: float,
) -> None:
    from repro.sweepd.server import SweepdServer

    server = SweepdServer(
        root, cache_dir,
        address=address,
        max_attempts=max_attempts,
        lease_seconds=lease_seconds,
        chaos=chaos,
    )
    server.serve_forever(poll_seconds=poll_seconds)


class _Fleet:
    """Process bookkeeping for one distributed sweep."""

    def __init__(
        self,
        root: Path,
        cache_dir: Path,
        *,
        workers: int,
        max_attempts: int,
        lease_seconds: float,
        checkpoint_every: int,
        heartbeat_seconds: float,
        chaos: Optional[ChaosConfig],
        server_poll_seconds: float,
    ) -> None:
        self.root = root
        self.cache_dir = cache_dir
        self.workers = workers
        self.max_attempts = max_attempts
        self.lease_seconds = lease_seconds
        self.checkpoint_every = checkpoint_every
        self.heartbeat_seconds = heartbeat_seconds
        self.chaos = chaos
        self.server_poll_seconds = server_poll_seconds
        self.context = multiprocessing.get_context()
        self.server: Optional[multiprocessing.process.BaseProcess] = None
        self.address: Optional[str] = None
        #: slot -> (current process, current worker name, relaunch count)
        self.slots: Dict[int, Tuple[multiprocessing.process.BaseProcess, str, int]] = {}
        self.report = FleetReport()

    # -- processes ---------------------------------------------------------
    def start_server(self, address: Optional[str] = None) -> None:
        proc = self.context.Process(
            target=_server_main,
            args=(
                str(self.root), str(self.cache_dir), address,
                self.max_attempts, self.lease_seconds, self.chaos,
                self.server_poll_seconds,
            ),
            daemon=True,
        )
        proc.start()
        self.server = proc
        self.address = self._await_address(proc)

    def _await_address(
        self, proc: "multiprocessing.process.BaseProcess", timeout: float = 10.0
    ) -> str:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                return read_address_file(self.root)
            except SweepdError:
                if proc.exitcode is not None:
                    raise SweepdError(
                        f"sweepd server died during startup "
                        f"(exit code {proc.exitcode})"
                    )
                time.sleep(0.02)
        raise SweepdError(f"sweepd server never published an address in {self.root}")

    def start_worker(self, slot: int, generation: int = 0) -> None:
        name = f"w{slot}" if generation == 0 else f"w{slot}r{generation}"
        proc = self.context.Process(
            target=worker_main,
            args=(
                name, self.address, str(self.root / JOBS_DIRNAME),
                self.checkpoint_every, self.heartbeat_seconds,
            ),
            daemon=True,
        )
        proc.start()
        self.slots[slot] = (proc, name, generation)

    def kill_worker(self, slot: int) -> None:
        proc, _, _ = self.slots[slot]
        proc.kill()
        proc.join()

    def kill_server(self) -> None:
        assert self.server is not None
        self.server.kill()
        self.server.join()

    def shutdown(self) -> None:
        for proc, _, _ in self.slots.values():
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)
        if self.server is not None and self.server.is_alive():
            try:
                with RpcClient(self.address, timeout=1.0, retry_window=2.0) as rpc:
                    rpc.call({"type": "shutdown"})
            except SweepdError:
                pass
            self.server.join(timeout=5.0)
            if self.server.is_alive():
                self.server.terminate()
                self.server.join(timeout=5.0)


def run_distributed_sweep(
    runner,
    requests: List[Request],
    root,
    *,
    workers: int = 2,
    priority: str = "bulk",
    chaos: Optional[ChaosConfig] = None,
    fleet_chaos: Optional[FleetChaos] = None,
    lease_seconds: float = 5.0,
    checkpoint_every: int = 1000,
    heartbeat_seconds: float = 0.25,
    poll_seconds: float = 0.05,
    timeout: float = 600.0,
) -> Tuple[Dict[Request, object], FleetReport]:
    """Run *requests* on a local server + worker fleet; collect from cache.

    Returns ``(results, report)`` where results maps each request to its
    :class:`repro.sim.metrics.RunMetrics` — the same mapping (and the
    same cache entries) ``runner.run_many`` would produce.  Raises
    :class:`repro.common.errors.SweepError` naming every quarantined
    request once the sweep drains, mirroring the pool path's contract:
    completed results are cached and returned info is preserved even
    when some jobs are poison.
    """
    root = Path(root)
    requests = list(dict.fromkeys(requests))
    fleet = _Fleet(
        root, runner.cache_dir,
        workers=workers,
        max_attempts=runner.max_attempts,
        lease_seconds=lease_seconds,
        checkpoint_every=checkpoint_every,
        heartbeat_seconds=heartbeat_seconds,
        chaos=chaos,
        server_poll_seconds=poll_seconds,
    )
    script = fleet_chaos or FleetChaos()
    pending_kills = dict(script.kill_worker_mid_job)
    server_restart_at = script.restart_server_after_results

    fleet.start_server()
    try:
        records = [
            build_job(request, runner._sizing(), runner.faults, priority=0)
            for request in requests
        ]
        with RpcClient(fleet.address, timeout=2.0, retry_window=30.0) as rpc:
            reply = rpc.call({
                "type": "submit",
                "priority": priority,
                "jobs": [record.to_json() for record in records],
            })
            if reply.get("type") == "error":
                raise SweepdError(f"submit rejected: {reply.get('error')}")
            fleet.report.jobs_total = len(records)
            fleet.report.jobs_already_done = len(reply.get("already_done", []))

        for slot in range(workers):
            fleet.start_worker(slot)

        quarantined: Dict[str, dict] = {}
        deadline = time.monotonic() + timeout
        with RpcClient(fleet.address, timeout=2.0, retry_window=30.0) as rpc:
            while True:
                if time.monotonic() > deadline:
                    raise SweepdError(
                        f"distributed sweep did not drain within {timeout:.0f}s"
                    )
                status = rpc.call({"type": "status"})
                fleet.report.reclaims = int(status.get("reclaims", 0))
                jobs = status.get("jobs", [])

                # Scripted chaos: SIGKILL a worker the moment it is
                # observed heartbeating past its step threshold —
                # provably mid-job, with a checkpoint likely behind it.
                for slot, threshold in list(pending_kills.items()):
                    proc, name, generation = fleet.slots.get(
                        slot, (None, None, 0)
                    )
                    if proc is None:
                        continue
                    busy = any(
                        job.get("worker") == name
                        and int(job.get("steps", 0)) >= threshold
                        for job in jobs
                    )
                    if busy and proc.is_alive():
                        fleet.kill_worker(slot)
                        fleet.report.chaos_worker_kills += 1
                        del pending_kills[slot]

                # Scripted chaos: SIGKILL + relaunch the server itself.
                done = int(status.get("counts", {}).get("done", 0))
                if server_restart_at is not None and done >= server_restart_at:
                    fleet.kill_server()
                    fleet.start_server(address=fleet.address)
                    fleet.report.chaos_server_restarts += 1
                    server_restart_at = None

                # Graceful degradation: relaunch any dead worker (killed
                # by chaos or by the OS); the sweep redistributes.
                if not status.get("drained"):
                    for slot, (proc, _, generation) in list(fleet.slots.items()):
                        if proc.exitcode is not None:
                            fleet.start_worker(slot, generation + 1)
                            fleet.report.worker_relaunches += 1

                if status.get("drained"):
                    for job in jobs:
                        if job.get("state") == QUARANTINED:
                            quarantined[str(job.get("job_id"))] = job
                    break
                time.sleep(poll_seconds)
    finally:
        fleet.shutdown()

    results: Dict[Request, object] = {}
    failures = []
    attempts: Dict[Request, int] = {}
    quarantined_requests = {
        tuple(job.get("request", ())) for job in quarantined.values()
    }
    for job in quarantined.values():
        request = tuple(job.get("request", ()))
        attempts[request] = int(job.get("attempts", 0))
        errors = job.get("errors") or ["quarantined"]
        failures.append((request, SweepdError(str(errors[-1]))))
        fleet.report.quarantined.append(request)
    for request in requests:
        if request in quarantined_requests:
            continue
        metrics = runner._load(runner._key(*request))
        if metrics is None:
            raise SweepdError(
                f"sweep drained but no cached result for {'/'.join(request)} "
                f"(manifest/cache disagree — service bug)"
            )
        results[request] = metrics
    if failures:
        raise SweepError(failures, attempts=attempts)
    return results, fleet.report
