"""Length-prefixed JSON frames over TCP or Unix sockets, chaos-tolerant.

Wire format: each message is one frame — a 4-byte big-endian payload
length followed by a UTF-8 JSON object.  Framing survives arbitrary TCP
segmentation (:class:`FrameBuffer` reassembles), and every message is a
plain dict with a ``type`` field, so the protocol is inspectable with
``socat`` and versioned by vocabulary rather than by layout.

Reliability model (the part chaos testing leans on):

* Requests that expect a reply carry a client-assigned ``seq``; the
  server echoes it.  :class:`RpcClient.call` retries the *same* frame
  (same seq) after a timeout or connection error, reconnecting as
  needed, until ``retry_window`` is exhausted — so every server-side
  handler must be idempotent, and is.
* Replies whose ``seq`` does not match the in-flight call are discarded:
  that is what makes duplicated or reordered frames harmless on the
  client side.
* Messages without ``seq`` (heartbeats) are fire-and-forget: no reply,
  no retry, failure is absorbed — a flaky network must never stall the
  simulation loop that emits them.

Chaos injection (:func:`apply_chaos`) is a pure function over a batch of
frames, drawing drop/duplicate/reorder decisions from a
:class:`repro.common.rng.DeterministicRng`, so the unit tests can pin
exact schedules; the server applies it to both received and sent
batches.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, TypeVar, Union

from repro.common.errors import SweepdError
from repro.common.rng import DeterministicRng
from repro.faults.chaos import ChaosConfig

T = TypeVar("T")

_LENGTH = struct.Struct(">I")

#: Upper bound on one frame; anything larger is a protocol violation
#: (status replies for paper-scale sweeps are ~100 KiB).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: File (under the server root) recording the address actually bound,
#: so workers and clients can find a server given only the root.
ADDRESS_FILE = "sweepd.addr"

#: Default socket file name for Unix-domain listeners.
SOCKET_NAME = "sweepd.sock"

#: Unix socket paths are limited to ~108 bytes (sun_path); beyond this
#: the service falls back to TCP on localhost.
_MAX_UNIX_PATH = 96

Message = Dict[str, object]


def encode_frame(message: Message) -> bytes:
    """Serialize one message to its wire frame."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise SweepdError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(body)) + body


class FrameBuffer:
    """Incremental frame reassembly for one stream socket."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[Message]:
        """Absorb *data*; return every now-complete message, in order."""
        self._buffer.extend(data)
        out: List[Message] = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                return out
            (length,) = _LENGTH.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise SweepdError(
                    f"incoming frame claims {length} bytes "
                    f"(limit {MAX_FRAME_BYTES}); stream corrupt"
                )
            end = _LENGTH.size + length
            if len(self._buffer) < end:
                return out
            body = bytes(self._buffer[_LENGTH.size:end])
            del self._buffer[:end]
            try:
                message = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise SweepdError(f"undecodable frame: {exc}")
            if not isinstance(message, dict):
                raise SweepdError(
                    f"frame decodes to {type(message).__name__}, expected object"
                )
            out.append(message)


# -- chaos ---------------------------------------------------------------------


def apply_chaos(
    frames: Sequence[T],
    rng: DeterministicRng,
    chaos: Optional[ChaosConfig],
) -> List[T]:
    """Drop, duplicate, and pairwise-reorder a batch of frames.

    Pure in (frames, rng state, chaos): the same stream of batches under
    the same seed yields the same mangling schedule.  Stalls are NOT
    applied here (they are a side effect, not a transformation); the
    server sleeps separately via :func:`chaos_stall`.
    """
    if chaos is None or not chaos.active:
        return list(frames)
    out: List[T] = []
    for frame in frames:
        if chaos.drop_rate > 0.0 and rng.random() < chaos.drop_rate:
            continue
        out.append(frame)
        if chaos.duplicate_rate > 0.0 and rng.random() < chaos.duplicate_rate:
            out.append(frame)
    if chaos.reorder_rate > 0.0:
        index = 0
        while index + 1 < len(out):
            if rng.random() < chaos.reorder_rate:
                out[index], out[index + 1] = out[index + 1], out[index]
                index += 2
            else:
                index += 1
    return out


def chaos_stall(rng: DeterministicRng, chaos: Optional[ChaosConfig]) -> float:
    """Seconds to wedge before handling a batch (0.0 = no stall drawn)."""
    if chaos is None or not chaos.active or chaos.stall_rate <= 0.0:
        return 0.0
    if rng.random() < chaos.stall_rate:
        return chaos.stall_seconds
    return 0.0


# -- addressing ----------------------------------------------------------------


Address = Union[Tuple[str, int], str]  # ("host", port) for TCP, path for Unix


def parse_address(spec: str) -> Address:
    """Parse ``unix:/path`` or ``host:port`` (also ``tcp:host:port``)."""
    if spec.startswith("unix:"):
        return spec[len("unix:"):]
    if spec.startswith("tcp:"):
        spec = spec[len("tcp:"):]
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise SweepdError(
            f"bad address {spec!r}: expected unix:/path or host:port"
        )
    return (host or "127.0.0.1", int(port))


def format_address(address: Address) -> str:
    if isinstance(address, str):
        return f"unix:{address}"
    host, port = address
    return f"tcp:{host}:{port}"


def default_address(root: Union[str, Path]) -> str:
    """Pick a listen address for *root*: Unix socket, or TCP fallback.

    Unix sockets are preferred (no port juggling, filesystem
    permissions), but ``sun_path`` is limited to ~108 bytes — deep
    checkpoint roots (CI workspaces, pytest tmp trees) fall back to a
    TCP listener on localhost with an OS-assigned port (spec ``tcp::0``;
    the bound port is recorded in the root's address file).
    """
    path = Path(root) / SOCKET_NAME
    if len(os.fsencode(path)) <= _MAX_UNIX_PATH:
        return f"unix:{path}"
    return "tcp:127.0.0.1:0"


def create_listener(spec: str) -> "socket.socket":
    """Bind + listen on *spec*; returns the listening socket."""
    address = parse_address(spec)
    if isinstance(address, str):
        path = Path(address)
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.exists():
            path.unlink()
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(path))
    else:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(address)
    listener.listen(64)
    listener.setblocking(False)
    return listener


def listener_address(listener: "socket.socket") -> str:
    """The canonical spec of a bound listener (reports the real port)."""
    if listener.family == socket.AF_UNIX:
        return f"unix:{listener.getsockname()}"
    host, port = listener.getsockname()[:2]
    return f"tcp:{host}:{port}"


def write_address_file(root: Union[str, Path], spec: str) -> Path:
    from repro.common.errors import PersistError
    from repro.experiments.jobcore import write_json_atomic

    # Retried: the address file is the rendezvous the whole fleet needs,
    # and one refused write (a storage-fault storm, a transient ENOSPC)
    # must not prevent the server from ever becoming reachable.
    last: Optional[PersistError] = None
    for _ in range(5):
        try:
            return write_json_atomic(
                Path(root) / ADDRESS_FILE, {"address": spec}, site="address"
            )
        except PersistError as exc:
            last = exc
    raise last  # type: ignore[misc]  # five strikes: surface the storage error


def read_address_file(root: Union[str, Path]) -> str:
    from repro import persist
    from repro.common.errors import PersistError

    path = Path(root) / ADDRESS_FILE
    try:
        payload = persist.read_json(path, site="address")
        return str(payload["address"])
    except (OSError, PersistError, KeyError) as exc:
        raise SweepdError(
            f"no usable server address at {path} ({exc}); "
            f"is a sweepd server running on this root?"
        )


def connect(spec: str, timeout: float) -> "socket.socket":
    """Open a blocking client connection to *spec*."""
    address = parse_address(spec)
    if isinstance(address, str):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        sock.connect(address)
    else:
        sock = socket.create_connection(address, timeout=timeout)
    sock.settimeout(timeout)
    return sock


# -- client --------------------------------------------------------------------


class RpcClient:
    """A reconnecting, retrying, duplicate-discarding protocol client.

    One instance serves one logical peer (a worker's or submitter's view
    of the server).  Not thread-safe — the worker drives it from a
    single loop, and heartbeat sends happen inline at checkpointer
    cadence.
    """

    def __init__(
        self,
        address: str,
        *,
        timeout: float = 5.0,
        retry_window: float = 60.0,
        reconnect_delay: float = 0.05,
    ) -> None:
        self.address = address
        self.timeout = float(timeout)
        self.retry_window = float(retry_window)
        self.reconnect_delay = float(reconnect_delay)
        self._sock: Optional[socket.socket] = None
        self._buffer = FrameBuffer()
        self._seq = 0

    # -- connection management --------------------------------------------
    def _ensure_connected(self) -> "socket.socket":
        if self._sock is None:
            self._sock = connect(self.address, self.timeout)
            self._buffer = FrameBuffer()
        return self._sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "RpcClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- calls -------------------------------------------------------------
    def call(
        self,
        message: Message,
        *,
        timeout: Optional[float] = None,
        retry_window: Optional[float] = None,
    ) -> Message:
        """Send *message*, await the matching reply; retry until it lands.

        Retries reuse the same ``seq``, so a request whose *reply* was
        lost is simply re-answered by the (idempotent) server.  Raises
        :class:`repro.common.errors.SweepdError` once ``retry_window``
        seconds have passed without a matched reply.
        """
        timeout = self.timeout if timeout is None else float(timeout)
        window = self.retry_window if retry_window is None else float(retry_window)
        self._seq += 1
        framed = encode_frame(dict(message, seq=self._seq))
        deadline = time.monotonic() + window
        delay = self.reconnect_delay
        last_error: Optional[BaseException] = None
        while True:
            try:
                sock = self._ensure_connected()
                sock.sendall(framed)
                reply = self._await_reply(sock, self._seq, timeout)
                if reply is not None:
                    return reply
                raise TimeoutError(f"no reply within {timeout:.1f}s")
            except (OSError, TimeoutError) as exc:
                last_error = exc
                self._drop_connection()
            if time.monotonic() >= deadline:
                raise SweepdError(
                    f"rpc {message.get('type')!r} to {self.address} failed "
                    f"after {window:.1f}s of retries "
                    f"({type(last_error).__name__}: {last_error})"
                )
            time.sleep(delay)
            delay = min(delay * 2, 1.0)

    def _await_reply(
        self, sock: "socket.socket", seq: int, timeout: float
    ) -> Optional[Message]:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            sock.settimeout(remaining)
            try:
                data = sock.recv(65536)
            except socket.timeout:
                return None
            if not data:
                raise ConnectionError("server closed the connection")
            for reply in self._buffer.feed(data):
                if reply.get("seq") == seq:
                    return reply
                # A stale, duplicated, or reordered reply: discard.

    def send_oneway(self, message: Message) -> bool:
        """Best-effort fire-and-forget send (heartbeats).

        Never raises and never blocks beyond one connect/send attempt;
        returns False when the frame could not be handed to the kernel
        (the caller's simulation must not care).
        """
        try:
            sock = self._ensure_connected()
            sock.sendall(encode_frame(dict(message)))
            return True
        except (OSError, SweepdError):
            self._drop_connection()
            return False
