"""Repository state checking and repair: ``python -m repro fsck``.

The persistence layer (:mod:`repro.persist`, REPRO-CKPT files, the
aggregator's audit log) stamps everything it writes with checksums so
torn writes and bit-rot are *detectable*.  This module is the detector:
it walks checkpoint/sweep/cache/bench directories, verifies every file
it recognises, and reports — or, with ``--repair``, quarantines corrupt
files and promotes the best surviving fallback:

* a corrupt ``latest.ckpt`` is replaced by the newest verifiable
  ``gen-<n>.ckpt`` generation;
* a corrupt persisted JSON file (manifest, cache entry, result, bench
  document) falls back to its ``.bak`` when one verifies;
* an ``aggregator.jsonl`` with a torn tail record (a server killed
  mid-append) is truncated back to its last complete line — the torn
  record was never acknowledged, so dropping it is correct;
* anything quarantined lands in a ``quarantine/`` sibling directory,
  never deleted — post-mortems want the bytes.

Exit status: 0 when every scanned file is ok/legacy (or was repaired),
1 when unrepaired corruption remains, 2 for usage errors.

File classes scanned (everything else is ignored): ``*.ckpt``,
``*.json``, ``*.json.bak``, ``*.jsonl``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import persist
from repro.common.errors import PersistError
from repro.snapshot.checkpoint import (
    LATEST_NAME,
    generation_files,
    verify_checkpoint,
)

#: Where fsck moves corrupt files (a sibling of the file, never deleted).
QUARANTINE_DIRNAME = "quarantine"

#: File names fsck never scans (liveness/scratch artifacts).
_IGNORED_NAMES = {"heartbeat"}


@dataclasses.dataclass
class Finding:
    """One scanned file's verdict (and what --repair did about it)."""

    path: Path
    kind: str            # "checkpoint" | "json" | "journal"
    status: str          # "ok" | "legacy" | "corrupt"
    detail: str
    repair: Optional[str] = None   # what --repair did, when it ran

    @property
    def problem(self) -> bool:
        return self.status == "corrupt"


def _classify(path: Path) -> Optional[str]:
    name = path.name
    if name in _IGNORED_NAMES or name.endswith(".tmp"):
        return None
    if name.endswith(".ckpt"):
        return "checkpoint"
    if name.endswith(".jsonl"):
        return "journal"
    if name.endswith(".json") or name.endswith(".json.bak"):
        return "json"
    return None


def _probe_journal(path: Path) -> Tuple[str, str, int]:
    """Verdict for a JSONL journal: ``(status, detail, torn_tail_offset)``.

    A single unparseable *final* line is a torn tail (crash mid-append):
    recoverable by truncating back to the offset returned.  Unparseable
    lines anywhere else are corruption proper (offset -1: not safely
    truncatable without losing good records).
    """
    try:
        raw = path.read_bytes()
    except OSError as exc:
        return ("corrupt", f"unreadable: {exc}", -1)
    offset = 0
    bad: List[Tuple[int, int]] = []  # (line number, byte offset)
    lines = raw.split(b"\n")
    for number, line in enumerate(lines, start=1):
        if line.strip():
            try:
                json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                bad.append((number, offset))
        offset += len(line) + 1
    if not bad:
        return ("ok", f"{sum(1 for l in lines if l.strip())} records", -1)
    last_number, last_offset = bad[-1]
    if len(bad) == 1 and last_number == len(lines) - (0 if lines[-1] else 1):
        return ("corrupt", f"torn tail record at line {last_number}",
                last_offset)
    return ("corrupt",
            f"{len(bad)} unparseable line(s), first at line {bad[0][0]}", -1)


def _quarantine(path: Path) -> Optional[Path]:
    """Move *path* into a ``quarantine/`` sibling; None when that fails."""
    target_dir = path.parent / QUARANTINE_DIRNAME
    try:
        target_dir.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    target = target_dir / path.name
    suffix = 0
    while target.exists():
        suffix += 1
        target = target_dir / f"{path.name}.{suffix}"
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target


def _restore_bytes(source: Path, destination: Path) -> bool:
    """Copy *source*'s bytes over *destination* (atomically); False on failure."""
    try:
        data = source.read_bytes()
        persist.atomic_write_bytes(destination, data, site="fsck")
    except (OSError, PersistError):
        return False
    return True


def _repair_checkpoint(finding: Finding) -> None:
    """Quarantine a corrupt checkpoint; promote a generation for latest."""
    path = finding.path
    moved = _quarantine(path)
    if moved is None:
        finding.repair = "quarantine failed (permissions?)"
        return
    if path.name != LATEST_NAME:
        finding.repair = f"quarantined to {moved}"
        finding.status = "repaired"
        return
    for candidate in reversed(generation_files(path.parent)):
        status, _ = verify_checkpoint(candidate)
        if status == "ok" and _restore_bytes(candidate, path):
            finding.repair = (f"quarantined to {moved}; promoted "
                              f"{candidate.name} to {LATEST_NAME}")
            finding.status = "repaired"
            return
    finding.repair = (f"quarantined to {moved}; no verifiable generation "
                      f"to promote — the run restarts from scratch")
    finding.status = "repaired"


def _repair_json(finding: Finding) -> None:
    """Quarantine a corrupt JSON file; promote its ``.bak`` when good."""
    path = finding.path
    moved = _quarantine(path)
    if moved is None:
        finding.repair = "quarantine failed (permissions?)"
        return
    backup = persist.backup_path(path)
    if not path.name.endswith(".bak") and backup.exists():
        status, _ = persist.verify_file(backup)
        if status in ("ok", "legacy") and _restore_bytes(backup, path):
            finding.repair = (f"quarantined to {moved}; restored from "
                              f"{backup.name}")
            finding.status = "repaired"
            return
    finding.repair = f"quarantined to {moved}"
    finding.status = "repaired"


def _repair_journal(finding: Finding, torn_offset: int) -> None:
    """Truncate a torn tail record; quarantine anything worse."""
    path = finding.path
    if torn_offset >= 0:
        try:
            raw = path.read_bytes()
            persist.atomic_write_bytes(path, raw[:torn_offset], site="fsck")
        except (OSError, PersistError):
            finding.repair = "truncation failed"
            return
        finding.repair = f"truncated torn tail at byte {torn_offset}"
        finding.status = "repaired"
        return
    moved = _quarantine(path)
    if moved is None:
        finding.repair = "quarantine failed (permissions?)"
        return
    finding.repair = f"quarantined to {moved}"
    finding.status = "repaired"


def scan_directory(
    directory: Path, *, repair: bool = False
) -> List[Finding]:
    """Verify (and optionally repair) every recognised file under *directory*."""
    findings: List[Finding] = []
    for dirpath, dirnames, filenames in os.walk(directory):
        # Never descend into our own quarantine — those files are
        # *expected* to be corrupt; rescanning them would loop forever.
        dirnames[:] = sorted(d for d in dirnames if d != QUARANTINE_DIRNAME)
        for name in sorted(filenames):
            path = Path(dirpath) / name
            kind = _classify(path)
            if kind is None:
                continue
            if kind == "checkpoint":
                status, detail = verify_checkpoint(path)
                finding = Finding(path, kind, status, detail)
                if repair and finding.problem:
                    _repair_checkpoint(finding)
            elif kind == "journal":
                status, detail, torn_offset = _probe_journal(path)
                finding = Finding(path, kind, status, detail)
                if repair and finding.problem:
                    _repair_journal(finding, torn_offset)
            else:
                status, detail = persist.verify_file(path)
                finding = Finding(path, kind, status, detail)
                if repair and finding.problem:
                    _repair_json(finding)
            findings.append(finding)
    return findings


def default_scan_dirs() -> List[Path]:
    """The directories ``repro fsck`` scans when none are given."""
    cache_env = os.environ.get("REPRO_CACHE_DIR")
    return [
        Path("checkpoints"),
        Path(cache_env) if cache_env else Path(".repro_cache"),
        Path("benchmarks"),
    ]


def summarize(findings: List[Finding]) -> Dict[str, int]:
    counts = {"ok": 0, "legacy": 0, "corrupt": 0, "repaired": 0}
    for finding in findings:
        counts[finding.status] = counts.get(finding.status, 0) + 1
    return counts


# -- CLI glue (wired into repro.cli's subcommand table) ----------------------

def add_fsck_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dirs", nargs="*", default=None, metavar="DIR",
                        help="directories to scan (default: checkpoints/, "
                             "the result cache, benchmarks/)")
    parser.add_argument("--repair", action="store_true",
                        help="quarantine corrupt files, promote last-good "
                             "checkpoint generations and .bak fallbacks, "
                             "truncate torn journal tails")
    parser.add_argument("--quiet", action="store_true",
                        help="print problems (and repairs) only")


def command_fsck(args: argparse.Namespace) -> int:
    # fsck is the tool that *recovers from* storage trouble; its own
    # writes must never be storm targets.
    persist.install_storage_faults(None)
    dirs = [Path(d) for d in args.dirs] if args.dirs else default_scan_dirs()
    explicit = bool(args.dirs)
    findings: List[Finding] = []
    scanned: List[Path] = []
    for directory in dirs:
        if not directory.is_dir():
            if explicit:
                print(f"error: {directory} is not a directory",
                      file=sys.stderr)
                return 2
            continue
        scanned.append(directory)
        findings.extend(scan_directory(directory, repair=args.repair))
    for finding in findings:
        if args.quiet and finding.status in ("ok", "legacy"):
            continue
        line = f"{finding.status:9s} {finding.path}  [{finding.detail}]"
        if finding.repair:
            line += f" -> {finding.repair}"
        print(line)
    counts = summarize(findings)
    roots = ", ".join(str(d) for d in scanned) or "nothing"
    print(f"fsck: scanned {roots}: {counts['ok']} ok, "
          f"{counts['legacy']} legacy, {counts['corrupt']} corrupt, "
          f"{counts['repaired']} repaired")
    if counts["corrupt"]:
        if not args.repair:
            print("hint: re-run with --repair to quarantine corrupt files "
                  "and promote last-good generations", file=sys.stderr)
        return 1
    return 0


def run_fsck(
    dirs: Sequence[Path], *, repair: bool = False
) -> Tuple[List[Finding], int]:
    """Library entry: scan *dirs*; returns (findings, exit_code)."""
    findings: List[Finding] = []
    for directory in dirs:
        if Path(directory).is_dir():
            findings.extend(scan_directory(Path(directory), repair=repair))
    exit_code = 1 if any(f.problem for f in findings) else 0
    return findings, exit_code
