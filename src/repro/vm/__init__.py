"""Virtual-memory substrate: page tables, TLBs, page walker, OS model.

This package stands in for the Simics/Ubuntu full-system layer of the
paper's infrastructure.  It provides real 4-level x86-style page tables
materialised in simulated physical memory, per-core L1/L2 TLBs and
page-walk caches, and an OS model that owns physical-frame allocation
across the flat DRAM+NVM space.  Page walks generate genuine memory
traffic, which is what PageSeer's MMU-triggered mechanism feeds on.
"""

from repro.vm.os_model import OsModel, Process
from repro.vm.page_table import PageTable
from repro.vm.tlb import SoaTlb, Tlb
from repro.vm.walker import PageWalkCache, PageWalker, WalkResult
from repro.vm.mmu import Mmu, TranslationResult

__all__ = [
    "OsModel",
    "Process",
    "PageTable",
    "Tlb",
    "SoaTlb",
    "PageWalkCache",
    "PageWalker",
    "WalkResult",
    "Mmu",
    "TranslationResult",
]
