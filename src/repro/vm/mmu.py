"""The per-core MMU: L1/L2 TLBs in front of the page walker (Table I)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.addr import page_of
from repro.common.config import SystemConfig
from repro.common.stats import StatsRegistry
from repro.vm.page_table import PageTable
from repro.vm.tlb import SoaTlb, Tlb
from repro.vm.walker import PageWalker

try:  # numpy backs DenseVpnCache; the rest of the MMU never needs it
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain image bakes numpy in
    _np = None


class DenseVpnCache:
    """The flat VPN→PPN shortcut as a dense numpy array.

    :class:`repro.vm.page_table.PageTable` keeps a flat cache over its
    radix tree (mappings are only ever added, so the cache cannot go
    stale).  This variant stores the common case — VPNs inside a fixed
    window starting at *base_vpn*, where the synthetic workloads' heap
    lives — in one int64 vector indexed by ``vpn - base_vpn`` with ``-1``
    as the empty sentinel, and spills everything outside the window to a
    dict.  The dense vector is what gives the batched engine a vectorized
    translation kernel (:meth:`lookup_many`); the scalar :meth:`get` /
    ``[] =`` protocol is a drop-in for the dict the page table used
    before.  ``tests/property/test_timeline_soa.py`` cross-checks both
    protocols against a plain-dict model.
    """

    __slots__ = ("base_vpn", "_ppns", "_overflow")

    #: -1 never collides with a PPN (frame numbers are non-negative).
    EMPTY = -1

    def __init__(self, base_vpn: int, capacity: int = 1 << 16):
        if _np is None:
            raise RuntimeError("DenseVpnCache needs numpy; use a dict instead")
        if capacity <= 0:
            raise ValueError("DenseVpnCache needs a positive capacity")
        self.base_vpn = base_vpn
        self._ppns = _np.full(capacity, self.EMPTY, dtype=_np.int64)
        self._overflow: Dict[int, int] = {}

    def get(self, vpn: int) -> Optional[int]:
        offset = vpn - self.base_vpn
        if 0 <= offset < self._ppns.shape[0]:
            ppn = self._ppns[offset]
            return int(ppn) if ppn >= 0 else None
        return self._overflow.get(vpn)

    def __setitem__(self, vpn: int, ppn: int) -> None:
        offset = vpn - self.base_vpn
        if 0 <= offset < self._ppns.shape[0]:
            self._ppns[offset] = ppn
        else:
            self._overflow[vpn] = ppn

    def __contains__(self, vpn: int) -> bool:
        return self.get(vpn) is not None

    def __len__(self) -> int:
        return int((self._ppns != self.EMPTY).sum()) + len(self._overflow)

    def lookup_many(self, vpns: "_np.ndarray") -> "_np.ndarray":
        """Vectorized :meth:`get` over an int64 VPN vector.

        Returns the PPN per VPN with ``-1`` for unmapped entries.  VPNs
        outside the dense window are resolved through the overflow dict
        one by one — by construction they are rare (the workloads' heap
        sits inside the window).
        """
        vpns = _np.asarray(vpns, dtype=_np.int64)
        offsets = vpns - self.base_vpn
        inside = (offsets >= 0) & (offsets < self._ppns.shape[0])
        result = _np.full(vpns.shape[0], self.EMPTY, dtype=_np.int64)
        result[inside] = self._ppns[offsets[inside]]
        if not inside.all():
            overflow = self._overflow
            for position in _np.flatnonzero(~inside):
                result[position] = overflow.get(int(vpns[position]), self.EMPTY)
        return result


class TranslationResult:
    """Outcome of translating one virtual address.

    A ``__slots__`` class: one is built per memory operation.
    """

    __slots__ = ("ppn", "latency", "source", "pte_reached_memory")

    def __init__(
        self,
        ppn: int,
        latency: int,
        source: str,
        pte_reached_memory: bool = False,
    ):
        self.ppn = ppn
        self.latency = latency
        #: "l1", "l2", or "walk".
        self.source = source
        #: Set when a walk happened and its PTE fetch reached main memory.
        self.pte_reached_memory = pte_reached_memory

    def __repr__(self) -> str:
        return (
            f"TranslationResult(ppn={self.ppn}, latency={self.latency}, "
            f"source={self.source!r}, "
            f"pte_reached_memory={self.pte_reached_memory})"
        )


class Mmu:
    """One core's address-translation machinery."""

    def __init__(
        self,
        core_id: int,
        config: SystemConfig,
        walker: PageWalker,
        stats: StatsRegistry,
    ):
        self.core_id = core_id
        self.config = config
        self.walker = walker
        self.stats = stats
        # The L1 TLB is struct-of-arrays: the batched engine's drain loop
        # reads its way dicts and age arrays directly.  The L2 TLB is only
        # reached on walks (always shared ops on the scalar path), where
        # the OrderedDict reference model's C-speed operations win.
        self.l1_tlb = SoaTlb(config.l1_tlb)
        self.l2_tlb = Tlb(config.l2_tlb)
        # Hot-path invariants: TLB latencies and pre-resolved stats handles.
        self._l1_latency = config.l1_tlb.latency_cycles
        self._l2_latency = config.l2_tlb.latency_cycles
        self._count_l1_hits = stats.counter("tlb/l1_hits")
        self._count_l2_hits = stats.counter("tlb/l2_hits")
        self._count_misses = stats.counter("tlb/misses")

    # repro-hot
    def translate(self, now: int, page_table: PageTable, vaddr: int) -> TranslationResult:
        """Translate *vaddr* for the walker's process; VPN must be mapped."""
        pid = page_table.pid
        vpn = page_of(vaddr)

        latency = self._l1_latency
        ppn = self.l1_tlb.lookup(pid, vpn)
        if ppn is not None:
            self._count_l1_hits()
            return TranslationResult(ppn, latency, "l1")

        latency += self._l2_latency
        ppn = self.l2_tlb.lookup(pid, vpn)
        if ppn is not None:
            self._count_l2_hits()
            self.l1_tlb.fill(pid, vpn, ppn)
            return TranslationResult(ppn, latency, "l2")

        self._count_misses()
        walk = self.walker.walk(now + latency, page_table, vpn)
        latency += walk.latency
        self.l2_tlb.fill(pid, vpn, walk.ppn)
        self.l1_tlb.fill(pid, vpn, walk.ppn)
        return TranslationResult(walk.ppn, latency, "walk", walk.pte_reached_memory)

    def invalidate(self, pid: int, vpn: int) -> None:
        """Shoot down one translation from both TLB levels."""
        self.l1_tlb.invalidate(pid, vpn)
        self.l2_tlb.invalidate(pid, vpn)
