"""The per-core MMU: L1/L2 TLBs in front of the page walker (Table I)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.addr import page_of
from repro.common.config import SystemConfig
from repro.common.stats import StatsRegistry
from repro.vm.page_table import PageTable
from repro.vm.tlb import Tlb
from repro.vm.walker import PageWalker


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of translating one virtual address."""

    ppn: int
    latency: int
    #: "l1", "l2", or "walk".
    source: str
    #: Set when a walk happened and its PTE fetch reached main memory.
    pte_reached_memory: bool = False


class Mmu:
    """One core's address-translation machinery."""

    def __init__(
        self,
        core_id: int,
        config: SystemConfig,
        walker: PageWalker,
        stats: StatsRegistry,
    ):
        self.core_id = core_id
        self.config = config
        self.walker = walker
        self.stats = stats
        self.l1_tlb = Tlb(config.l1_tlb)
        self.l2_tlb = Tlb(config.l2_tlb)

    def translate(self, now: int, page_table: PageTable, vaddr: int) -> TranslationResult:
        """Translate *vaddr* for the walker's process; VPN must be mapped."""
        pid = page_table.pid
        vpn = page_of(vaddr)

        latency = self.config.l1_tlb.latency_cycles
        ppn = self.l1_tlb.lookup(pid, vpn)
        if ppn is not None:
            self.stats.add("tlb/l1_hits")
            return TranslationResult(ppn, latency, "l1")

        latency += self.config.l2_tlb.latency_cycles
        ppn = self.l2_tlb.lookup(pid, vpn)
        if ppn is not None:
            self.stats.add("tlb/l2_hits")
            self.l1_tlb.fill(pid, vpn, ppn)
            return TranslationResult(ppn, latency, "l2")

        self.stats.add("tlb/misses")
        walk = self.walker.walk(now + latency, page_table, vpn)
        latency += walk.latency
        self.l2_tlb.fill(pid, vpn, walk.ppn)
        self.l1_tlb.fill(pid, vpn, walk.ppn)
        return TranslationResult(walk.ppn, latency, "walk", walk.pte_reached_memory)

    def invalidate(self, pid: int, vpn: int) -> None:
        """Shoot down one translation from both TLB levels."""
        self.l1_tlb.invalidate(pid, vpn)
        self.l2_tlb.invalidate(pid, vpn)
