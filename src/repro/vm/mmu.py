"""The per-core MMU: L1/L2 TLBs in front of the page walker (Table I)."""

from __future__ import annotations

from repro.common.addr import page_of
from repro.common.config import SystemConfig
from repro.common.stats import StatsRegistry
from repro.vm.page_table import PageTable
from repro.vm.tlb import Tlb
from repro.vm.walker import PageWalker


class TranslationResult:
    """Outcome of translating one virtual address.

    A ``__slots__`` class: one is built per memory operation.
    """

    __slots__ = ("ppn", "latency", "source", "pte_reached_memory")

    def __init__(
        self,
        ppn: int,
        latency: int,
        source: str,
        pte_reached_memory: bool = False,
    ):
        self.ppn = ppn
        self.latency = latency
        #: "l1", "l2", or "walk".
        self.source = source
        #: Set when a walk happened and its PTE fetch reached main memory.
        self.pte_reached_memory = pte_reached_memory

    def __repr__(self) -> str:
        return (
            f"TranslationResult(ppn={self.ppn}, latency={self.latency}, "
            f"source={self.source!r}, "
            f"pte_reached_memory={self.pte_reached_memory})"
        )


class Mmu:
    """One core's address-translation machinery."""

    def __init__(
        self,
        core_id: int,
        config: SystemConfig,
        walker: PageWalker,
        stats: StatsRegistry,
    ):
        self.core_id = core_id
        self.config = config
        self.walker = walker
        self.stats = stats
        self.l1_tlb = Tlb(config.l1_tlb)
        self.l2_tlb = Tlb(config.l2_tlb)
        # Hot-path invariants: TLB latencies and pre-resolved stats handles.
        self._l1_latency = config.l1_tlb.latency_cycles
        self._l2_latency = config.l2_tlb.latency_cycles
        self._count_l1_hits = stats.counter("tlb/l1_hits")
        self._count_l2_hits = stats.counter("tlb/l2_hits")
        self._count_misses = stats.counter("tlb/misses")

    # repro-hot
    def translate(self, now: int, page_table: PageTable, vaddr: int) -> TranslationResult:
        """Translate *vaddr* for the walker's process; VPN must be mapped."""
        pid = page_table.pid
        vpn = page_of(vaddr)

        latency = self._l1_latency
        ppn = self.l1_tlb.lookup(pid, vpn)
        if ppn is not None:
            self._count_l1_hits()
            return TranslationResult(ppn, latency, "l1")

        latency += self._l2_latency
        ppn = self.l2_tlb.lookup(pid, vpn)
        if ppn is not None:
            self._count_l2_hits()
            self.l1_tlb.fill(pid, vpn, ppn)
            return TranslationResult(ppn, latency, "l2")

        self._count_misses()
        walk = self.walker.walk(now + latency, page_table, vpn)
        latency += walk.latency
        self.l2_tlb.fill(pid, vpn, walk.ppn)
        self.l1_tlb.fill(pid, vpn, walk.ppn)
        return TranslationResult(walk.ppn, latency, "walk", walk.pte_reached_memory)

    def invalidate(self, pid: int, vpn: int) -> None:
        """Shoot down one translation from both TLB levels."""
        self.l1_tlb.invalidate(pid, vpn)
        self.l2_tlb.invalidate(pid, vpn)
