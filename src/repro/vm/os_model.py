"""The OS substrate: processes, frame allocation, flat DRAM+NVM placement.

The paper runs Ubuntu 16.04 under Simics; PageSeer only depends on the OS
for (a) the 4-level page tables it walks and (b) the initial placement of
pages across the flat DRAM+NVM space.  This model provides exactly those
two things:

* page-table frames are allocated in DRAM (kernels keep hot metadata in
  fast memory);
* data frames are allocated by interleaving DRAM and NVM proportionally to
  their capacities (1:8 with Table I sizes), so a fraction of every
  workload's pages starts fast and the rest start slow — the situation all
  the studied swap schemes are designed for;
* a small DRAM region is reserved for in-memory controller metadata (the
  PRT and PCT of Table II live in DRAM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.config import HybridMemoryConfig
from repro.common.errors import AllocationError
from repro.vm.mmu import DenseVpnCache, _np
from repro.vm.page_table import PageTable

#: First VPN of the dense window each process's flat VPN→PPN cache covers.
#: Must equal ``repro.workloads.synthetic.HEAP_BASE >> PAGE_SHIFT`` (the
#: vm layer cannot import workloads; test_timeline_soa pins the equality).
HEAP_BASE_VPN = 0x1000_0000_0000 >> 12


@dataclass
class Process:
    """One simulated process: a pid and its page table."""

    pid: int
    page_table: PageTable
    touched_vpns: int = 0


class OsModel:
    """Owns the physical frame space and the process table."""

    def __init__(self, memory: HybridMemoryConfig):
        self.memory = memory
        self._next_dram_frame = 0
        self._next_nvm_frame = memory.dram_pages
        self._dram_limit = memory.dram_pages
        self._nvm_limit = memory.total_pages
        self._processes: Dict[int, Process] = {}
        self._data_frames_allocated = 0
        # Interleave ratio: one DRAM data frame per `ratio` frames total.
        self._interleave_ratio = max(
            2, round(memory.total_pages / max(1, memory.dram_pages))
        )
        self._reserved_metadata_pages: List[int] = []
        self._protected_frames: set = set()
        #: Frames retired after uncorrectable errors (``repro.faults``);
        #: maps frame -> order of quarantine, so introspection stays
        #: deterministic.
        self._quarantined_frames: Dict[int, int] = {}

    # -- raw frame allocation ---------------------------------------------
    def _take_dram_frame(self) -> int:
        if self._next_dram_frame >= self._dram_limit:
            raise AllocationError("out of DRAM frames")
        frame = self._next_dram_frame
        self._next_dram_frame += 1
        return frame

    def _take_nvm_frame(self) -> int:
        if self._next_nvm_frame >= self._nvm_limit:
            raise AllocationError("out of NVM frames")
        frame = self._next_nvm_frame
        self._next_nvm_frame += 1
        return frame

    def reserve_dram_pages(self, count: int) -> List[int]:
        """Reserve DRAM pages for controller metadata (PRT/PCT in DRAM)."""
        pages = [self._take_dram_frame() for _ in range(count)]
        self._reserved_metadata_pages.extend(pages)
        self._protected_frames.update(pages)
        return pages

    def allocate_table_frame(self) -> int:
        """Allocate a frame for a page-table node (DRAM)."""
        frame = self._take_dram_frame()
        self._protected_frames.add(frame)
        return frame

    def is_protected_frame(self, ppn: int) -> bool:
        """True for frames holding page tables or controller metadata.

        Swap schemes must never evict these from DRAM: the kernel pins its
        page tables, and the PRT/PCT regions belong to the controller.
        """
        return ppn in self._protected_frames

    # -- frame quarantine (fault recovery) ----------------------------------
    def quarantine_frame(self, ppn: int) -> bool:
        """Retire a failed physical frame; True if it was newly retired.

        Quarantined frames are never chosen as swap victims and their
        swapped-in rescues are pinned in DRAM (see
        ``repro.core.swap_driver``).  The bump-pointer allocators never
        reuse frames, so no allocation path needs to consult this set.
        """
        if ppn in self._quarantined_frames:
            return False
        self._quarantined_frames[ppn] = len(self._quarantined_frames)
        return True

    def is_quarantined(self, ppn: int) -> bool:
        return ppn in self._quarantined_frames

    @property
    def quarantined_frames(self) -> List[int]:
        """Retired frames, in quarantine order (checker introspection)."""
        return sorted(self._quarantined_frames, key=self._quarantined_frames.get)

    def allocate_data_frame(self, vpn: int) -> int:
        """First-touch allocation of a data frame, interleaved DRAM:NVM."""
        self._data_frames_allocated += 1
        prefer_dram = self._data_frames_allocated % self._interleave_ratio == 0
        if prefer_dram and self._next_dram_frame < self._dram_limit:
            return self._take_dram_frame()
        if self._next_nvm_frame < self._nvm_limit:
            return self._take_nvm_frame()
        # NVM exhausted: fall back to DRAM before giving up.
        return self._take_dram_frame()

    # -- processes ----------------------------------------------------------
    def create_process(self, pid: int) -> Process:
        """Create a process with an empty page table."""
        if pid in self._processes:
            raise AllocationError(f"pid {pid} already exists")
        vpn_cache = DenseVpnCache(HEAP_BASE_VPN) if _np is not None else None
        table = PageTable(
            pid,
            self.allocate_table_frame,
            self.allocate_data_frame,
            vpn_cache=vpn_cache,
        )
        process = Process(pid=pid, page_table=table)
        self._processes[pid] = process
        return process

    def process(self, pid: int) -> Process:
        return self._processes[pid]

    @property
    def processes(self) -> Dict[int, Process]:
        return dict(self._processes)

    # -- accounting ----------------------------------------------------------
    @property
    def metadata_pages(self) -> List[int]:
        """DRAM pages reserved for controller metadata (PRT/PCT regions)."""
        return list(self._reserved_metadata_pages)

    @property
    def protected_frames(self) -> frozenset:
        """Every frame holding page tables or controller metadata."""
        return frozenset(self._protected_frames)

    @property
    def dram_frames_used(self) -> int:
        return self._next_dram_frame

    @property
    def nvm_frames_used(self) -> int:
        return self._next_nvm_frame - self.memory.dram_pages

    @property
    def dram_frames_free(self) -> int:
        return self._dram_limit - self._next_dram_frame

    @property
    def nvm_frames_free(self) -> int:
        return self._nvm_limit - self._next_nvm_frame
