"""A 4-level x86-style page table materialised in simulated memory.

Each table node (PGD, PUD, PMD, PTE table) occupies one physical page
allocated by the OS model, so every step of a page walk has a real physical
address — the walker turns those into cache/memory traffic, and the PTE
line address is exactly what the MMU sends to the Hybrid Memory Controller
in PageSeer (Section III-B).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.common.addr import (
    LEVEL_BITS,
    PAGE_SHIFT,
    WALK_LEVELS,
    split_virtual_address,
)

#: Bytes per page-table entry (x86-64).
ENTRY_BYTES = 8


def _level_indices(vpn: int) -> List[int]:
    """Return the four per-level indices for a VPN (PGD first)."""
    parts = split_virtual_address(vpn << PAGE_SHIFT)
    return [parts.pgd_index, parts.pud_index, parts.pmd_index, parts.pte_index]


class _TableNode:
    """One physical page holding 512 entries of some level."""

    __slots__ = ("ppn", "children", "leaf_entries")

    def __init__(self, ppn: int):
        self.ppn = ppn
        self.children: Dict[int, "_TableNode"] = {}
        self.leaf_entries: Dict[int, int] = {}

    def entry_address(self, index: int) -> int:
        return (self.ppn << PAGE_SHIFT) + index * ENTRY_BYTES


class PageTable:
    """The page table of one process.

    Parameters
    ----------
    pid:
        The owning process id (for statistics only).
    allocate_table_frame:
        Callback returning a fresh physical page number for a table node;
        the OS model places these in DRAM, as kernels do for hot metadata.
    allocate_data_frame:
        Callback returning a fresh physical page number for a data page on
        first touch.
    vpn_cache:
        Optional flat VPN→PPN mapping to use instead of a plain dict.
        Anything with dict's ``get``/``[] =`` protocol works; the OS model
        passes :class:`repro.vm.mmu.DenseVpnCache` so the shortcut is a
        dense numpy vector with a vectorized ``lookup_many`` kernel.
    """

    def __init__(
        self,
        pid: int,
        allocate_table_frame: Callable[[], int],
        allocate_data_frame: Callable[[int], int],
        vpn_cache: Optional[Any] = None,
    ):
        self.pid = pid
        self._allocate_table_frame = allocate_table_frame
        self._allocate_data_frame = allocate_data_frame
        self.root = _TableNode(ppn=allocate_table_frame())
        self._mapped_pages = 0
        # Flat vpn -> ppn shortcut over the radix tree.  Mappings are only
        # ever *added* (leaf entries are never removed or rewritten), so
        # the cache can never go stale; it turns the per-op ensure_mapped
        # call from a 4-level index walk into one lookup.
        self._vpn_cache = vpn_cache if vpn_cache is not None else {}

    @property
    def cr3_ppn(self) -> int:
        """Physical page of the PGD (what the CR3 register points at)."""
        return self.root.ppn

    @property
    def mapped_pages(self) -> int:
        return self._mapped_pages

    # -- mapping -------------------------------------------------------------
    # repro-hot
    def ensure_mapped(self, vpn: int) -> int:
        """Return the PPN for *vpn*, allocating path and frame on first touch."""
        ppn = self._vpn_cache.get(vpn)
        if ppn is not None:
            return ppn
        indices = _level_indices(vpn)
        node = self.root
        for level in range(WALK_LEVELS - 1):
            index = indices[level]
            child = node.children.get(index)
            if child is None:
                child = _TableNode(ppn=self._allocate_table_frame())
                node.children[index] = child
            node = child
        leaf_index = indices[WALK_LEVELS - 1]
        ppn = node.leaf_entries.get(leaf_index)
        if ppn is None:
            ppn = self._allocate_data_frame(vpn)
            node.leaf_entries[leaf_index] = ppn
            self._mapped_pages += 1
        self._vpn_cache[vpn] = ppn
        return ppn

    def translate(self, vpn: int) -> Optional[int]:
        """Return the PPN for *vpn*, or None if not mapped."""
        ppn = self._vpn_cache.get(vpn)
        if ppn is not None:
            return ppn
        indices = _level_indices(vpn)
        node = self.root
        for level in range(WALK_LEVELS - 1):
            node = node.children.get(indices[level])
            if node is None:
                return None
        ppn = node.leaf_entries.get(indices[WALK_LEVELS - 1])
        if ppn is not None:
            self._vpn_cache[vpn] = ppn
        return ppn

    # -- walk support ----------------------------------------------------------
    def entry_addresses(self, vpn: int) -> List[int]:
        """Physical byte addresses of the PGD/PUD/PMD/PTE entries for *vpn*.

        The VPN must already be mapped.  Index ``i`` of the result is the
        address the walker reads at level ``i`` (0 = PGD, 3 = PTE).
        """
        indices = _level_indices(vpn)
        addresses: List[int] = []
        node = self.root
        for level in range(WALK_LEVELS - 1):
            addresses.append(node.entry_address(indices[level]))
            node = node.children[indices[level]]
        addresses.append(node.entry_address(indices[WALK_LEVELS - 1]))
        return addresses

    def pte_entry_address(self, vpn: int) -> int:
        """Physical byte address of the leaf PTE entry for a mapped *vpn*."""
        return self.entry_addresses(vpn)[WALK_LEVELS - 1]

    def table_pages(self) -> List[int]:
        """Return the PPNs of every table node (for accounting/tests)."""
        pages: List[int] = []

        def visit(node: _TableNode) -> None:
            pages.append(node.ppn)
            for child in node.children.values():
                visit(child)

        visit(self.root)
        return pages

    def data_frames(self) -> List[int]:
        """Return the PPNs of every mapped data page (for the sanitizer)."""
        frames: List[int] = []

        def visit(node: _TableNode) -> None:
            frames.extend(node.leaf_entries.values())
            for child in node.children.values():
                visit(child)

        visit(self.root)
        return frames
