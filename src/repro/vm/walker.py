"""The hardware page walker and its page-walk caches (Section II-C).

A walk steps through the PGD/PUD/PMD/PTE entries of the owning process's
page table.  Upper-level entries can hit in the per-core page-walk cache
(PWC); every entry that has to be fetched first probes the data caches
(L2/L3 — never L1) and, on an LLC miss, goes to main memory.

PageSeer's hook lives here: the instant the walk knows the physical line
holding the needed PTE — i.e. when it *reaches the fourth level* — the MMU
fires a signal to the Hybrid Memory Controller (Section III-B).  The signal
fires on every walk, before the PTE's own cache lookup, exactly as in the
paper.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, List, Optional, Tuple

from repro.common.addr import LEVEL_BITS, WALK_LEVELS, line_of
from repro.common.stats import StatsRegistry
from repro.cache.hierarchy import CacheHierarchy
from repro.vm.page_table import PageTable

#: PWC-covered levels: PGD, PUD, PMD entry contents (never the PTE).
_PWC_LEVELS = WALK_LEVELS - 1

#: Literal stats-key table per PWC hit level (auditable by the RL002 rule).
_PWC_HIT_KEYS = (
    "walk/pwc_hits_level0",
    "walk/pwc_hits_level1",
    "walk/pwc_hits_level2",
)


class WalkResult:
    """Outcome of one page walk (a ``__slots__`` class; built per walk)."""

    __slots__ = (
        "ppn",
        "finish",
        "latency",
        "pte_line_spa",
        "levels_fetched",
        "pte_reached_memory",
    )

    def __init__(
        self,
        ppn: int,
        finish: int,
        latency: int,
        pte_line_spa: int,
        levels_fetched: int,
        pte_reached_memory: bool,
    ):
        self.ppn = ppn
        self.finish = finish
        self.latency = latency
        self.pte_line_spa = pte_line_spa
        #: Levels actually fetched through the cache hierarchy (1..4).
        self.levels_fetched = levels_fetched
        #: True if the PTE fetch missed in L2 and L3 and reached the HMC.
        self.pte_reached_memory = pte_reached_memory

    def __repr__(self) -> str:
        return (
            f"WalkResult(ppn={self.ppn}, finish={self.finish}, "
            f"latency={self.latency}, pte_line_spa={self.pte_line_spa}, "
            f"levels_fetched={self.levels_fetched}, "
            f"pte_reached_memory={self.pte_reached_memory})"
        )


class PageWalkCache:
    """Per-core translation caches for the three upper levels.

    Level ``i`` (0=PGD, 1=PUD, 2=PMD) caches the *content* of that level's
    entry, keyed by the VPN prefix the entry covers.  A hit at level ``i``
    means the walk can start fetching at level ``i + 1``.
    """

    def __init__(self, entries_per_level: int):
        self.entries_per_level = entries_per_level
        self._levels: List["OrderedDict[Tuple[int, int], None]"] = [
            OrderedDict() for _ in range(_PWC_LEVELS)
        ]

    @staticmethod
    def _prefix(vpn: int, level: int) -> int:
        """VPN prefix covered by a level-*level* entry.

        A PGD entry (level 0) covers a 512 GB region (``vpn >> 27``), a PUD
        entry 1 GB (``vpn >> 18``), a PMD entry 2 MB (``vpn >> 9``).
        """
        return vpn >> (LEVEL_BITS * (WALK_LEVELS - 1 - level))

    def deepest_hit(self, pid: int, vpn: int) -> int:
        """Return the deepest cached level (or -1), updating LRU on the hit."""
        for level in range(_PWC_LEVELS - 1, -1, -1):
            key = (pid, self._prefix(vpn, level))
            entries = self._levels[level]
            if key in entries:
                entries.move_to_end(key)
                return level
        return -1

    def fill(self, pid: int, vpn: int, level: int) -> None:
        """Cache the level-*level* entry covering *vpn*."""
        entries = self._levels[level]
        key = (pid, self._prefix(vpn, level))
        if key not in entries and len(entries) >= self.entries_per_level:
            entries.popitem(last=False)
        entries[key] = None
        entries.move_to_end(key)

    def flush(self) -> None:
        for entries in self._levels:
            entries.clear()


class PageWalker:
    """One core's page walker.

    Parameters
    ----------
    core_id:
        Which core's private caches the walker uses.
    hierarchy:
        The data-cache hierarchy (walk entries are cacheable in L2/L3).
    memory_fetch:
        ``(now, line_spa, is_write, is_pte, target_ppn, pid) -> finish`` — sends
        an LLC miss for a page-table line (or a dirty write-back displaced
        by one) to the memory controller.  ``target_ppn`` carries the
        translation result for PTE fetches (the controller would read it
        out of the returned line; passing it avoids simulating memory
        contents).
    mmu_hint:
        Optional ``(now, pte_line_spa, pid, vpn, target_ppn)`` — PageSeer's
        MMU-to-HMC signal; None for baseline systems.
    """

    def __init__(
        self,
        core_id: int,
        hierarchy: CacheHierarchy,
        pwc: PageWalkCache,
        pwc_latency_cycles: int,
        stats: StatsRegistry,
        memory_fetch: Callable[[int, int, bool, bool, Optional[int], int], int],
        mmu_hint: Optional[Callable[[int, int, int, int, int], None]] = None,
    ):
        self.core_id = core_id
        self.hierarchy = hierarchy
        self.pwc = pwc
        self.pwc_latency_cycles = pwc_latency_cycles
        self.stats = stats
        self._memory_fetch = memory_fetch
        self._mmu_hint = mmu_hint
        # Hot-path stats handles, resolved once per walker.
        self._count_pwc_hits = tuple(
            stats.counter(_PWC_HIT_KEYS[level]) for level in range(_PWC_LEVELS)
        )
        self._count_walks = stats.counter("walk/walks")
        self._count_pte_requests = stats.counter("walk/pte_requests")
        self._count_pte_llc_misses = stats.counter("walk/pte_llc_misses")
        self._observe_latency = stats.observer("walk/latency")

    # repro-hot
    def walk(self, now: int, page_table: PageTable, vpn: int) -> WalkResult:
        """Perform a full walk for a *mapped* VPN; returns timing and PPN."""
        pid = page_table.pid
        entry_addresses = page_table.entry_addresses(vpn)
        target_ppn = page_table.translate(vpn)
        assert target_ppn is not None, "walk requires a mapped VPN"
        pte_line_spa = line_of(entry_addresses[WALK_LEVELS - 1])

        time = now + self.pwc_latency_cycles
        start_level = self.pwc.deepest_hit(pid, vpn) + 1
        if start_level > 0:
            self._count_pwc_hits[start_level - 1]()

        pte_reached_memory = False
        levels_fetched = 0
        for level in range(start_level, WALK_LEVELS):
            is_pte = level == WALK_LEVELS - 1
            if is_pte and self._mmu_hint is not None:
                # The fourth level's line address is now known: signal the HMC
                # before the cache lookup for the PTE (Section III-B).
                self._mmu_hint(time, pte_line_spa, pid, vpn, target_ppn)
            line = line_of(entry_addresses[level])
            outcome = self.hierarchy.access(
                self.core_id, line, is_write=False, cacheable_l1=False
            )
            time += outcome.latency_cycles
            if outcome.llc_miss:
                if is_pte:
                    pte_reached_memory = True
                    self._count_pte_llc_misses()
                time = self._memory_fetch(
                    time, line, False, is_pte, target_ppn if is_pte else None, pid
                )
            for dirty_line in outcome.writebacks:
                self._memory_fetch(time, dirty_line, True, False, None, pid)
            levels_fetched += 1
            if not is_pte:
                self.pwc.fill(pid, vpn, level)

        self._count_walks()
        self._count_pte_requests()
        self._observe_latency(time - now)
        return WalkResult(
            ppn=target_ppn,
            finish=time,
            latency=time - now,
            pte_line_spa=pte_line_spa,
            levels_fetched=levels_fetched,
            pte_reached_memory=pte_reached_memory,
        )
