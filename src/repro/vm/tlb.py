"""Set-associative TLBs (Table I: 64-entry L1, 1024-entry L2)."""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.common.config import TlbConfig


class Tlb:
    """One TLB level, keyed by ``(pid, vpn)`` with true LRU per set."""

    def __init__(self, config: TlbConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        self._sets: List["OrderedDict[Tuple[int, int], int]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def _set_index(self, vpn: int) -> int:
        return vpn % self.num_sets

    def lookup(self, pid: int, vpn: int) -> Optional[int]:
        """Return the cached PPN for (pid, vpn), updating LRU; None on miss."""
        entries = self._sets[self._set_index(vpn)]
        key = (pid, vpn)
        ppn = entries.get(key)
        if ppn is not None:
            entries.move_to_end(key)
        return ppn

    def fill(self, pid: int, vpn: int, ppn: int) -> Optional[Tuple[int, int]]:
        """Install a translation; returns the evicted (pid, vpn), if any."""
        entries = self._sets[self._set_index(vpn)]
        key = (pid, vpn)
        victim: Optional[Tuple[int, int]] = None
        if key not in entries and len(entries) >= self.ways:
            victim, _ = entries.popitem(last=False)
        entries[key] = ppn
        entries.move_to_end(key)
        return victim

    def invalidate(self, pid: int, vpn: int) -> bool:
        """Drop one translation (TLB shootdown granule)."""
        entries = self._sets[self._set_index(vpn)]
        return entries.pop((pid, vpn), None) is not None

    def flush(self) -> None:
        """Drop every translation."""
        for entries in self._sets:
            entries.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)
