"""Set-associative TLBs (Table I: 64-entry L1, 1024-entry L2).

Two implementations of the same contract live here:

* :class:`Tlb` — the original ``OrderedDict``-per-set model.  LRU order
  *is* the dict order (``move_to_end`` on every touch).  It is the
  reference oracle: simple enough to audit by eye, and what the
  property suite differences the SoA model against.
* :class:`SoaTlb` — the struct-of-arrays model the simulator runs.  Per
  set: a ``(pid, vpn) -> way`` index dict plus parallel per-way arrays
  (key, PPN, last-touch age).  LRU is an age array under a strictly
  increasing counter, so the least-recent way is ``argmin(age)`` — with
  no ties possible, this reproduces the ``OrderedDict`` victim choice
  exactly (``tests/property/test_soa_models.py``).  The batched engine
  reads the way index and age arrays directly in its chunk kernel; the
  shared age cell keeps engine-side and method-side touches on one
  counter.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.common.config import TlbConfig

_Key = Tuple[int, int]


class Tlb:
    """Reference TLB model: ``OrderedDict`` per set, LRU-first order."""

    def __init__(self, config: TlbConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        self._sets: List["OrderedDict[_Key, int]"] = [
            OrderedDict() for _ in range(self.num_sets)
        ]

    def _set_index(self, vpn: int) -> int:
        return vpn % self.num_sets

    def lookup(self, pid: int, vpn: int) -> Optional[int]:
        """Return the cached PPN for (pid, vpn), updating LRU; None on miss."""
        entries = self._sets[self._set_index(vpn)]
        key = (pid, vpn)
        ppn = entries.get(key)
        if ppn is not None:
            entries.move_to_end(key)
        return ppn

    def fill(self, pid: int, vpn: int, ppn: int) -> Optional[_Key]:
        """Install a translation; returns the evicted (pid, vpn), if any."""
        entries = self._sets[self._set_index(vpn)]
        key = (pid, vpn)
        victim: Optional[_Key] = None
        if key not in entries and len(entries) >= self.ways:
            victim, _ = entries.popitem(last=False)
        entries[key] = ppn
        entries.move_to_end(key)
        return victim

    def invalidate(self, pid: int, vpn: int) -> bool:
        """Drop one translation (TLB shootdown granule)."""
        entries = self._sets[self._set_index(vpn)]
        return entries.pop((pid, vpn), None) is not None

    def flush(self) -> None:
        """Drop every translation."""
        for entries in self._sets:
            entries.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(entries) for entries in self._sets)


class SoaTlb:
    """Struct-of-arrays TLB level (see module docstring).

    Behaviourally identical to :class:`Tlb`: same hits, same PPNs, same
    victim choices, same occupancy — only the layout differs.  State is
    plain dicts/lists/ints, so instances pickle inside checkpoints.
    """

    __slots__ = (
        "config", "num_sets", "ways",
        "_way_of", "_keys", "_ppns", "_ages", "_age",
    )

    def __init__(self, config: TlbConfig):
        self.config = config
        num_sets = config.num_sets
        ways = config.ways
        self.num_sets = num_sets
        self.ways = ways
        #: Per set: key -> way index (membership + placement in O(1)).
        self._way_of: List[Dict[_Key, int]] = [dict() for _ in range(num_sets)]
        #: Tag matrix: the key held by each way (None = empty way).
        self._keys: List[List[Optional[_Key]]] = [
            [None] * ways for _ in range(num_sets)
        ]
        #: Payload array: the PPN per way.
        self._ppns: List[List[int]] = [[0] * ways for _ in range(num_sets)]
        #: LRU age array: last-touch stamp per way.
        self._ages: List[List[int]] = [[0] * ways for _ in range(num_sets)]
        #: The strictly increasing touch counter, in a one-element cell so
        #: the engine's hoisted kernel and these methods share it without
        #: a flush protocol.
        self._age = [1]

    def _set_index(self, vpn: int) -> int:
        return vpn % self.num_sets

    # repro-hot
    def lookup(self, pid: int, vpn: int) -> Optional[int]:
        """Return the cached PPN for (pid, vpn), updating LRU; None on miss."""
        set_index = vpn % self.num_sets
        way = self._way_of[set_index].get((pid, vpn))
        if way is None:
            return None
        age = self._age
        self._ages[set_index][way] = age[0]
        age[0] += 1
        return self._ppns[set_index][way]

    # repro-hot
    def fill(self, pid: int, vpn: int, ppn: int) -> Optional[_Key]:
        """Install a translation; returns the evicted (pid, vpn), if any."""
        set_index = vpn % self.num_sets
        ways = self._way_of[set_index]
        key = (pid, vpn)
        ages = self._ages[set_index]
        age = self._age
        way = ways.get(key)
        if way is not None:
            self._ppns[set_index][way] = ppn
            ages[way] = age[0]
            age[0] += 1
            return None
        keys = self._keys[set_index]
        victim: Optional[_Key] = None
        if len(ways) >= self.ways:
            # Ages are unique (strictly increasing counter), so the LRU
            # way is index-of-min — two C passes over a small int list.
            way = ages.index(min(ages))
            victim = keys[way]
            del ways[victim]
        else:
            way = keys.index(None)
        ways[key] = way
        keys[way] = key
        self._ppns[set_index][way] = ppn
        ages[way] = age[0]
        age[0] += 1
        return victim

    def invalidate(self, pid: int, vpn: int) -> bool:
        """Drop one translation (TLB shootdown granule)."""
        set_index = vpn % self.num_sets
        way = self._way_of[set_index].pop((pid, vpn), None)
        if way is None:
            return False
        self._keys[set_index][way] = None
        return True

    def flush(self) -> None:
        """Drop every translation."""
        for set_index in range(self.num_sets):
            self._way_of[set_index].clear()
            keys = self._keys[set_index]
            for way in range(self.ways):
                keys[way] = None

    @property
    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._way_of)
