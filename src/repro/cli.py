"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``             simulate one (scheme, workload) pair and print metrics
                      (``--checkpoint-every``/``--resume``: crash-safe runs)
* ``sweep``           supervised parallel sweep with watchdog + resume
                      (``--distributed``: server + worker fleet, see
                      docs/SWEEP_SERVICE.md)
* ``sweepd``          the distributed sweep service itself
                      (``serve``/``work``/``submit``/``status``)
* ``report``          regenerate every table/figure (cached)
* ``energy``          run PageSeer and print the Table II energy report
* ``golden``          verify (or ``--update``) the golden regression matrix
* ``bench``           throughput benchmark grid (see docs/PERFORMANCE.md)
* ``lint``            static correctness linter (see docs/LINTING.md)
* ``fsck``            verify/repair checkpoints, manifests, caches, and
                      journals (see docs/FAULTS.md)
* ``trace-record``    dump one core's access stream to a trace file
* ``trace-run``       simulate a scheme over recorded trace files
* ``list-workloads``  the 26 Table III workloads
* ``list-schemes``    available memory-controller schemes
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.common.config import CHECK_LEVELS, ENGINES, CheckConfig, FaultConfig
from repro.common.errors import (
    CheckpointError,
    CheckpointInterrupt,
    ManifestVersionError,
)
from repro.snapshot.signals import EXIT_CHECKPOINTED
from repro.experiments import ExperimentRunner
from repro.experiments.runner import VARIANTS
from repro.faults import FAULT_PROFILES, resolve_profile
from repro.sim.system import SCHEMES, build_system
from repro.workloads import all_workloads, workload_by_name


def _add_sizing_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=int, default=512,
                        help="system down-scaling factor (1 = paper size)")
    parser.add_argument("--measure-ops", type=int, default=8000,
                        help="measured memory operations per core")
    parser.add_argument("--warmup-ops", type=int, default=12000,
                        help="warm-up memory operations per core")
    parser.add_argument("--seed", type=int, default=0)


def _add_check_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--check", action="store_true",
                        help="run the simulation sanitizer at level 'full' "
                             "(invariant sweeps + shadow reference model)")
    parser.add_argument("--check-level", choices=CHECK_LEVELS, default=None,
                        help="explicit sanitizer level (overrides --check)")
    parser.add_argument("--check-interval", type=int, default=256,
                        help="accesses between invariant sweeps")


def _resolve_check(args: argparse.Namespace) -> Optional[CheckConfig]:
    """Turn ``--check`` / ``--check-level`` into a CheckConfig (or None)."""
    level = args.check_level
    if level is None:
        level = "full" if args.check else None
    if level is None:
        return None
    return CheckConfig(level=level, interval_ops=args.check_interval)


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--faults", choices=sorted(FAULT_PROFILES), default="off",
                        help="fault-injection profile (see docs/FAULTS.md)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the deterministic fault RNG streams")


def _resolve_faults(args: argparse.Namespace) -> Optional[FaultConfig]:
    """Turn ``--faults`` / ``--fault-seed`` into a FaultConfig (or None)."""
    return resolve_profile(args.faults, fault_seed=args.fault_seed)


def _add_storage_fault_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.faults.storage import STORAGE_PROFILES

    parser.add_argument("--storage-faults", choices=sorted(STORAGE_PROFILES),
                        default=None, metavar="PROFILE",
                        help="storage-fault injection profile applied to every "
                             "repro.persist write — one of "
                             f"{', '.join(sorted(STORAGE_PROFILES))} (see "
                             "docs/FAULTS.md; default: the "
                             "REPRO_STORAGE_FAULTS environment variable)")
    parser.add_argument("--storage-seed", type=int, default=0,
                        help="seed for the deterministic storage-fault RNG")


def _arm_storage_faults(args: argparse.Namespace) -> None:
    """Publish ``--storage-faults`` via the environment before any write.

    Arming goes through ``REPRO_STORAGE_FAULTS`` rather than a direct
    injector install so forked sweep workers and fleet processes inherit
    the exact same configuration.  ``--storage-faults off`` explicitly
    disarms an inherited environment variable; leaving the flag unset
    leaves the environment (and thus any ambient arming) alone.
    """
    profile = getattr(args, "storage_faults", None)
    if profile is None:
        return
    import os

    from repro import persist
    from repro.faults.storage import (
        STORAGE_FAULTS_ENV,
        config_to_env,
        resolve_storage_profile,
    )

    config = resolve_storage_profile(profile, storage_seed=args.storage_seed)
    if config is None:
        os.environ.pop(STORAGE_FAULTS_ENV, None)
    else:
        os.environ[STORAGE_FAULTS_ENV] = config_to_env(config, profile)
    persist.reset_storage_faults()


def _add_chaos_arguments(parser: argparse.ArgumentParser) -> None:
    """Deterministic chaos knobs for the distributed sweep service."""
    parser.add_argument("--chaos-seed", type=int, default=0,
                        help="seed for the protocol chaos RNG streams")
    parser.add_argument("--chaos-drop", type=float, default=0.0, metavar="RATE",
                        help="probability a protocol frame is dropped")
    parser.add_argument("--chaos-duplicate", type=float, default=0.0,
                        metavar="RATE",
                        help="probability a protocol frame is duplicated")
    parser.add_argument("--chaos-reorder", type=float, default=0.0,
                        metavar="RATE",
                        help="probability adjacent frames swap order")
    parser.add_argument("--chaos-stall", type=float, default=0.0,
                        metavar="RATE",
                        help="probability a message batch stalls the server")
    parser.add_argument("--chaos-stall-seconds", type=float, default=0.0)
    parser.add_argument("--chaos-kill-worker", action="append", default=None,
                        metavar="SLOT:STEPS",
                        help="SIGKILL worker SLOT once it heartbeats past "
                             "STEPS simulated ops (repeatable; "
                             "--distributed only)")
    parser.add_argument("--chaos-restart-server-after", type=int, default=None,
                        metavar="N",
                        help="SIGKILL + relaunch the server after N results "
                             "(--distributed only)")


def _add_checkpoint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint-every", type=int, default=0, metavar="OPS",
                        help="write a rolling checkpoint every N executed ops "
                             "(0 = off); SIGINT/SIGTERM then also write one "
                             "final checkpoint before exiting with code "
                             f"{EXIT_CHECKPOINTED}")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="directory for checkpoint files (default: "
                             "checkpoints/<scheme>_<workload>_<variant>)")
    parser.add_argument("--resume", default=None, metavar="FILE",
                        help="restore a checkpoint file and finish its run "
                             "(--scheme/--workload/sizing come from the file)")


def _command_run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.snapshot import (
        Checkpointer,
        SignalGuard,
        load_checkpoint,
        read_checkpoint_header,
    )

    try:
        if args.resume is not None:
            header = read_checkpoint_header(args.resume)
            for flag, value in (("scheme", args.scheme),
                                ("workload", args.workload)):
                if value is not None and value != header[flag]:
                    print(f"error: --resume file holds a {header['scheme']}/"
                          f"{header['workload']} run; --{flag} {value} "
                          f"contradicts it (drop the flag or pick the "
                          f"matching checkpoint)", file=sys.stderr)
                    return 2
            system = load_checkpoint(args.resume)
            print(f"resuming {header['scheme']} on {header['workload']} from "
                  f"{args.resume} (phase {header['phase']}, "
                  f"{header['steps_total']} ops done)")
            checkpoint_dir = Path(args.checkpoint_dir
                                  or Path(args.resume).parent)
        else:
            if args.scheme is None or args.workload is None:
                print("error: --scheme and --workload are required unless "
                      "--resume is given", file=sys.stderr)
                return 2
            system = build_system(
                args.scheme,
                workload_by_name(args.workload),
                scale=args.scale,
                seed=args.seed,
                config_mutator=VARIANTS[args.variant],
                check=_resolve_check(args),
                faults=_resolve_faults(args),
                engine=args.engine,
            )
            checkpoint_dir = Path(
                args.checkpoint_dir
                or Path("checkpoints")
                / f"{args.scheme}_{args.workload}_{args.variant}"
            )

        with SignalGuard() as guard:
            if args.checkpoint_every > 0 or args.resume is not None:
                Checkpointer(
                    checkpoint_dir,
                    every_ops=args.checkpoint_every,
                    signals=guard,
                ).arm(system)
            if args.resume is not None:
                metrics = system.resume_run()
            else:
                metrics = system.run(args.measure_ops, args.warmup_ops)
    except CheckpointInterrupt as interrupt:
        print(f"\ninterrupted by signal {interrupt.signum}; checkpoint written "
              f"to {interrupt.path}", file=sys.stderr)
        print(f"resume with: python -m repro run --resume {interrupt.path}",
              file=sys.stderr)
        return EXIT_CHECKPOINTED
    except CheckpointError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    _print_run_summary(system, metrics)
    return 0


def _print_run_summary(system, metrics) -> None:
    workload = system.workload
    print(f"{system.scheme} on {workload.name} "
          f"({workload.cores} cores, scale 1/{system.scale})")
    print(f"  ipc                 {metrics.ipc:.4f}")
    print(f"  ammat               {metrics.ammat:.1f} cycles")
    print(f"  dram/nvm/buffer     {metrics.dram_share:.1%} / "
          f"{metrics.nvm_share:.1%} / {metrics.buffer_share:.1%}")
    print(f"  pos/neg/neutral     {metrics.positive_share:.1%} / "
          f"{metrics.negative_share:.1%} / {metrics.neutral_share:.1%}")
    print(f"  swaps (mmu/pct/reg) {metrics.swaps_total} "
          f"({metrics.swaps_mmu}/{metrics.swaps_pct}/{metrics.swaps_regular})")
    print(f"  swaps per k-instr   {metrics.swaps_per_kilo_instruction:.3f}")
    if metrics.prefetch_swaps:
        print(f"  prefetch accuracy   {metrics.prefetch_accuracy:.1%}")
    if system.checker is not None:
        report = system.checker.report()
        print(f"  sanitizer           level={report.level} "
              f"sweeps={report.sweeps} "
              f"shadow-checks={report.shadow_accesses_checked} "
              f"violations={len(report.violations)}")
    if system.config.faults.enabled:
        print(f"  faults              injected={metrics.faults_injected} "
              f"retries={metrics.fault_retries} "
              f"swap-aborts={metrics.swap_aborts} "
              f"quarantined={metrics.quarantined_pages} "
              f"degraded={metrics.degraded_services}")


#: Exit code for a manifest written by an incompatible build (satellite
#: of docs/SWEEP_SERVICE.md's failure model): distinguishable from the
#: generic checkpoint-error exit so wrappers can react differently.
EXIT_MANIFEST_VERSION = 4


def _results_digest(results) -> str:
    """Order-independent digest of a sweep's aggregated result set.

    The same digest is printed by the serial, supervised, and distributed
    sweep paths, so CI can gate on bit-identical aggregation across them.
    """
    import hashlib
    import json

    from repro.experiments.runner import _METRIC_FIELDS

    payload = {
        "/".join(request): {
            name: getattr(metrics, name) for name in _METRIC_FIELDS
        }
        for request, metrics in results.items()
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def _sweep_requests(args: argparse.Namespace):
    workloads = args.workloads or [spec.name for spec in all_workloads()]
    return [
        (scheme, workload, variant)
        for scheme in args.schemes
        for workload in workloads
        for variant in args.variants
    ]


def _fleet_chaos_from_args(args: argparse.Namespace):
    from repro.faults.chaos import FleetChaos

    kills = {}
    for spec in args.chaos_kill_worker or []:
        slot, sep, steps = spec.partition(":")
        if not sep or not slot.isdigit() or not steps.isdigit():
            raise SystemExit(
                f"error: --chaos-kill-worker expects SLOT:STEPS, got {spec!r}"
            )
        kills[int(slot)] = int(steps)
    return FleetChaos(
        kill_worker_mid_job=kills,
        restart_server_after_results=args.chaos_restart_server_after,
    )


def _message_chaos_from_args(args: argparse.Namespace):
    from repro.faults.chaos import ChaosConfig

    chaos = ChaosConfig(
        enabled=True,
        chaos_seed=args.chaos_seed,
        drop_rate=args.chaos_drop,
        duplicate_rate=args.chaos_duplicate,
        reorder_rate=args.chaos_reorder,
        stall_rate=args.chaos_stall,
        stall_seconds=args.chaos_stall_seconds,
    )
    return chaos if chaos.active else None


def _command_sweep(args: argparse.Namespace) -> int:
    from repro.common.errors import SweepError
    from repro.experiments.supervisor import SweepSupervisor

    runner = ExperimentRunner(
        scale=args.scale,
        measure_ops=args.measure_ops,
        warmup_ops=args.warmup_ops,
        seed=args.seed,
        verbose=not args.quiet,
        faults=_resolve_faults(args),
        max_attempts=args.max_attempts,
    )
    if args.distributed:
        return _sweep_distributed(args, runner)
    supervisor = SweepSupervisor(
        runner,
        args.checkpoint_root,
        checkpoint_every=args.checkpoint_every,
        heartbeat_seconds=args.heartbeat_seconds,
        stall_timeout=args.stall_timeout,
    )
    try:
        if args.resume:
            results = supervisor.resume(jobs=args.jobs)
        else:
            results = supervisor.run(_sweep_requests(args), jobs=args.jobs)
    except ManifestVersionError as error:
        print(f"error: {error}", file=sys.stderr)
        if error.hint:
            print(f"hint: {error.hint}", file=sys.stderr)
        return EXIT_MANIFEST_VERSION
    except CheckpointError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except SweepError as error:
        print(f"sweep incomplete: {error}", file=sys.stderr)
        print(f"resume with: python -m repro sweep --resume "
              f"--checkpoint-root {args.checkpoint_root}", file=sys.stderr)
        return 1
    print(f"sweep complete: {len(results)} result(s) "
          f"(workers killed by watchdog: {supervisor.kills}, "
          f"resumed from checkpoint: {sum(supervisor.resumes.values())})")
    print(f"results digest: {_results_digest(results)}")
    return 0


def _sweep_distributed(args: argparse.Namespace, runner) -> int:
    from repro.common.errors import SweepdError, SweepError
    from repro.sweepd.fleet import run_distributed_sweep

    try:
        results, report = run_distributed_sweep(
            runner,
            _sweep_requests(args),
            args.checkpoint_root,
            workers=args.workers,
            chaos=_message_chaos_from_args(args),
            fleet_chaos=_fleet_chaos_from_args(args),
            lease_seconds=args.lease_seconds,
            checkpoint_every=args.checkpoint_every,
            heartbeat_seconds=args.heartbeat_seconds,
        )
    except ManifestVersionError as error:
        print(f"error: {error}", file=sys.stderr)
        if error.hint:
            print(f"hint: {error.hint}", file=sys.stderr)
        return EXIT_MANIFEST_VERSION
    except SweepdError as error:
        print(f"sweep service error: {error}", file=sys.stderr)
        return 1
    except SweepError as error:
        print(f"sweep incomplete: {error}", file=sys.stderr)
        return 1
    print(f"distributed sweep complete: {len(results)} result(s) "
          f"(workers: {args.workers}, relaunches: {report.worker_relaunches}, "
          f"lease reclaims: {report.reclaims}, "
          f"chaos kills: {report.chaos_worker_kills}, "
          f"server restarts: {report.chaos_server_restarts})")
    print(f"results digest: {_results_digest(results)}")
    return 0


def _command_sweepd(args: argparse.Namespace) -> int:
    from repro.common.errors import SweepdError

    try:
        return args.sweepd_handler(args)
    except ManifestVersionError as error:
        print(f"error: {error}", file=sys.stderr)
        if error.hint:
            print(f"hint: {error.hint}", file=sys.stderr)
        return EXIT_MANIFEST_VERSION
    except SweepdError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _sweepd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.sweepd.server import SweepdServer

    cache_dir = Path(args.cache_dir) if args.cache_dir else None
    if cache_dir is None:
        cache_dir = ExperimentRunner().cache_dir
    server = SweepdServer(
        args.root, cache_dir,
        address=args.address,
        max_attempts=args.max_attempts,
        lease_seconds=args.lease_seconds,
        chaos=_message_chaos_from_args(args),
    )
    print(f"sweepd serving on {server.address} (root {args.root})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.close()
    return 0


def _sweepd_work(args: argparse.Namespace) -> int:
    import os
    from pathlib import Path

    from repro.sweepd.fleet import JOBS_DIRNAME
    from repro.sweepd.protocol import read_address_file
    from repro.sweepd.worker import SweepdWorker

    address = args.address or read_address_file(args.root)
    name = args.name or f"w{os.getpid()}"
    worker = SweepdWorker(
        name, address, Path(args.root) / JOBS_DIRNAME,
        checkpoint_every=args.checkpoint_every,
        heartbeat_seconds=args.heartbeat_seconds,
    )
    completed = worker.run()
    print(f"worker {name} drained after {completed} job(s)")
    return 0


def _sweepd_submit(args: argparse.Namespace) -> int:
    from repro.sweepd.jobs import build_job
    from repro.sweepd.protocol import RpcClient, read_address_file

    runner = ExperimentRunner(
        scale=args.scale,
        measure_ops=args.measure_ops,
        warmup_ops=args.warmup_ops,
        seed=args.seed,
        faults=_resolve_faults(args),
        worker_check_level=args.worker_check_level,
    )
    records = [
        build_job(request, runner._sizing(), runner.faults)
        for request in _sweep_requests(args)
    ]
    address = args.address or read_address_file(args.root)
    with RpcClient(address) as rpc:
        reply = rpc.call({
            "type": "submit",
            "priority": args.priority,
            "jobs": [record.to_json() for record in records],
        })
    if reply.get("type") == "error":
        print(f"error: {reply.get('error')}", file=sys.stderr)
        return 1
    print(f"submitted {len(records)} job(s) on the {args.priority} lane: "
          f"{len(reply.get('new', []))} new, "
          f"{len(reply.get('known', []))} already queued, "
          f"{len(reply.get('already_done', []))} already cached")
    return 0


def _sweepd_status(args: argparse.Namespace) -> int:
    from repro.sweepd.protocol import RpcClient, read_address_file

    address = args.address or read_address_file(args.root)
    with RpcClient(address) as rpc:
        status = rpc.call({"type": "status"})
    counts = status.get("counts", {})
    print(f"sweepd at {status.get('address')}: "
          f"{counts.get('pending', 0)} pending, "
          f"{counts.get('leased', 0)} leased, "
          f"{counts.get('done', 0)} done, "
          f"{counts.get('quarantined', 0)} quarantined "
          f"(lease reclaims: {status.get('reclaims', 0)})")
    eta = status.get("eta_seconds")
    if eta is not None:
        print(f"estimated time remaining: {eta:.1f}s")
    if args.verbose:
        for job in status.get("jobs", []):
            request = "/".join(job.get("request", []))
            line = (f"  {job.get('job_id')} {request:40s} "
                    f"{job.get('state'):11s} attempts={job.get('attempts')}")
            if job.get("worker"):
                line += f" worker={job.get('worker')}"
            print(line)
            for error in job.get("errors", []):
                print(f"      {error}")
    return 0 if not counts.get("quarantined") else 1


def _command_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    workloads = args.workloads if args.workloads else None
    runner = ExperimentRunner(
        scale=args.scale,
        measure_ops=args.measure_ops,
        warmup_ops=args.warmup_ops,
        seed=args.seed,
        workloads=workloads,
        verbose=True,
    )
    report = generate_report(runner)
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
    return 0


def _command_energy(args: argparse.Namespace) -> int:
    from repro.core.energy import energy_report

    workload = workload_by_name(args.workload)
    system = build_system("pageseer", workload, scale=args.scale, seed=args.seed)
    system.run(args.measure_ops, args.warmup_ops)
    elapsed = max(core.clock for core in system.cores)
    print(energy_report(system.hmc, elapsed).render())
    return 0


def _command_trace_record(args: argparse.Namespace) -> int:
    from repro.workloads.trace import record_trace

    workload = workload_by_name(args.workload)
    count = record_trace(
        workload, args.core, args.count, args.out,
        seed=args.seed, scale=args.scale,
    )
    print(f"recorded {count} ops of {workload.name} core {args.core} "
          f"to {args.out}")
    return 0


def _command_golden(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.check.golden import (
        default_golden_dir,
        update_goldens,
        verify_goldens,
    )

    directory = Path(args.dir) if args.dir else default_golden_dir()
    if args.update:
        written = update_goldens(directory, verbose=True)
        print(f"wrote {len(written)} golden file(s) to {directory}")
        return 0
    problems = verify_goldens(directory, verbose=True)
    if problems:
        print(f"{len(problems)} golden mismatch(es):")
        for triple, messages in sorted(problems.items()):
            print(f"  {'/'.join(triple)}:")
            for message in messages:
                print(f"    {message}")
        return 1
    print("all goldens match")
    return 0


def _command_trace_run(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.common.config import default_system_config
    from repro.sim.system import System
    from repro.workloads.trace import trace_workload

    spec = trace_workload("trace", args.traces)
    config = default_system_config(
        scale=args.scale, cores=spec.cores, seed=args.seed
    )
    check = _resolve_check(args)
    if check is not None:
        config = dataclasses.replace(config, check=check)
    faults = _resolve_faults(args)
    if faults is not None:
        config = dataclasses.replace(config, faults=faults)
    system = System(config, args.scheme, spec, args.scale)
    metrics = system.run(args.measure_ops, args.warmup_ops)
    print(f"{args.scheme} over {spec.cores} trace(s)")
    print(f"  ipc    {metrics.ipc:.4f}")
    print(f"  ammat  {metrics.ammat:.1f} cycles")
    print(f"  dram/nvm/buffer {metrics.dram_share:.1%} / "
          f"{metrics.nvm_share:.1%} / {metrics.buffer_share:.1%}")
    print(f"  swaps  {metrics.swaps_total}")
    return 0


def _command_list_workloads(args: argparse.Namespace) -> int:
    for spec in all_workloads():
        members = "+".join(sorted({p.benchmark for p in spec.parts}))
        print(f"{spec.name:14s} suite={spec.suite:8s} cores={spec.cores:2d} "
              f"({members})")
    return 0


def _command_list_schemes(args: argparse.Namespace) -> int:
    for name in sorted(SCHEMES):
        print(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser("run", help="simulate one scheme/workload")
    run_parser.add_argument("--scheme", default=None, choices=sorted(SCHEMES))
    run_parser.add_argument("--workload", default=None)
    run_parser.add_argument("--variant", default="default",
                            choices=sorted(VARIANTS))
    run_parser.add_argument("--engine", default=None, choices=list(ENGINES),
                            help="simulation-loop engine (default: config "
                                 "default, 'batched'); both engines are "
                                 "bit-identical — 'scalar' is the reference "
                                 "fallback")
    _add_sizing_arguments(run_parser)
    _add_check_arguments(run_parser)
    _add_fault_arguments(run_parser)
    _add_storage_fault_arguments(run_parser)
    _add_checkpoint_arguments(run_parser)
    run_parser.set_defaults(handler=_command_run)

    sweep_parser = commands.add_parser(
        "sweep", help="supervised parallel sweep with checkpoint/resume"
    )
    sweep_parser.add_argument("--schemes", nargs="+",
                              default=["pageseer", "pom", "mempod"],
                              choices=sorted(SCHEMES))
    sweep_parser.add_argument("--workloads", nargs="*", default=None,
                              help="workload names (default: all 26)")
    sweep_parser.add_argument("--variants", nargs="+", default=["default"],
                              choices=sorted(VARIANTS))
    sweep_parser.add_argument("--jobs", type=int, default=None)
    sweep_parser.add_argument("--checkpoint-root", default="checkpoints/sweep",
                              help="directory for the manifest and the "
                                   "per-request checkpoint directories")
    sweep_parser.add_argument("--checkpoint-every", type=int, default=20_000,
                              metavar="OPS")
    sweep_parser.add_argument("--heartbeat-seconds", type=float, default=0.5)
    sweep_parser.add_argument("--stall-timeout", type=float, default=30.0,
                              help="seconds without a heartbeat before the "
                                   "watchdog kills and resumes a worker")
    sweep_parser.add_argument("--max-attempts", type=int, default=3)
    sweep_parser.add_argument("--resume", action="store_true",
                              help="continue the sweep recorded in "
                                   "--checkpoint-root's manifest")
    sweep_parser.add_argument("--quiet", action="store_true")
    sweep_parser.add_argument("--distributed", action="store_true",
                              help="run through the sweepd service: a local "
                                   "work-queue server plus --workers worker "
                                   "processes (docs/SWEEP_SERVICE.md)")
    sweep_parser.add_argument("--workers", type=int, default=2,
                              help="worker processes for --distributed")
    sweep_parser.add_argument("--lease-seconds", type=float, default=5.0,
                              help="job lease duration; an expired lease is "
                                   "reclaimed from its (dead or hung) worker")
    _add_chaos_arguments(sweep_parser)
    _add_sizing_arguments(sweep_parser)
    _add_fault_arguments(sweep_parser)
    _add_storage_fault_arguments(sweep_parser)
    sweep_parser.set_defaults(handler=_command_sweep)

    sweepd_parser = commands.add_parser(
        "sweepd", help="distributed sweep service (docs/SWEEP_SERVICE.md)"
    )
    sweepd_commands = sweepd_parser.add_subparsers(
        dest="sweepd_command", required=True
    )

    serve_parser = sweepd_commands.add_parser(
        "serve", help="run the work-queue server in the foreground"
    )
    serve_parser.add_argument("--root", default="checkpoints/sweepd",
                              help="service root: manifest, address file, "
                                   "per-job checkpoint directories")
    serve_parser.add_argument("--address", default=None,
                              help="unix:/path or host:port (default: a unix "
                                   "socket under --root, TCP fallback)")
    serve_parser.add_argument("--cache-dir", default=None,
                              help="result cache directory (default: the "
                                   "runner's, honouring REPRO_CACHE_DIR)")
    serve_parser.add_argument("--max-attempts", type=int, default=3)
    serve_parser.add_argument("--lease-seconds", type=float, default=15.0)
    _add_chaos_arguments(serve_parser)
    _add_storage_fault_arguments(serve_parser)
    serve_parser.set_defaults(sweepd_handler=_sweepd_serve)

    work_parser = sweepd_commands.add_parser(
        "work", help="run one worker against a server"
    )
    work_parser.add_argument("--root", default="checkpoints/sweepd")
    work_parser.add_argument("--address", default=None,
                             help="server address (default: --root's "
                                  "address file)")
    work_parser.add_argument("--name", default=None,
                             help="worker name (default: w<pid>)")
    work_parser.add_argument("--checkpoint-every", type=int, default=20_000,
                             metavar="OPS")
    work_parser.add_argument("--heartbeat-seconds", type=float, default=0.5)
    _add_storage_fault_arguments(work_parser)
    work_parser.set_defaults(sweepd_handler=_sweepd_work)

    submit_parser = sweepd_commands.add_parser(
        "submit", help="enqueue sweep jobs on a running server"
    )
    submit_parser.add_argument("--root", default="checkpoints/sweepd")
    submit_parser.add_argument("--address", default=None)
    submit_parser.add_argument("--schemes", nargs="+",
                               default=["pageseer", "pom", "mempod"],
                               choices=sorted(SCHEMES))
    submit_parser.add_argument("--workloads", nargs="*", default=None)
    submit_parser.add_argument("--variants", nargs="+", default=["default"],
                               choices=sorted(VARIANTS))
    submit_parser.add_argument("--priority", default="bulk",
                               choices=["interactive", "bulk"],
                               help="interactive jobs preempt queued bulk "
                                    "jobs at every lease decision")
    submit_parser.add_argument("--worker-check-level", default="full",
                               choices=CHECK_LEVELS)
    _add_sizing_arguments(submit_parser)
    _add_fault_arguments(submit_parser)
    submit_parser.set_defaults(sweepd_handler=_sweepd_submit)

    status_parser = sweepd_commands.add_parser(
        "status", help="query a running server"
    )
    status_parser.add_argument("--root", default="checkpoints/sweepd")
    status_parser.add_argument("--address", default=None)
    status_parser.add_argument("--verbose", action="store_true",
                               help="per-job states and error histories")
    status_parser.set_defaults(sweepd_handler=_sweepd_status)
    sweepd_parser.set_defaults(handler=_command_sweepd)

    report_parser = commands.add_parser(
        "report", help="regenerate every table and figure"
    )
    report_parser.add_argument("--workloads", nargs="*", default=None)
    report_parser.add_argument("--out", default=None)
    _add_sizing_arguments(report_parser)
    report_parser.set_defaults(handler=_command_report)

    energy_parser = commands.add_parser(
        "energy", help="Table II energy/area report for one workload"
    )
    energy_parser.add_argument("--workload", default="lbmx4")
    _add_sizing_arguments(energy_parser)
    energy_parser.set_defaults(handler=_command_energy)

    golden_parser = commands.add_parser(
        "golden", help="verify or regenerate the golden regression matrix"
    )
    golden_parser.add_argument("--update", action="store_true",
                               help="re-run the matrix and rewrite the files")
    golden_parser.add_argument("--dir", default=None,
                               help="golden directory (default: tests/golden)")
    golden_parser.set_defaults(handler=_command_golden)

    bench_parser = commands.add_parser(
        "bench", help="scheme×workload throughput benchmark"
    )
    from repro.bench import add_bench_arguments, command_bench

    add_bench_arguments(bench_parser)
    _add_storage_fault_arguments(bench_parser)
    bench_parser.set_defaults(handler=command_bench)

    fsck_parser = commands.add_parser(
        "fsck", help="verify and repair persisted state (docs/FAULTS.md)"
    )
    from repro.fsck import add_fsck_arguments, command_fsck

    add_fsck_arguments(fsck_parser)
    fsck_parser.set_defaults(handler=command_fsck)

    lint_parser = commands.add_parser(
        "lint", help="AST-based simulator correctness linter"
    )
    from repro.lint.cli import add_lint_arguments, command_lint

    add_lint_arguments(lint_parser)
    lint_parser.set_defaults(handler=command_lint)

    record_parser = commands.add_parser(
        "trace-record", help="dump one core's access stream to a file"
    )
    record_parser.add_argument("--workload", required=True)
    record_parser.add_argument("--core", type=int, default=0)
    record_parser.add_argument("--count", type=int, default=10_000)
    record_parser.add_argument("--out", required=True)
    record_parser.add_argument("--scale", type=int, default=512)
    record_parser.add_argument("--seed", type=int, default=0)
    record_parser.set_defaults(handler=_command_trace_record)

    trace_run_parser = commands.add_parser(
        "trace-run", help="simulate a scheme over recorded trace files"
    )
    trace_run_parser.add_argument("--traces", nargs="+", required=True,
                                  help="one trace file per core")
    trace_run_parser.add_argument("--scheme", default="pageseer",
                                  choices=sorted(SCHEMES))
    _add_sizing_arguments(trace_run_parser)
    _add_check_arguments(trace_run_parser)
    _add_fault_arguments(trace_run_parser)
    trace_run_parser.set_defaults(handler=_command_trace_run)

    commands.add_parser(
        "list-workloads", help="list the Table III workloads"
    ).set_defaults(handler=_command_list_workloads)
    commands.add_parser(
        "list-schemes", help="list memory-controller schemes"
    ).set_defaults(handler=_command_list_schemes)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _arm_storage_faults(args)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
