"""Hierarchical statistics counters.

Every simulator component records its activity into a shared
:class:`StatsRegistry`.  Counters are created lazily, live under
slash-separated paths (``"hmc/prtc/hits"``), and can be snapshot or diffed,
which the experiment harness uses to separate warm-up from measurement.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Mapping


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable copy of a registry's full state at one instant.

    Snapshots support exact warm-up separation: ``later.diff(earlier)``
    returns the activity that happened strictly between the two snapshots
    (counters, sums, and counts subtract exactly; maxima are not
    subtractable, so a diff carries the *later* maxima).  Diffs compose:
    ``c.diff(a) == c.diff(b).merged(b.diff(a))`` for any three snapshots
    taken in order a, b, c.
    """

    counters: Mapping[str, float] = field(default_factory=dict)
    sums: Mapping[str, float] = field(default_factory=dict)
    counts: Mapping[str, int] = field(default_factory=dict)
    maxima: Mapping[str, float] = field(default_factory=dict)

    def mean(self, name: str, default: float = 0.0) -> float:
        count = self.counts.get(name, 0)
        if count == 0:
            return default
        return self.sums.get(name, 0.0) / count

    def maximum(self, name: str, default: float = 0.0) -> float:
        return self.maxima.get(name, default)

    def get(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def diff(self, earlier: "StatsSnapshot") -> "StatsSnapshot":
        """The activity between *earlier* and this snapshot, exactly."""

        def subtract(later: Mapping, early: Mapping) -> Dict:
            out = {}
            for name, value in later.items():
                delta = value - early.get(name, 0)
                if delta != 0:
                    out[name] = delta
            return out

        return StatsSnapshot(
            counters=subtract(self.counters, earlier.counters),
            sums=subtract(self.sums, earlier.sums),
            counts=subtract(self.counts, earlier.counts),
            maxima=dict(self.maxima),
        )

    def merged(self, other: "StatsSnapshot") -> "StatsSnapshot":
        """Combine two snapshots/diffs (sums add, maxima take the max)."""

        def add(a: Mapping, b: Mapping) -> Dict:
            out = dict(a)
            for name, value in b.items():
                out[name] = out.get(name, 0) + value
            return out

        maxima = dict(self.maxima)
        for name, value in other.maxima.items():
            if name not in maxima or value > maxima[name]:
                maxima[name] = value
        return StatsSnapshot(
            counters=add(self.counters, other.counters),
            sums=add(self.sums, other.sums),
            counts=add(self.counts, other.counts),
            maxima=maxima,
        )


class StatsRegistry:
    """A flat namespace of integer/float counters and value accumulators."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)
        self._sums: Dict[str, float] = defaultdict(float)
        self._counts: Dict[str, int] = defaultdict(int)
        self._maxima: Dict[str, float] = {}

    # -- counters ---------------------------------------------------------
    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter *name* by *amount*."""
        self._counters[name] += amount

    def get(self, name: str, default: float = 0.0) -> float:
        """Return the value of counter *name* (``default`` if never touched)."""
        return self._counters.get(name, default)

    # -- bound handles (hot-path record sites) -----------------------------
    def counter(self, name: str) -> Callable[..., None]:
        """Return a bound increment callable for counter *name*.

        Hot-path components resolve their keys once at construction time
        and call the handle per event, replacing a method dispatch plus a
        string hash with one closure call.  Handles stay valid across
        :meth:`reset`: they capture the backing dict, which ``reset``
        clears in place rather than replacing.
        """
        counters = self._counters

        def increment(amount: float = 1.0) -> None:
            counters[name] += amount

        increment.counter_name = name  # type: ignore[attr-defined]
        # The owning registry, so the snapshot codec can re-bind the
        # handle after a checkpoint restore (closures do not pickle).
        increment.registry = self  # type: ignore[attr-defined]
        return increment

    def observer(self, name: str) -> Callable[[float], None]:
        """Return a bound record callable for accumulator *name*.

        The handle is the hot-path equivalent of :meth:`observe`, with the
        same reset semantics as :meth:`counter` handles.
        """
        sums = self._sums
        counts = self._counts
        maxima = self._maxima

        def observe(value: float) -> None:
            sums[name] += value
            counts[name] += 1
            previous = maxima.get(name)
            if previous is None or value > previous:
                maxima[name] = value

        observe.observer_name = name  # type: ignore[attr-defined]
        observe.registry = self  # type: ignore[attr-defined]
        return observe

    # -- value accumulators (for averages) --------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one observation of a value (for averaging)."""
        self._sums[name] += value
        self._counts[name] += 1
        previous = self._maxima.get(name)
        if previous is None or value > previous:
            self._maxima[name] = value

    def mean(self, name: str, default: float = 0.0) -> float:
        """Return the mean of all observations of *name*."""
        count = self._counts.get(name, 0)
        if count == 0:
            return default
        return self._sums[name] / count

    def total(self, name: str) -> float:
        """Return the sum of all observations of *name*."""
        return self._sums.get(name, 0.0)

    def count(self, name: str) -> int:
        """Return how many observations of *name* were recorded."""
        return self._counts.get(name, 0)

    def maximum(self, name: str, default: float = 0.0) -> float:
        """Return the largest observation of *name*."""
        return self._maxima.get(name, default)

    # -- bookkeeping -------------------------------------------------------
    def names(self) -> Iterable[str]:
        """Return all counter names touched so far."""
        seen = set(self._counters) | set(self._sums)
        return sorted(seen)

    def snapshot(self) -> Mapping[str, float]:
        """Return a copy of all plain counters."""
        return dict(self._counters)

    def snapshot_full(self) -> StatsSnapshot:
        """Return an immutable copy of the complete registry state."""
        return StatsSnapshot(
            counters=dict(self._counters),
            sums=dict(self._sums),
            counts=dict(self._counts),
            maxima=dict(self._maxima),
        )

    def since(self, earlier: StatsSnapshot) -> StatsSnapshot:
        """The activity recorded since *earlier* was taken."""
        return self.snapshot_full().diff(earlier)

    def reset(self) -> None:
        """Zero every counter and accumulator (used at end of warm-up)."""
        self._counters.clear()
        self._sums.clear()
        self._counts.clear()
        self._maxima.clear()

    def merged_with(self, other: "StatsRegistry") -> "StatsRegistry":
        """Return a new registry combining this one and *other*."""
        merged = StatsRegistry()
        for source in (self, other):
            for name, value in source._counters.items():
                merged._counters[name] += value
            for name, value in source._sums.items():
                merged._sums[name] += value
            for name, value in source._counts.items():
                merged._counts[name] += value
            for name, value in source._maxima.items():
                if name not in merged._maxima or value > merged._maxima[name]:
                    merged._maxima[name] = value
        return merged

    def as_dict(self) -> Dict[str, float]:
        """Return counters plus derived means in one flat dictionary."""
        out: Dict[str, float] = dict(self._counters)
        for name in self._sums:
            out[f"{name}/mean"] = self.mean(name)
            out[f"{name}/total"] = self.total(name)
            out[f"{name}/count"] = float(self.count(name))
        return out
