"""Hierarchical statistics counters.

Every simulator component records its activity into a shared
:class:`StatsRegistry`.  Counters are created lazily, live under
slash-separated paths (``"hmc/prtc/hits"``), and can be snapshot or diffed,
which the experiment harness uses to separate warm-up from measurement.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Mapping


class StatsRegistry:
    """A flat namespace of integer/float counters and value accumulators."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)
        self._sums: Dict[str, float] = defaultdict(float)
        self._counts: Dict[str, int] = defaultdict(int)
        self._maxima: Dict[str, float] = {}

    # -- counters ---------------------------------------------------------
    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter *name* by *amount*."""
        self._counters[name] += amount

    def get(self, name: str, default: float = 0.0) -> float:
        """Return the value of counter *name* (``default`` if never touched)."""
        return self._counters.get(name, default)

    # -- value accumulators (for averages) --------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one observation of a value (for averaging)."""
        self._sums[name] += value
        self._counts[name] += 1
        previous = self._maxima.get(name)
        if previous is None or value > previous:
            self._maxima[name] = value

    def mean(self, name: str, default: float = 0.0) -> float:
        """Return the mean of all observations of *name*."""
        count = self._counts.get(name, 0)
        if count == 0:
            return default
        return self._sums[name] / count

    def total(self, name: str) -> float:
        """Return the sum of all observations of *name*."""
        return self._sums.get(name, 0.0)

    def count(self, name: str) -> int:
        """Return how many observations of *name* were recorded."""
        return self._counts.get(name, 0)

    def maximum(self, name: str, default: float = 0.0) -> float:
        """Return the largest observation of *name*."""
        return self._maxima.get(name, default)

    # -- bookkeeping -------------------------------------------------------
    def names(self) -> Iterable[str]:
        """Return all counter names touched so far."""
        seen = set(self._counters) | set(self._sums)
        return sorted(seen)

    def snapshot(self) -> Mapping[str, float]:
        """Return a copy of all plain counters."""
        return dict(self._counters)

    def reset(self) -> None:
        """Zero every counter and accumulator (used at end of warm-up)."""
        self._counters.clear()
        self._sums.clear()
        self._counts.clear()
        self._maxima.clear()

    def merged_with(self, other: "StatsRegistry") -> "StatsRegistry":
        """Return a new registry combining this one and *other*."""
        merged = StatsRegistry()
        for source in (self, other):
            for name, value in source._counters.items():
                merged._counters[name] += value
            for name, value in source._sums.items():
                merged._sums[name] += value
            for name, value in source._counts.items():
                merged._counts[name] += value
            for name, value in source._maxima.items():
                if name not in merged._maxima or value > merged._maxima[name]:
                    merged._maxima[name] = value
        return merged

    def as_dict(self) -> Dict[str, float]:
        """Return counters plus derived means in one flat dictionary."""
        out: Dict[str, float] = dict(self._counters)
        for name in self._sums:
            out[f"{name}/mean"] = self.mean(name)
            out[f"{name}/total"] = self.total(name)
            out[f"{name}/count"] = float(self.count(name))
        return out
