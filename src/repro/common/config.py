"""Configuration dataclasses mirroring Tables I and II of the paper.

All latencies in the simulator are expressed in **CPU cycles at 2 GHz** (the
core clock of Table I).  The memory devices run at 1 GHz, so every
memory-clock parameter from Table I is multiplied by
:data:`CYCLES_PER_MEMORY_CYCLE` when it enters the timing model.

Because 2-billion-instruction full-system runs are not feasible in pure
Python, every size-like parameter can be *scaled down* coherently by an
integer ``scale`` factor (default 64): memory capacities, hardware-table
entry counts, and workload footprints all shrink by the same factor, so the
dimensionless pressures that drive the paper's results (working-set size
versus DRAM size, footprint versus remap-table reach) are preserved.
Thresholds and time-interval constants are absolute in the paper and stay
unchanged.  See DESIGN.md Section 5.
"""

from __future__ import annotations

import os

from dataclasses import dataclass, field, replace

from repro.common.addr import Bytes
from repro.common.errors import ConfigError
from repro.common.timeline import Cycles

#: CPU cycles (2 GHz) per memory cycle (1 GHz), Table I.
CYCLES_PER_MEMORY_CYCLE = 2

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class MemoryTimingConfig:
    """Timing and geometry of one memory technology (Table I, memory half).

    All ``t_*`` values are in native memory-clock cycles (1 GHz), exactly as
    printed in Table I; the device model converts to CPU cycles.
    """

    name: str
    capacity_bytes: Bytes
    channels: int
    ranks_per_channel: int
    banks_per_rank: int
    t_cas: int
    t_rcd: int
    t_ras: int
    t_rp: int
    t_wr: int
    row_bytes: int = 2048
    #: Data-bus bytes per memory cycle; 64-bit DDR moves 16 B/cycle.
    bus_bytes_per_cycle: int = 16

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigError(f"{self.name}: capacity must be positive")
        if not _is_power_of_two(self.row_bytes):
            raise ConfigError(f"{self.name}: row_bytes must be a power of two")
        for label, value in (
            ("channels", self.channels),
            ("ranks_per_channel", self.ranks_per_channel),
            ("banks_per_rank", self.banks_per_rank),
        ):
            if value <= 0:
                raise ConfigError(f"{self.name}: {label} must be positive")

    @property
    def total_banks_per_channel(self) -> int:
        return self.ranks_per_channel * self.banks_per_rank

    @property
    def line_transfer_cycles(self) -> Cycles:
        """CPU cycles the data bus is busy moving one 64 B line."""
        mem_cycles = max(1, 64 // self.bus_bytes_per_cycle)
        return mem_cycles * CYCLES_PER_MEMORY_CYCLE

    def read_latency_cycles(self, row_hit: bool, row_conflict: bool) -> Cycles:
        """CPU cycles from command issue to first data for a read."""
        cycles = self.t_cas
        if not row_hit:
            cycles += self.t_rcd
            if row_conflict:
                cycles += self.t_rp
        return cycles * CYCLES_PER_MEMORY_CYCLE

    def write_recovery_cycles(self) -> Cycles:
        """Extra CPU cycles a bank stays busy after a write (t_WR)."""
        return self.t_wr * CYCLES_PER_MEMORY_CYCLE

    def scaled(self, scale: int) -> "MemoryTimingConfig":
        """Return a copy with capacity divided by *scale* (timing unchanged)."""
        if scale <= 0:
            raise ConfigError("scale must be positive")
        return replace(self, capacity_bytes=max(self.row_bytes, self.capacity_bytes // scale))


def dram_timing_table1(capacity_bytes: int = 512 * MB) -> MemoryTimingConfig:
    """DRAM half of Table I: 512 MB, 4 channels, 1 rank, 8 banks."""
    return MemoryTimingConfig(
        name="dram",
        capacity_bytes=capacity_bytes,
        channels=4,
        ranks_per_channel=1,
        banks_per_rank=8,
        t_cas=11,
        t_rcd=11,
        t_ras=28,
        t_rp=11,
        t_wr=12,
    )


def nvm_timing_table1(capacity_bytes: int = 4 * GB) -> MemoryTimingConfig:
    """NVM half of Table I: 4 GB, 2 channels, 2 ranks, 8 banks.

    The row buffer is 256 B: PCM-class devices use much narrower sense
    arrays than DRAM (Lee et al., ISCA'09), so sequential NVM traffic pays
    t_RCD every few lines instead of streaming a 2 KB open row — one of the
    asymmetries that makes moving hot pages to DRAM worthwhile.
    """
    return MemoryTimingConfig(
        name="nvm",
        capacity_bytes=capacity_bytes,
        channels=2,
        ranks_per_channel=2,
        banks_per_rank=8,
        t_cas=11,
        t_rcd=58,
        t_ras=80,
        t_rp=11,
        t_wr=180,
        row_bytes=256,
    )


@dataclass(frozen=True)
class CacheConfig:
    """One level of the data-cache hierarchy (Table I)."""

    name: str
    size_bytes: int
    ways: int
    latency_cycles: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )
        if self.num_sets < 1:
            raise ConfigError(f"{self.name}: needs at least one set")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class TlbConfig:
    """One TLB level (Table I)."""

    name: str
    entries: int
    ways: int
    latency_cycles: int

    def __post_init__(self) -> None:
        if self.entries % self.ways != 0:
            raise ConfigError(f"{self.name}: entries must be divisible by ways")

    @property
    def num_sets(self) -> int:
        return self.entries // self.ways


@dataclass(frozen=True)
class CoreConfig:
    """Analytic core model parameters.

    The paper simulates 4 out-of-order cores at 2 GHz.  We approximate a
    core by a fixed base CPI on non-miss work plus memory stall cycles
    divided by an MLP (memory-level-parallelism) factor, which stands in for
    the out-of-order window's ability to overlap misses.
    """

    base_cpi: float = 0.5
    memory_level_parallelism: float = 2.0

    def __post_init__(self) -> None:
        if self.base_cpi <= 0 or self.memory_level_parallelism <= 0:
            raise ConfigError("core parameters must be positive")


@dataclass(frozen=True)
class HybridMemoryConfig:
    """The flat DRAM+NVM physical address space.

    DRAM occupies physical pages ``[0, dram_pages)`` and NVM occupies
    ``[dram_pages, dram_pages + nvm_pages)``, mirroring a flat address map.
    """

    dram: MemoryTimingConfig
    nvm: MemoryTimingConfig

    @property
    def dram_pages(self) -> int:
        return self.dram.capacity_bytes // 4096

    @property
    def nvm_pages(self) -> int:
        return self.nvm.capacity_bytes // 4096

    @property
    def total_pages(self) -> int:
        return self.dram_pages + self.nvm_pages

    def is_dram_page(self, ppn: int) -> bool:
        """True if physical page *ppn* lies in the DRAM address range."""
        return 0 <= ppn < self.dram_pages

    def is_nvm_page(self, ppn: int) -> bool:
        """True if physical page *ppn* lies in the NVM address range."""
        return self.dram_pages <= ppn < self.total_pages


@dataclass(frozen=True)
class PageSeerConfig:
    """Table II: every PageSeer design parameter.

    Entry counts follow Table II's structure sizes divided by its entry
    sizes (PRTc 32 KB / 3.5 B, PCTc 32 KB / 10.5 B, HPT 5.3 KB / 5.25 B,
    Filter 2.2 KB / 17.25 B), rounded to powers of two where the structure
    is set-associative.
    """

    #: LLC misses per invocation before a PCTc entry triggers a prefetch swap.
    pct_prefetch_threshold: int = 14
    #: NVM HPT count that triggers a regular swap.
    hpt_swap_threshold: int = 6
    #: CPU cycles between automatic halvings of HPT counters
    #: (50 K cycles at 1 GHz = 100 K CPU cycles).
    hpt_decay_interval_cycles: int = 100_000
    #: Saturating counter width used throughout (Table II: 6 bits).
    counter_bits: int = 6
    #: MMU-to-HMC hint latency (2 CPU cycles at 2 GHz).
    mmu_hint_latency_cycles: int = 2
    #: The in-DRAM PRT's set associativity (Table II: 4-way); this fixes the
    #: number of cache colours to ``dram_pages / prt_ways``.
    prt_ways: int = 4
    #: PRTc geometry (32 KB / 3.5 B per entry ~= 9362 -> 8192 entries).
    prtc_entries: int = 8192
    prtc_ways: int = 4
    #: PRTc access latency, 1 cycle at 1 GHz.
    prtc_latency_cycles: int = 2
    #: PCTc geometry (32 KB / 10.5 B per entry ~= 3120 -> 3072 entries).
    pctc_entries: int = 3072
    pctc_ways: int = 4
    pctc_latency_cycles: int = 2
    #: HPT geometry (5.3 KB / 5.25 B per entry ~= 1034 -> 1024), per table.
    hpt_entries: int = 1024
    hpt_latency_cycles: int = 8
    #: Filter geometry (2.2 KB / 17.25 B per entry ~= 130 -> 128 entries).
    filter_entries: int = 128
    filter_latency_cycles: int = 4
    #: PTE lines cached in the MMU Driver (Section IV-B: 16 lines).
    mmu_driver_pte_lines: int = 16
    #: Swap buffers available in each memory module.
    swap_buffers: int = 24
    #: Concurrent swap operations the Swap Driver sustains; further swap
    #: requests are declined (not queued), which keeps swap latency within
    #: a page flurry.
    swap_engines: int = 3
    #: Swap Driver heuristic: decline swaps while DRAM has served more than
    #: this fraction of main-memory requests (Section V-B: 95%).
    bandwidth_decline_dram_share: float = 0.95
    #: Enable the bandwidth heuristic at all (Figure 11 ablation).
    bandwidth_heuristic_enabled: bool = True
    #: Follower (correlation) prefetching enabled; False = PageSeer-NoCorr.
    correlation_enabled: bool = True
    #: MMU hints enabled; False disables MMU-triggered prefetch swaps.
    mmu_hints_enabled: bool = True
    #: SILC-FM-style partial swaps (Section VI): move only the lines the
    #: page's observed bitmap marks hot; cold lines migrate lazily on
    #: first touch.  Off by default — it is the paper's suggested
    #: extension, not part of baseline PageSeer.
    partial_swaps_enabled: bool = False
    #: A page whose bitmap marks at least this many lines is moved whole
    #: (the bitmap saves nothing for dense pages).
    partial_swap_full_threshold: int = 48

    @property
    def counter_max(self) -> int:
        return (1 << self.counter_bits) - 1

    def scaled(self, scale: int) -> "PageSeerConfig":
        """Shrink table entry counts by *scale*, keeping thresholds/timing."""
        if scale <= 0:
            raise ConfigError("scale must be positive")

        def shrink(entries: int, minimum: int) -> int:
            return max(minimum, entries // scale)

        return replace(
            self,
            prtc_entries=shrink(self.prtc_entries, 4 * self.prtc_ways),
            pctc_entries=shrink(self.pctc_entries, 4 * self.pctc_ways),
            hpt_entries=shrink(self.hpt_entries, 16),
            filter_entries=shrink(self.filter_entries, 8),
        )


@dataclass(frozen=True)
class PomConfig:
    """PoM baseline parameters (Section IV-B).

    2 KB segments, direct-mapped swap groups, swaps triggered when a slow
    segment accumulates ``swap_threshold`` accesses (the paper adjusts PoM's
    K to 12 for its memory timing), fast swaps, and a 32 KB SRC remap cache.
    """

    segment_bytes: int = 2048
    swap_threshold: int = 12
    #: SRC entries: 32 KB at ~4 B per entry.
    src_entries: int = 8192
    src_ways: int = 4
    src_latency_cycles: int = 2
    #: Counter decay interval so thresholds adapt to phases.
    counter_decay_interval_cycles: int = 100_000
    #: PoM's adaptive-threshold mechanism (the original paper adapts the
    #: swap threshold to the program; Section IV-B of PageSeer pins K=12
    #: for its evaluation, so this is opt-in).  When enabled, the
    #: threshold moves within [threshold_min, threshold_max] every decay
    #: interval based on how well recent swaps paid off.
    adaptive_threshold: bool = False
    threshold_min: int = 6
    threshold_max: int = 24
    #: Post-swap hits a segment must earn for its swap to count as useful.
    adaptive_benefit_hits: int = 16

    def scaled(self, scale: int) -> "PomConfig":
        return replace(self, src_entries=max(4 * self.src_ways, self.src_entries // scale))


@dataclass(frozen=True)
class MemPodConfig:
    """MemPod baseline parameters (Section IV-B).

    64 MEA counters per pod, migration decisions every 50 us (= 100 K CPU
    cycles), 2 KB segments, a 32 KB remap cache, and a zero-latency inverted
    map (the paper's optimistic assumption).
    """

    segment_bytes: int = 2048
    mea_counters: int = 64
    interval_cycles: int = 100_000
    pods: int = 2
    remap_cache_entries: int = 8192
    remap_cache_ways: int = 4
    remap_cache_latency_cycles: int = 2

    def scaled(self, scale: int) -> "MemPodConfig":
        return replace(
            self,
            remap_cache_entries=max(
                4 * self.remap_cache_ways, self.remap_cache_entries // scale
            ),
        )


#: Execution engines for the simulation loop.  ``scalar`` is the one-op-
#: at-a-time reference scheduler; ``batched`` drains independent ops in
#: bulk between swap/translation/fault/checkpoint events and must stay
#: bit-identical to ``scalar`` (tests/integration/test_engine_equivalence).
ENGINES = ("scalar", "batched")

#: Workload stream modes.  ``chunked`` runs the block-native emitters
#: (struct-of-arrays chunks, the batched engine's fast path); ``perop``
#: batches the historical per-op generators into the same chunk shape.
#: The two emit identical op sequences (tests/property/test_chunk_streams).
STREAM_MODES = ("chunked", "perop")

#: Valid sanitizer levels, in increasing strictness/cost.
CHECK_LEVELS = ("off", "invariants", "full")


@dataclass(frozen=True)
class CheckConfig:
    """The simulation sanitizer (``repro.check``): what to verify at runtime.

    * ``off`` — no checking at all; the hot path is left untouched (no
      wrapper, no per-access callbacks).
    * ``invariants`` — structural invariant sweeps (PRT bijectivity, frame
      exclusivity, swap-buffer conservation, counter monotonicity, stats
      sanity) every ``interval_ops`` controller requests and once at the
      end of the run.
    * ``full`` — ``invariants`` plus the shadow functional reference
      model: a zero-timing oracle replays every swap event and every
      access is cross-checked against the physical page it must resolve
      to.
    """

    level: str = "off"
    #: Controller requests between two invariant sweeps.
    interval_ops: int = 256
    #: Raise on the first violation (False: collect, raise at finalize).
    fail_fast: bool = True

    def __post_init__(self) -> None:
        if self.level not in CHECK_LEVELS:
            raise ConfigError(
                f"unknown check level {self.level!r}; pick from {CHECK_LEVELS}"
            )
        if self.interval_ops <= 0:
            raise ConfigError("check interval_ops must be positive")

    @property
    def enabled(self) -> bool:
        return self.level != "off"

    @property
    def shadow_enabled(self) -> bool:
        return self.level == "full"


@dataclass(frozen=True)
class FaultConfig:
    """Deterministic fault injection (``repro.faults``): what breaks, and how
    the recovery machinery responds.

    All rates are per-event probabilities drawn from named
    :class:`repro.common.rng.DeterministicRng` streams seeded by
    ``fault_seed``, so a given (config, workload, seed) triple always
    injects the identical fault schedule.  With ``enabled`` False the
    injector is never constructed and the simulator's hot path is untouched.
    """

    enabled: bool = False
    #: Seed for every fault-schedule RNG stream (independent of the
    #: simulation seed so fault schedules can be varied per run).
    fault_seed: int = 0
    # -- device-layer fault rates -----------------------------------------
    #: Probability that a demand read of a (previously good) NVM page hits a
    #: fresh uncorrectable error.  Once a page goes bad it stays bad.
    nvm_uncorrectable_rate: float = 0.0
    #: Probability that any single device access faults transiently.
    transient_rate: float = 0.0
    #: Probability that a bulk page/segment transfer dies mid-flight.
    transfer_fault_rate: float = 0.0
    # -- recovery knobs -----------------------------------------------------
    #: Bounded retry budget for transient faults (per access / per swap).
    max_retries: int = 3
    #: Base backoff added to the retry issue time; doubles per attempt.
    retry_backoff_cycles: Cycles = 200
    #: Latency of a degraded service (ECC heroics / firmware-level rebuild)
    #: when retries are exhausted or a read is uncorrectable.
    recovery_read_cycles: Cycles = 2000
    # -- infrastructure-layer (sweep runner) fault rates --------------------
    #: Probability a sweep worker crashes before simulating its request.
    worker_crash_rate: float = 0.0
    #: Probability a sweep worker stalls for ``worker_stall_seconds``.
    worker_stall_rate: float = 0.0
    worker_stall_seconds: float = 0.0

    def __post_init__(self) -> None:
        for label, rate in (
            ("nvm_uncorrectable_rate", self.nvm_uncorrectable_rate),
            ("transient_rate", self.transient_rate),
            ("transfer_fault_rate", self.transfer_fault_rate),
            ("worker_crash_rate", self.worker_crash_rate),
            ("worker_stall_rate", self.worker_stall_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{label} must be within [0, 1], got {rate}")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        if self.retry_backoff_cycles <= 0:
            raise ConfigError("retry_backoff_cycles must be positive")
        if self.recovery_read_cycles <= 0:
            raise ConfigError("recovery_read_cycles must be positive")
        if self.worker_stall_seconds < 0:
            raise ConfigError("worker_stall_seconds must be non-negative")


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build one simulated system."""

    cores: int = 4
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig("l1", 32 * KB, 8, 2)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("l2", 256 * KB, 8, 8)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig("l3", 8 * MB, 16, 32)
    )
    l1_tlb: TlbConfig = field(
        default_factory=lambda: TlbConfig("l1tlb", 64, 4, 1)
    )
    l2_tlb: TlbConfig = field(
        default_factory=lambda: TlbConfig("l2tlb", 1024, 4, 10)
    )
    #: Page-walk cache entries per level (PGD/PUD/PMD), per core.
    pwc_entries_per_level: int = 16
    pwc_latency_cycles: int = 2
    core: CoreConfig = field(default_factory=CoreConfig)
    memory: HybridMemoryConfig = field(
        default_factory=lambda: HybridMemoryConfig(
            dram=dram_timing_table1(), nvm=nvm_timing_table1()
        )
    )
    pageseer: PageSeerConfig = field(default_factory=PageSeerConfig)
    pom: PomConfig = field(default_factory=PomConfig)
    mempod: MemPodConfig = field(default_factory=MemPodConfig)
    #: When False, channel/bank contention is ignored (Section V-A mode).
    model_contention: bool = True
    #: Simulation-loop engine: ``batched`` (default) or ``scalar``.  The
    #: two are bit-identical by contract; ``scalar`` remains as the
    #: reference implementation and differential-testing oracle.
    engine: str = "batched"
    #: Workload stream mode: ``chunked`` (default) or ``perop``; see
    #: :data:`STREAM_MODES`.  Sequence-identical by contract.
    stream: str = "chunked"
    seed: int = 0
    #: Runtime sanitizer configuration (``repro.check``).
    check: CheckConfig = field(default_factory=CheckConfig)
    #: Fault injection + recovery configuration (``repro.faults``).
    faults: FaultConfig = field(default_factory=FaultConfig)

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigError("need at least one core")
        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; pick from {ENGINES}"
            )
        if self.stream not in STREAM_MODES:
            raise ConfigError(
                f"unknown stream mode {self.stream!r}; pick from {STREAM_MODES}"
            )

    def with_cores(self, cores: int) -> "SystemConfig":
        """Return a copy running *cores* cores (Table III varies this)."""
        return replace(self, cores=cores)

    def scaled(self, scale: int) -> "SystemConfig":
        """Return a coherently scaled-down copy (see module docstring).

        Memory capacities and hardware tables shrink by the full factor.
        Caches and TLBs shrink by *damped* factors: the quantities that
        drive the paper's results are ratios (footprint versus cache reach,
        footprint versus TLB reach), and those ratios are preserved well
        enough with milder cache scaling while keeping each level a
        sensible set-associative geometry.
        """
        if scale <= 0:
            raise ConfigError("scale must be positive")

        def shrink_cache(cache: CacheConfig, factor: int, floor: int) -> CacheConfig:
            size = max(floor, cache.size_bytes // factor)
            ways = cache.ways
            while size % (ways * cache.line_bytes) != 0 and ways > 1:
                ways //= 2
            return CacheConfig(cache.name, size, ways, cache.latency_cycles)

        def shrink_tlb(tlb: TlbConfig, factor: int, floor: int) -> TlbConfig:
            entries = max(floor, tlb.entries // factor)
            ways = tlb.ways
            while entries % ways != 0 and ways > 1:
                ways //= 2
            return TlbConfig(tlb.name, entries, ways, tlb.latency_cycles)

        tlb_scale = max(1, min(scale // 16, 16))
        return replace(
            self,
            memory=HybridMemoryConfig(
                dram=self.memory.dram.scaled(scale),
                nvm=self.memory.nvm.scaled(scale),
            ),
            l1=shrink_cache(self.l1, min(scale, 16), 2 * KB),
            l2=shrink_cache(self.l2, min(scale, 32), 8 * KB),
            l3=shrink_cache(self.l3, scale, 32 * KB),
            l1_tlb=shrink_tlb(self.l1_tlb, tlb_scale, 4),
            l2_tlb=shrink_tlb(self.l2_tlb, tlb_scale, 32),
            pwc_entries_per_level=max(2, self.pwc_entries_per_level // tlb_scale),
            pageseer=self.pageseer.scaled(scale),
            pom=self.pom.scaled(scale),
            mempod=self.mempod.scaled(scale),
        )


def default_system_config(
    scale: int = 64, cores: int = 4, seed: int = 0, model_contention: bool = True
) -> SystemConfig:
    """Return the Table I system, optionally scaled down by *scale*.

    The ``REPRO_ENGINE`` environment variable overrides the simulation
    engine default (``batched``) and ``REPRO_STREAM`` the stream-mode
    default (``chunked``) — the hooks CI's engine×stream matrix uses to
    run the whole test suite under every combination without touching
    every ``build_system`` call site.  Invalid values fail SystemConfig
    validation immediately.
    """
    engine = os.environ.get("REPRO_ENGINE", "").strip()
    kwargs = {"engine": engine} if engine else {}
    stream = os.environ.get("REPRO_STREAM", "").strip()
    if stream:
        kwargs["stream"] = stream
    config = SystemConfig(
        cores=cores, seed=seed, model_contention=model_contention, **kwargs
    )
    if scale != 1:
        config = config.scaled(scale)
    return replace(config, seed=seed, model_contention=model_contention)
