"""Shared infrastructure for the PageSeer reproduction.

This package holds the pieces every other subsystem builds on: address
arithmetic (:mod:`repro.common.addr`), deterministic random streams
(:mod:`repro.common.rng`), statistics counters (:mod:`repro.common.stats`),
resource-reservation timelines (:mod:`repro.common.timeline`) and the
configuration dataclasses that mirror Tables I and II of the paper
(:mod:`repro.common.config`).
"""

from repro.common.addr import (
    CACHE_LINE_BYTES,
    PAGE_BYTES,
    LINES_PER_PAGE,
    line_of,
    page_of,
    line_in_page,
    split_virtual_address,
)
from repro.common.config import (
    CacheConfig,
    CoreConfig,
    HybridMemoryConfig,
    MemoryTimingConfig,
    PageSeerConfig,
    PomConfig,
    MemPodConfig,
    SystemConfig,
    TlbConfig,
)
from repro.common.errors import ReproError, ConfigError, SimulationError
from repro.common.rng import DeterministicRng
from repro.common.stats import StatsRegistry
from repro.common.timeline import BankedTimeline, Timeline

__all__ = [
    "CACHE_LINE_BYTES",
    "PAGE_BYTES",
    "LINES_PER_PAGE",
    "line_of",
    "page_of",
    "line_in_page",
    "split_virtual_address",
    "CacheConfig",
    "CoreConfig",
    "HybridMemoryConfig",
    "MemoryTimingConfig",
    "PageSeerConfig",
    "PomConfig",
    "MemPodConfig",
    "SystemConfig",
    "TlbConfig",
    "ReproError",
    "ConfigError",
    "SimulationError",
    "DeterministicRng",
    "StatsRegistry",
    "BankedTimeline",
    "Timeline",
]
