"""Resource-reservation timelines.

The simulator avoids per-cycle ticking.  A shared hardware resource (a DRAM
bank, a channel data bus, the PRTc port, the swap engine) is modelled as a
*timeline*: a monotonically advancing "busy until" timestamp.  A request
that wants the resource at time ``t`` for ``duration`` cycles is granted the
interval ``[start, start + duration)`` where ``start = max(t, busy_until)``,
and the timeline advances.  Queueing delay is therefore ``start - t``.

This reproduces first-order contention (bandwidth saturation, queueing under
bursts) at a tiny fraction of the cost of cycle-accurate simulation; see
DESIGN.md Section 5.
"""

from __future__ import annotations

from typing import List, Tuple

try:  # numpy backs the struct-of-arrays mirror; scalar classes never need it
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain image bakes numpy in
    _np = None

#: Unit alias checked by the RL004 lint rule (see docs/LINTING.md).
#: Marks CPU-cycle quantities (timestamps and durations at the 2 GHz core
#: clock).  Plain ``int`` at run time; the alias keeps cycle arithmetic
#: visibly separate from byte and address arithmetic.
Cycles = int


class Timeline:
    """A single serially-reusable resource."""

    __slots__ = ("busy_until", "total_busy")

    def __init__(self) -> None:
        self.busy_until = 0
        self.total_busy = 0

    def reserve(self, now: Cycles, duration: Cycles) -> Tuple[Cycles, Cycles]:
        """Reserve the resource for *duration* cycles at or after *now*.

        Returns ``(start, end)`` of the granted interval and advances the
        timeline to ``end``.
        """
        start = now if now > self.busy_until else self.busy_until
        end = start + duration
        self.busy_until = end
        self.total_busy += duration
        return start, end

    def next_free(self, now: Cycles) -> Cycles:
        """Return the earliest time at or after *now* the resource is free."""
        return now if now > self.busy_until else self.busy_until

    def utilization(self, elapsed: Cycles) -> float:
        """Return the fraction of *elapsed* cycles the resource was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.total_busy / elapsed)


class BankedTimeline:
    """A set of identical resources indexed by an integer (e.g. banks)."""

    __slots__ = ("_timelines",)

    def __init__(self, count: int) -> None:
        if count <= 0:
            raise ValueError("BankedTimeline needs at least one bank")
        self._timelines: List[Timeline] = [Timeline() for _ in range(count)]

    def __len__(self) -> int:
        return len(self._timelines)

    def __getitem__(self, index: int) -> Timeline:
        return self._timelines[index]

    def reserve(self, index: int, now: Cycles, duration: Cycles) -> Tuple[Cycles, Cycles]:
        """Reserve bank *index*; see :meth:`Timeline.reserve`."""
        return self._timelines[index].reserve(now, duration)

    # repro-hot
    def least_loaded(self, now: Cycles) -> int:
        """Return the index of the bank that frees up earliest.

        Scans in index order but stops at the first bank already free at
        *now*: no later bank can be free any earlier, and the full scan
        returns the first index achieving the minimum — so the early exit
        picks exactly the same bank.
        """
        timelines = self._timelines
        best_time = timelines[0].next_free(now)
        if best_time <= now:
            return 0
        best_index = 0
        for index in range(1, len(timelines)):
            free_at = timelines[index].next_free(now)
            if free_at <= now:
                return index
            if free_at < best_time:
                best_time = free_at
                best_index = index
        return best_index

    def utilization(self, elapsed: Cycles) -> float:
        """Return mean utilization across all banks."""
        if not self._timelines:
            return 0.0
        return sum(t.utilization(elapsed) for t in self._timelines) / len(self._timelines)


class SoaBankedTimeline:
    """:class:`BankedTimeline` as numpy struct-of-arrays.

    Two int64 vectors (``busy_until``, ``total_busy``) replace the list of
    :class:`Timeline` records, so bulk reservations — the page/segment
    transfer schedules the batched engine computes in closed form — touch
    every bank with a handful of vector ops instead of a Python loop per
    line.  The scalar methods (:meth:`reserve`, :meth:`least_loaded`,
    :meth:`next_free`) keep the exact semantics of the scalar class; the
    property suite ``tests/property/test_timeline_soa.py`` replays random
    operation sequences against :class:`BankedTimeline` and requires
    bit-identical grants, including ``least_loaded`` tie-breaking (first
    index achieving the minimum wins) and modulo-wrapped bank indices.
    """

    __slots__ = ("busy_until", "total_busy")

    def __init__(self, count: int) -> None:
        if _np is None:
            raise RuntimeError(
                "SoaBankedTimeline needs numpy; use BankedTimeline instead"
            )
        if count <= 0:
            raise ValueError("SoaBankedTimeline needs at least one bank")
        self.busy_until = _np.zeros(count, dtype=_np.int64)
        self.total_busy = _np.zeros(count, dtype=_np.int64)

    def __len__(self) -> int:
        return int(self.busy_until.shape[0])

    # -- scalar-compatible operations ----------------------------------------
    def reserve(self, index: int, now: Cycles, duration: Cycles) -> Tuple[Cycles, Cycles]:
        """Reserve bank *index*; bit-identical to the scalar class."""
        busy = int(self.busy_until[index])
        start = now if now > busy else busy
        end = start + duration
        self.busy_until[index] = end
        self.total_busy[index] += duration
        return start, end

    def next_free(self, index: int, now: Cycles) -> Cycles:
        busy = int(self.busy_until[index])
        return now if now > busy else busy

    def least_loaded(self, now: Cycles) -> int:
        """First bank index achieving the earliest free time.

        ``np.maximum`` clamps already-free banks to *now*, making them all
        equal to the minimum; ``argmin`` returns the *first* occurrence,
        which is exactly the scalar class's tie-break (its early exit at
        the first free bank returns the same index the full scan would).
        """
        return int(_np.argmin(_np.maximum(self.busy_until, now)))

    def utilization(self, elapsed: Cycles) -> float:
        if elapsed <= 0:
            return 0.0
        shares = _np.minimum(1.0, self.total_busy / float(elapsed))
        return float(shares.mean())

    # -- vectorized kernels ----------------------------------------------------
    def reserve_all(self, now: Cycles, duration: Cycles) -> "_np.ndarray":
        """Reserve every bank once at *now*; returns the end-time vector.

        Equivalent to ``[reserve(i, now, duration)[1] for i in range(n)]``
        but as three vector ops — the shape of a page transfer that
        touches each bank of a channel with one burst.
        """
        starts = _np.maximum(self.busy_until, now)
        ends = starts + duration
        self.busy_until = ends
        self.total_busy += duration
        return ends

    def reserve_sequence(
        self, indices: "_np.ndarray", now: Cycles, duration: Cycles
    ) -> "_np.ndarray":
        """Reserve *indices* in order; returns per-reservation end times.

        Repeated indices chain (a bank reserved twice queues behind its
        own earlier grant), so the result is bit-identical to the scalar
        loop.  Within the run of consecutive hits on one bank the grant
        times advance by exactly *duration*, which is what lets the
        closed-form transfer planner emit one vector expression per bank
        group instead of iterating lines.
        """
        indices = _np.asarray(indices, dtype=_np.int64)
        n = int(indices.shape[0])
        if n == 0:
            return _np.zeros(0, dtype=_np.int64)
        # Occurrence rank of each reservation within its bank (0 for the
        # first hit on a bank, 1 for the second, ...), computed without a
        # per-element loop: stable-sort groups equal banks together, the
        # rank is the offset into the group, then scatter back.
        perm = _np.argsort(indices, kind="stable")
        grouped = indices[perm]
        run_starts = _np.flatnonzero(
            _np.diff(grouped, prepend=grouped[0] - 1)
        )
        run_lengths = _np.diff(_np.append(run_starts, n))
        rank_sorted = _np.arange(n) - _np.repeat(run_starts, run_lengths)
        rank = _np.empty(n, dtype=_np.int64)
        rank[perm] = rank_sorted
        starts = _np.maximum(self.busy_until[indices], now) + rank * duration
        ends = starts + duration
        _np.maximum.at(self.busy_until, indices, ends)
        self.total_busy += _np.bincount(indices, minlength=len(self)) * duration
        return ends

    # -- interop ---------------------------------------------------------------
    @classmethod
    def from_banked(cls, banked: BankedTimeline) -> "SoaBankedTimeline":
        """Copy the state of a scalar :class:`BankedTimeline`."""
        soa = cls(len(banked))
        for index in range(len(banked)):
            timeline = banked[index]
            soa.busy_until[index] = timeline.busy_until
            soa.total_busy[index] = timeline.total_busy
        return soa

    def to_banked(self) -> BankedTimeline:
        """Materialise the equivalent scalar :class:`BankedTimeline`."""
        banked = BankedTimeline(len(self))
        for index in range(len(self)):
            timeline = banked[index]
            timeline.busy_until = int(self.busy_until[index])
            timeline.total_busy = int(self.total_busy[index])
        return banked
