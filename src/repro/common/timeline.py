"""Resource-reservation timelines.

The simulator avoids per-cycle ticking.  A shared hardware resource (a DRAM
bank, a channel data bus, the PRTc port, the swap engine) is modelled as a
*timeline*: a monotonically advancing "busy until" timestamp.  A request
that wants the resource at time ``t`` for ``duration`` cycles is granted the
interval ``[start, start + duration)`` where ``start = max(t, busy_until)``,
and the timeline advances.  Queueing delay is therefore ``start - t``.

This reproduces first-order contention (bandwidth saturation, queueing under
bursts) at a tiny fraction of the cost of cycle-accurate simulation; see
DESIGN.md Section 5.
"""

from __future__ import annotations

from typing import List, Tuple

#: Unit alias checked by the RL004 lint rule (see docs/LINTING.md).
#: Marks CPU-cycle quantities (timestamps and durations at the 2 GHz core
#: clock).  Plain ``int`` at run time; the alias keeps cycle arithmetic
#: visibly separate from byte and address arithmetic.
Cycles = int


class Timeline:
    """A single serially-reusable resource."""

    __slots__ = ("busy_until", "total_busy")

    def __init__(self) -> None:
        self.busy_until = 0
        self.total_busy = 0

    def reserve(self, now: Cycles, duration: Cycles) -> Tuple[Cycles, Cycles]:
        """Reserve the resource for *duration* cycles at or after *now*.

        Returns ``(start, end)`` of the granted interval and advances the
        timeline to ``end``.
        """
        start = now if now > self.busy_until else self.busy_until
        end = start + duration
        self.busy_until = end
        self.total_busy += duration
        return start, end

    def next_free(self, now: Cycles) -> Cycles:
        """Return the earliest time at or after *now* the resource is free."""
        return now if now > self.busy_until else self.busy_until

    def utilization(self, elapsed: Cycles) -> float:
        """Return the fraction of *elapsed* cycles the resource was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.total_busy / elapsed)


class BankedTimeline:
    """A set of identical resources indexed by an integer (e.g. banks)."""

    __slots__ = ("_timelines",)

    def __init__(self, count: int) -> None:
        if count <= 0:
            raise ValueError("BankedTimeline needs at least one bank")
        self._timelines: List[Timeline] = [Timeline() for _ in range(count)]

    def __len__(self) -> int:
        return len(self._timelines)

    def __getitem__(self, index: int) -> Timeline:
        return self._timelines[index]

    def reserve(self, index: int, now: Cycles, duration: Cycles) -> Tuple[Cycles, Cycles]:
        """Reserve bank *index*; see :meth:`Timeline.reserve`."""
        return self._timelines[index].reserve(now, duration)

    # repro-hot
    def least_loaded(self, now: Cycles) -> int:
        """Return the index of the bank that frees up earliest.

        Scans in index order but stops at the first bank already free at
        *now*: no later bank can be free any earlier, and the full scan
        returns the first index achieving the minimum — so the early exit
        picks exactly the same bank.
        """
        timelines = self._timelines
        best_time = timelines[0].next_free(now)
        if best_time <= now:
            return 0
        best_index = 0
        for index in range(1, len(timelines)):
            free_at = timelines[index].next_free(now)
            if free_at <= now:
                return index
            if free_at < best_time:
                best_time = free_at
                best_index = index
        return best_index

    def utilization(self, elapsed: Cycles) -> float:
        """Return mean utilization across all banks."""
        if not self._timelines:
            return 0.0
        return sum(t.utilization(elapsed) for t in self._timelines) / len(self._timelines)
