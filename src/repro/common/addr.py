"""Address arithmetic shared by every subsystem.

The simulator uses byte addresses throughout.  Pages are 4 KB and cache
lines are 64 B, exactly as in the paper (Table I).  Virtual addresses follow
the x86-64 4-level layout described in Section II-C of the paper: 48
meaningful bits split as 9 (PGD) + 9 (PUD) + 9 (PMD) + 9 (PTE) + 12 (page
offset).
"""

from __future__ import annotations

from typing import NamedTuple

#: Unit aliases checked by the RL004 lint rule (see docs/LINTING.md).
#: ``Bytes`` marks sizes/capacities; ``PhysAddr`` marks byte addresses in
#: the flat DRAM+NVM physical space.  Both are plain ``int`` at run time —
#: the aliases exist so signatures state their unit and the linter can
#: flag arithmetic that mixes units.
Bytes = int
PhysAddr = int

CACHE_LINE_BYTES = 64
PAGE_BYTES = 4096
LINES_PER_PAGE = PAGE_BYTES // CACHE_LINE_BYTES

LINE_SHIFT = 6
PAGE_SHIFT = 12

#: Number of index bits per page-table level (x86-64).
LEVEL_BITS = 9
#: Number of page-table levels walked on a TLB miss (PGD, PUD, PMD, PTE).
WALK_LEVELS = 4
#: Meaningful virtual-address bits (x86-64 canonical form).
VA_BITS = 48


class VirtualAddressParts(NamedTuple):
    """The five fields of a 48-bit x86-64 virtual address."""

    pgd_index: int
    pud_index: int
    pmd_index: int
    pte_index: int
    offset: int


def line_of(address: int) -> int:
    """Return the cache-line number containing *address*."""
    return address >> LINE_SHIFT


def line_base(address: int) -> int:
    """Return the byte address of the start of the line containing *address*."""
    return address & ~(CACHE_LINE_BYTES - 1)


def page_of(address: int) -> int:
    """Return the page number (PPN or VPN) containing *address*."""
    return address >> PAGE_SHIFT


def page_base(address: int) -> int:
    """Return the byte address of the start of the page containing *address*."""
    return address & ~(PAGE_BYTES - 1)


def page_offset(address: int) -> int:
    """Return the offset of *address* within its 4 KB page."""
    return address & (PAGE_BYTES - 1)


def line_in_page(address: int) -> int:
    """Return the index (0..63) of the line within its page."""
    return (address & (PAGE_BYTES - 1)) >> LINE_SHIFT


def address_of_page(page_number: int) -> int:
    """Return the byte address of the first byte of *page_number*."""
    return page_number << PAGE_SHIFT


def address_of_line(line_number: int) -> int:
    """Return the byte address of the first byte of *line_number*."""
    return line_number << LINE_SHIFT


def split_virtual_address(virtual_address: int) -> VirtualAddressParts:
    """Split a virtual address into its page-walk indices (Figure 1).

    Only the low 48 bits participate; higher bits are ignored, mirroring the
    canonical-address handling of x86-64 hardware.
    """
    va = virtual_address & ((1 << VA_BITS) - 1)
    offset = va & (PAGE_BYTES - 1)
    vpn = va >> PAGE_SHIFT
    pte_index = vpn & ((1 << LEVEL_BITS) - 1)
    pmd_index = (vpn >> LEVEL_BITS) & ((1 << LEVEL_BITS) - 1)
    pud_index = (vpn >> (2 * LEVEL_BITS)) & ((1 << LEVEL_BITS) - 1)
    pgd_index = (vpn >> (3 * LEVEL_BITS)) & ((1 << LEVEL_BITS) - 1)
    return VirtualAddressParts(pgd_index, pud_index, pmd_index, pte_index, offset)


def join_virtual_address(parts: VirtualAddressParts) -> int:
    """Inverse of :func:`split_virtual_address`."""
    vpn = (
        (parts.pgd_index << (3 * LEVEL_BITS))
        | (parts.pud_index << (2 * LEVEL_BITS))
        | (parts.pmd_index << LEVEL_BITS)
        | parts.pte_index
    )
    return (vpn << PAGE_SHIFT) | parts.offset
