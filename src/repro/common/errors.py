"""Exception hierarchy for the PageSeer reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class SimulationError(ReproError):
    """An invariant was violated while a simulation was running."""


class AllocationError(ReproError):
    """The OS model ran out of physical frames."""


class CheckViolationError(SimulationError):
    """The runtime sanitizer detected one or more invariant violations.

    ``violations`` holds the :class:`repro.check.invariants.Violation`
    objects; the message lists every one with its page/frame context.
    """

    def __init__(self, violations):
        self.violations = list(violations)
        lines = [str(v) for v in self.violations]
        count = len(self.violations)
        plural = "s" if count != 1 else ""
        super().__init__(
            f"{count} invariant violation{plural} detected:\n  " + "\n  ".join(lines)
        )


class PersistError(ReproError):
    """The durable-storage layer (``repro.persist``) failed.

    Every crash-safe file this project writes — checkpoints, sweep
    manifests, result caches, bench documents — goes through
    ``repro.persist``; this hierarchy is how storage trouble surfaces.
    ``path`` names the file, ``site`` the persistence site label
    ("checkpoint", "cache", "manifest", ...), and ``hint`` carries a
    one-line remediation the CLI prints under the error.
    """

    def __init__(self, message, *, path=None, site=None, hint=None):
        self.path = None if path is None else str(path)
        self.site = site
        self.hint = hint
        suffix = f" (remediation: {hint})" if hint else ""
        super().__init__(f"{message}{suffix}")


class PersistWriteError(PersistError):
    """An atomic write failed (ENOSPC, EIO, a failed fsync).

    The atomic temp + fsync + ``os.replace`` discipline guarantees the
    *previous* file content is still intact when this raises — callers
    lose durability of the newest state, never consistency.  ``errno``
    carries the originating OS error number when one exists.
    """

    def __init__(self, message, *, path=None, site=None, hint=None, errno=None):
        self.errno = errno
        super().__init__(message, path=path, site=site, hint=hint)


class CorruptPayloadError(PersistError):
    """A persisted file failed validation on read.

    Raised for unparseable content, a checksum mismatch (bit-rot or a
    torn write that lied about durability), or a schema the reader does
    not recognise.  ``check`` names the failed validation step.
    """

    def __init__(self, message, *, path=None, site=None, hint=None, check=None):
        self.check = check
        super().__init__(message, path=path, site=site, hint=hint)


class CheckpointError(ReproError):
    """A checkpoint file could not be written, read, or validated.

    Raised for truncated/corrupt files (bad magic, checksum mismatch),
    format-version skew, and state graphs that cannot be serialized.
    """


class CorruptCheckpointError(CheckpointError):
    """A checkpoint file failed a specific integrity check.

    ``path`` names the file, ``check`` the failed validation step
    ("magic", "version", "header", "truncation", "checksum", "payload"),
    and ``hint`` the remediation — by default pointing at ``repro fsck
    --repair``, which quarantines the corrupt file and promotes the
    newest verifiable generation.
    """

    FSCK_HINT = (
        "run `python -m repro fsck <dir> --repair` to quarantine the "
        "corrupt file and promote the newest good generation"
    )

    def __init__(self, message, *, path=None, check=None, hint=None):
        self.path = None if path is None else str(path)
        self.check = check
        self.hint = hint if hint is not None else self.FSCK_HINT
        where = f" [failed check: {check}]" if check else ""
        super().__init__(f"{message}{where} (remediation: {self.hint})")


class ManifestVersionError(CheckpointError):
    """A sweep manifest's schema does not match this build.

    Raised instead of letting an old (or foreign) manifest surface as a
    raw JSON/pickle traceback deep inside resume.  ``hint`` carries a
    one-line remediation the CLI prints under the error; the sweep
    command maps this class to its own exit code so scripts can
    distinguish "wrong manifest version" from "sweep failed".
    """

    def __init__(self, message, hint=None):
        self.hint = hint
        super().__init__(message)


class SweepdError(ReproError):
    """The distributed sweep service failed at the protocol/service layer.

    Covers unreachable servers (an RPC exhausted its retry window),
    malformed frames, and replies the client cannot interpret.  Job
    *failures* are not SweepdErrors — they travel through the manifest's
    quarantine machinery and surface as :class:`SweepError`."""


class CheckpointInterrupt(ReproError):
    """A run was interrupted by SIGINT/SIGTERM after writing a final
    checkpoint.

    ``path`` is the checkpoint written on the way out (None when the
    final write itself failed); ``signum`` is the signal that triggered
    the shutdown.  The CLI maps this to the distinct exit code
    :data:`repro.snapshot.EXIT_CHECKPOINTED`.
    """

    def __init__(self, path=None, signum=None):
        self.path = path
        self.signum = signum
        where = f" (checkpoint written to {path})" if path else ""
        super().__init__(f"run interrupted by signal {signum}{where}")


class FaultError(SimulationError):
    """An injected fault fired at a specific point of the simulated machine.

    ``device`` names the memory device ("dram"/"nvm") or infrastructure
    component that faulted, ``line`` is the physical cache-line number being
    accessed (or ``None`` for non-memory faults) and ``cycle`` the simulated
    cycle at which the fault fired.
    """

    def __init__(self, message, *, device=None, line=None, cycle=None):
        self.device = device
        self.line = line
        self.cycle = cycle
        site = []
        if device is not None:
            site.append(f"device={device}")
        if line is not None:
            site.append(f"line={line}")
        if cycle is not None:
            site.append(f"cycle={cycle}")
        suffix = f" [{', '.join(site)}]" if site else ""
        super().__init__(f"{message}{suffix}")


class TransientFaultError(FaultError):
    """A transient device fault: the access may succeed if retried later."""


class UnrecoverableFaultError(FaultError):
    """A permanent fault (e.g. an NVM uncorrectable read): retrying the same
    access can never succeed; recovery must remap or degrade instead."""


class WorkerFaultError(FaultError):
    """An injected infrastructure fault: a sweep worker crashed or stalled."""


class SweepError(ReproError):
    """One or more simulations of a parallel sweep failed.

    ``failures`` is a list of ``((scheme, workload, variant), exception)``
    pairs — every request that failed, not just the first.  ``attempts``
    optionally maps each failed request to the number of attempts made, so
    the message distinguishes exhausted-retries failures from requests that
    failed on their first (and only) attempt.
    """

    def __init__(self, failures, attempts=None):
        self.failures = list(failures)
        self.attempts = dict(attempts) if attempts else {}
        names = ", ".join("/".join(request) for request, _ in self.failures)

        def _suffix(request):
            tries = self.attempts.get(request, 1)
            if tries > 1:
                return f" (failed on all {tries} attempts, retries exhausted)"
            return " (failed on first attempt, not retried)"

        causes = "\n  ".join(
            f"{'/'.join(request)}: {type(exc).__name__}: {exc}{_suffix(request)}"
            for request, exc in self.failures
        )
        super().__init__(
            f"{len(self.failures)} sweep request(s) failed ({names}):\n  {causes}"
        )
