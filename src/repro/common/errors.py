"""Exception hierarchy for the PageSeer reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class SimulationError(ReproError):
    """An invariant was violated while a simulation was running."""


class AllocationError(ReproError):
    """The OS model ran out of physical frames."""
