"""Exception hierarchy for the PageSeer reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class SimulationError(ReproError):
    """An invariant was violated while a simulation was running."""


class AllocationError(ReproError):
    """The OS model ran out of physical frames."""


class CheckViolationError(SimulationError):
    """The runtime sanitizer detected one or more invariant violations.

    ``violations`` holds the :class:`repro.check.invariants.Violation`
    objects; the message lists every one with its page/frame context.
    """

    def __init__(self, violations):
        self.violations = list(violations)
        lines = [str(v) for v in self.violations]
        count = len(self.violations)
        plural = "s" if count != 1 else ""
        super().__init__(
            f"{count} invariant violation{plural} detected:\n  " + "\n  ".join(lines)
        )


class SweepError(ReproError):
    """One or more simulations of a parallel sweep failed.

    ``failures`` is a list of ``((scheme, workload, variant), exception)``
    pairs — every request that failed, not just the first.
    """

    def __init__(self, failures):
        self.failures = list(failures)
        names = ", ".join("/".join(request) for request, _ in self.failures)
        causes = "\n  ".join(
            f"{'/'.join(request)}: {type(exc).__name__}: {exc}"
            for request, exc in self.failures
        )
        super().__init__(
            f"{len(self.failures)} sweep request(s) failed ({names}):\n  {causes}"
        )
