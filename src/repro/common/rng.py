"""Deterministic random-number streams.

Every source of randomness in the simulator draws from a
:class:`DeterministicRng`, which is seeded from a *name* and a global seed.
Two runs with the same configuration therefore produce bit-identical
results, and independent subsystems (e.g. two cores running the same
workload) get decorrelated streams simply by using different names.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, Sequence, TypeVar

T = TypeVar("T")


def _seed_from_name(global_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{global_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class DeterministicRng:
    """A named, reproducible random stream.

    Parameters
    ----------
    name:
        Identifies the stream; streams with different names are independent.
    global_seed:
        The experiment-wide seed.
    """

    def __init__(self, name: str, global_seed: int = 0):
        self.name = name
        self.global_seed = global_seed
        self._random = random.Random(_seed_from_name(global_seed, name))

    def derive(self, suffix: str) -> "DeterministicRng":
        """Return an independent child stream named ``<name>/<suffix>``."""
        return DeterministicRng(f"{self.name}/{suffix}", self.global_seed)

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Return a uniform float in ``[0, 1)``."""
        return self._random.random()

    def choice(self, seq: Sequence[T]) -> T:
        """Return a uniformly-chosen element of *seq*."""
        return self._random.choice(seq)

    def shuffle(self, seq: list) -> None:
        """Shuffle *seq* in place."""
        self._random.shuffle(seq)

    def sample(self, seq: Sequence[T], k: int) -> list:
        """Return *k* distinct elements of *seq*."""
        return self._random.sample(seq, k)

    def expovariate(self, rate: float) -> float:
        """Return an exponentially-distributed float with the given rate."""
        return self._random.expovariate(rate)

    def zipf_index(self, n: int, skew: float = 0.99) -> int:
        """Return an index in ``[0, n)`` with a Zipf-like distribution.

        Uses the standard inverse-power approximation, which is fast and
        accurate enough for workload synthesis.
        """
        if n <= 0:
            raise ValueError("zipf_index needs a positive range")
        u = self._random.random()
        # Inverse-CDF approximation of the Zipf distribution; exact for
        # skew -> 1 shapes used by the workload generators.
        index = int(n ** (u ** (1.0 / (1.0 - skew + 1e-9)))) if skew < 1.0 else 0
        if skew >= 1.0:
            # Harmonic-series inversion for skew >= 1.
            index = min(int((n + 1) ** u) - 1, n - 1)
        return min(max(index, 0), n - 1)

    def geometric(self, p: float) -> int:
        """Return a geometric variate (number of trials until success, >= 1)."""
        if not 0.0 < p <= 1.0:
            raise ValueError("geometric probability must be in (0, 1]")
        count = 1
        while self._random.random() >= p:
            count += 1
        return count

    def permutation(self, n: int) -> list:
        """Return a random permutation of ``range(n)``."""
        order = list(range(n))
        self._random.shuffle(order)
        return order

    def iter_randints(self, low: int, high: int) -> Iterator[int]:
        """Yield an endless stream of uniform integers in ``[low, high]``."""
        while True:
            yield self._random.randint(low, high)
