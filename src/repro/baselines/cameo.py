"""CAMEO: line-granularity swapping (Chou et al., MICRO'14; Section II-B).

CAMEO migrates data in 64 B blocks: *every* access to a block currently in
slow memory triggers a fast swap with the occupant of its swap group's
single fast-memory slot (groups are direct-mapped, as in PoM).  Swap
bandwidth stays low because blocks are tiny, but the scheme needs metadata
per *line* rather than per segment — so its remap cache covers a far
smaller fraction of memory — and it cannot exploit spatial locality: the
next line of the same hot page misses to slow memory again.

The paper discusses CAMEO as background rather than evaluating it; this
implementation rounds out the baseline set and lets the line-versus-page
granularity trade-off be measured directly.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict

from repro.common.addr import CACHE_LINE_BYTES, LINES_PER_PAGE, PAGE_BYTES
from repro.common.config import SystemConfig
from repro.common.errors import FaultError
from repro.common.stats import StatsRegistry
from repro.sim.hmc_base import HmcBase, RequestKind
from repro.vm.os_model import OsModel


class CameoHmc(HmcBase):
    """The CAMEO memory controller (64 B swap granularity)."""

    scheme_name = "cameo"

    #: Remap-cache capacity in line entries (same SRAM budget as PoM's SRC,
    #: but each entry covers 64 B instead of 2 KB).
    def __init__(self, config: SystemConfig, os_model: OsModel, stats: StatsRegistry):
        super().__init__(config, os_model, stats)
        dram_bytes = config.memory.dram.capacity_bytes
        nvm_bytes = config.memory.nvm.capacity_bytes
        self.fast_lines = dram_bytes // CACHE_LINE_BYTES
        self.slow_lines = nvm_bytes // CACHE_LINE_BYTES
        self.total_lines = self.fast_lines + self.slow_lines

        #: member line -> slot it occupies / slot -> member in it.
        self._slot_of: Dict[int, int] = {}
        self._member_in: Dict[int, int] = {}
        self._remap_cache: "OrderedDict[int, None]" = OrderedDict()
        self._remap_capacity = max(4, config.pom.src_entries)
        self.swaps = 0

        remap_bytes = self.total_lines  # ~1 B of metadata per line
        self.reserve_metadata(max(1, math.ceil(remap_bytes / PAGE_BYTES)))

        # Hot-path invariants for the flattened request path (the config
        # dataclasses are frozen, so these cannot drift).
        self._src_latency = config.pom.src_latency_cycles

    # -- geometry -------------------------------------------------------------
    def group_of(self, line: int) -> int:
        """The swap group (== fast slot id) a line belongs to."""
        if line < self.fast_lines:
            return line
        return (line - self.fast_lines) % self.fast_lines

    def _slot(self, line: int) -> int:
        return self._slot_of.get(line, line)

    def _line_is_protected(self, line: int) -> bool:
        return self.os_model.is_protected_frame(line // LINES_PER_PAGE)

    # -- the request path -------------------------------------------------------
    # repro-hot
    def handle_request(
        self,
        now: int,
        line_spa: int,
        is_write: bool,
        pid: int,
        kind: RequestKind = RequestKind.DEMAND,
    ) -> int:
        """Service one LLC-miss line request; returns the finish time.

        The per-request pipeline — remap-cache probe, slot lookup,
        device access, serviced-request accounting — is inlined over the
        structures' own state, the same flattening the PageSeer
        controller's request path uses (the goldens pin the result); the
        miss/eviction paths escape to the owning methods.
        """
        stats = self.stats
        counters = stats._counters
        fast_lines = self.fast_lines
        group = (
            line_spa
            if line_spa < fast_lines
            else (line_spa - fast_lines) % fast_lines
        )

        t = now + self._src_latency
        remap_cache = self._remap_cache
        if line_spa in remap_cache:
            remap_cache.move_to_end(line_spa)
            counters["cameo/remap_hits"] += 1.0
        else:
            counters["cameo/remap_misses"] += 1.0
            fill_done = self.metadata_access(t, group)
            if fill_done > t:
                counters["hmc/remap_wait_cycles"] += fill_done - t
                counters["hmc/remap_misses"] += 1.0
            t = fill_done
            self._remap_fill(line_spa)

        slot = self._slot_of.get(line_spa, line_spa)
        bulk = kind is RequestKind.WRITEBACK
        dram = slot < fast_lines
        if self._fast_mem:
            if dram:
                finish = self._dram_dev.access_finish(t, slot, is_write, bulk)
            else:
                finish = self._nvm_dev.access_finish(
                    t, slot - self._nvm_line_base, is_write, bulk
                )
        else:
            finish = self.mem_access_finish(t, slot, is_write, bulk)

        self._total_serviced += 1
        if dram:
            self._dram_serviced += 1
            counters["hmc/serviced_dram"] += 1.0
        else:
            counters["hmc/serviced_nvm"] += 1.0
        if kind is RequestKind.DEMAND:
            counters["hmc/requests_demand"] += 1.0
        elif bulk:
            counters["hmc/requests_writeback"] += 1.0
        else:
            counters["hmc/requests_pte"] += 1.0
        if not bulk:
            # AMMAT covers processor-visible requests only.
            ammat = finish - now
            stats._sums["hmc/ammat"] += ammat
            stats._counts["hmc/ammat"] += 1
            previous = stats._maxima.get("hmc/ammat")
            if previous is None or ammat > previous:
                stats._maxima["hmc/ammat"] = ammat
        if line_spa >= self._nvm_line_base:
            if dram:
                counters["hmc/positive_accesses"] += 1.0
            else:
                counters["hmc/neutral_accesses"] += 1.0
        elif not dram:
            counters["hmc/negative_accesses"] += 1.0
        else:
            counters["hmc/neutral_accesses"] += 1.0

        if not dram:
            self._swap_in(finish, line_spa, group)
        return finish

    # -- the CAMEO policy: swap on every slow access -----------------------------
    def _swap_in(self, now: int, line: int, group: int) -> None:
        fast_slot = group
        if self._line_is_protected(fast_slot):
            self.stats.add("cameo/declined_protected")
            return
        occupant = self._member_in.get(fast_slot, fast_slot)
        if occupant == line:
            return
        member_slot = self._slot(line)

        # Fast swap of two 64 B blocks: 2 line reads + 2 line writes.  The
        # remap maps are only exchanged after all four accesses succeed, so
        # an injected fault aborts the swap with no state to roll back.
        try:
            read_fast = self.memory.access(now, fast_slot, False, bulk=True).finish
            read_slow = self.memory.access(now, member_slot, False, bulk=True).finish
            ready = max(read_fast, read_slow)
            self.memory.access(ready, fast_slot, True, bulk=True)
            self.memory.access(ready, member_slot, True, bulk=True)
        except FaultError:
            self.stats.add("cameo/aborted_swaps")
            return

        self._slot_of[line] = fast_slot
        self._member_in[fast_slot] = line
        self._slot_of[occupant] = member_slot
        self._member_in[member_slot] = occupant
        for member in (line, occupant):
            if self._slot_of.get(member) == member:
                del self._slot_of[member]
        for slot in (fast_slot, member_slot):
            if self._member_in.get(slot) == slot:
                del self._member_in[slot]

        self.swaps += 1
        self.stats.add("cameo/swaps")

    # -- remap cache -----------------------------------------------------------------
    def _remap_lookup(self, line: int) -> bool:
        if line in self._remap_cache:
            self._remap_cache.move_to_end(line)
            self.stats.add("cameo/remap_hits")
            return True
        self.stats.add("cameo/remap_misses")
        return False

    def _remap_fill(self, line: int) -> None:
        if line not in self._remap_cache and len(self._remap_cache) >= self._remap_capacity:
            self._remap_cache.popitem(last=False)
        self._remap_cache[line] = None
        self._remap_cache.move_to_end(line)
