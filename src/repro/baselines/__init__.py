"""Baseline hybrid-memory controllers the paper compares against.

* :mod:`repro.baselines.pom` — PoM (Sim et al., MICRO'14): 2 KB segments,
  direct-mapped swap groups, threshold-triggered fast swaps, SRC remap
  cache.
* :mod:`repro.baselines.mempod` — MemPod (Prodromou et al., HPCA'17):
  pods, the Majority Element Algorithm, interval-based migration bursts.
* :mod:`repro.baselines.static` — no-swap and all-DRAM/all-NVM references.
"""

from repro.baselines.cameo import CameoHmc
from repro.baselines.pom import PomHmc
from repro.baselines.mempod import MemPodHmc, MajorityElementTracker
from repro.baselines.static import all_dram_config, all_nvm_config

__all__ = [
    "CameoHmc",
    "PomHmc",
    "MemPodHmc",
    "MajorityElementTracker",
    "all_dram_config",
    "all_nvm_config",
]
